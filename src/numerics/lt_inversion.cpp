#include "numerics/lt_inversion.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "numerics/roots.hpp"
#include "obs/obs.hpp"

namespace cosm::numerics {

namespace {

// Node-weight memoization: the Euler xi and Gaver–Stehfest V_k weights
// depend only on the term count, yet every inversion used to recompute
// them (~2M lgamma/exp calls per CDF query — a measurable slice of the
// ~3 µs budget when the transform itself is a shallow tree).  Percentile
// sweeps hammer one or two term counts, so a tiny keyed table suffices.
// std::map references are stable under insertion, so the returned
// reference stays valid while other threads populate other keys.
const std::vector<double>& euler_xi(int m) {
  static std::mutex mutex;
  static std::map<int, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.try_emplace(m);
  if (inserted) {
    std::vector<double>& xi = it->second;
    xi.assign(static_cast<std::size_t>(2 * m + 1), 0.0);
    xi[0] = 0.5;
    for (int k = 1; k <= m; ++k) xi[static_cast<std::size_t>(k)] = 1.0;
    xi[static_cast<std::size_t>(2 * m)] = std::pow(2.0, -m);
    for (int k = 1; k < m; ++k) {
      // xi_{2M-k} = xi_{2M-k+1} + 2^{-M} C(M, k), built up iteratively.
      double binom = std::exp(std::lgamma(m + 1.0) - std::lgamma(k + 1.0) -
                              std::lgamma(m - k + 1.0));
      xi[static_cast<std::size_t>(2 * m - k)] =
          xi[static_cast<std::size_t>(2 * m - k + 1)] +
          std::pow(2.0, -m) * binom;
    }
  }
  return it->second;
}

// Stehfest weights V_1..V_n for even n (index 0 unused).
const std::vector<double>& stehfest_weights(int n) {
  static std::mutex mutex;
  static std::map<int, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.try_emplace(n);
  if (inserted) {
    const int half = n / 2;
    std::vector<double>& weights = it->second;
    weights.assign(static_cast<std::size_t>(n + 1), 0.0);
    for (int k = 1; k <= n; ++k) {
      double v = 0.0;
      const int j_lo = (k + 1) / 2;
      const int j_hi = std::min(k, half);
      for (int j = j_lo; j <= j_hi; ++j) {
        // j^{n/2} (2j)! / ((n/2 - j)! j! (j-1)! (k-j)! (2j-k)!)
        const double log_term =
            half * std::log(static_cast<double>(j)) +
            std::lgamma(2.0 * j + 1.0) - std::lgamma(half - j + 1.0) -
            std::lgamma(j + 1.0) - std::lgamma(static_cast<double>(j)) -
            std::lgamma(k - j + 1.0) - std::lgamma(2.0 * j - k + 1.0);
        v += std::exp(log_term);
      }
      if ((k + half) % 2 != 0) v = -v;
      weights[static_cast<std::size_t>(k)] = v;
    }
  }
  return it->second;
}

// Contour scratch buffers, reused across inversions so the steady state
// allocates nothing.  A per-thread free list (rather than one thread_local
// buffer) keeps re-entrancy safe: an `lt` callback that itself runs an
// inversion checks out a different buffer instead of clobbering its
// caller's nodes mid-reduction.
struct ContourScratch {
  std::vector<std::complex<double>> nodes;
  std::vector<std::complex<double>> values;
};

class ScratchLease {
 public:
  ScratchLease() : scratch_(acquire()) {}
  ~ScratchLease() { pool().push_back(std::move(scratch_)); }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  ContourScratch& operator*() { return *scratch_; }
  ContourScratch* operator->() { return scratch_.get(); }

 private:
  static std::vector<std::unique_ptr<ContourScratch>>& pool() {
    thread_local std::vector<std::unique_ptr<ContourScratch>> free_list;
    return free_list;
  }
  static std::unique_ptr<ContourScratch> acquire() {
    auto& free_list = pool();
    if (free_list.empty()) return std::make_unique<ContourScratch>();
    auto scratch = std::move(free_list.back());
    free_list.pop_back();
    return scratch;
  }
  std::unique_ptr<ContourScratch> scratch_;
};

void check_euler_args(double t, int m) {
  COSM_REQUIRE(t > 0, "euler inversion requires t > 0");
  COSM_REQUIRE(m >= 2 && m <= 30, "euler M out of the stable range [2, 30]");
}

void check_talbot_args(double t, int m) {
  COSM_REQUIRE(t > 0, "talbot inversion requires t > 0");
  COSM_REQUIRE(m >= 4, "talbot needs at least 4 nodes");
}

// Records the per-inversion obs accounting: one verdict counter, the
// call, and the contour budget spent.
void count_inversion(InversionQuality quality, int terms) {
  if (!obs::enabled()) return;
  switch (quality) {
    case InversionQuality::kConverged:
      obs::add(obs::Counter::kInversionConverged);
      break;
    case InversionQuality::kTruncated:
      obs::add(obs::Counter::kInversionTruncated);
      break;
    case InversionQuality::kClamped:
      obs::add(obs::Counter::kInversionClamped);
      break;
    case InversionQuality::kNonFinite:
      obs::add(obs::Counter::kInversionNonFinite);
      break;
  }
  obs::add(obs::Counter::kInversionCalls);
  obs::add(obs::Counter::kInversionTerms,
           static_cast<std::uint64_t>(terms));
}

// Clamp + classify + count in one place: every CDF inversion in this file
// funnels through here, so no out-of-range raw sum can vanish without at
// least a counter bump.  The returned value preserves the historical
// arithmetic exactly: std::clamp for finite raws, and a non-finite raw
// passes through std::clamp unchanged (both comparisons are false) — so
// checked and unchecked callers see bit-identical doubles.
CdfPoint finish_cdf(double raw, int terms) {
  const InversionQuality quality = classify_cdf_value(raw);
  count_inversion(quality, terms);
  return CdfPoint{std::clamp(raw, 0.0, 1.0), quality};
}

// Shared bracketing + Brent over an arbitrary CDF evaluator; both
// quantile_from_laplace overloads (and TransformTape::quantile) reduce to
// this.  The cold path reproduces the historical bracketing exactly; the
// warm path only changes where the bracket starts (see QuantileWarmStart).
double quantile_impl(const std::function<double(double)>& cdf_at, double p,
                     double mean_hint, double t_max,
                     QuantileWarmStart* warm) {
  COSM_REQUIRE(p > 0 && p < 1, "quantile level must be in (0, 1)");
  COSM_REQUIRE(mean_hint > 0, "mean hint must be positive");
  const auto residual = [&](double t) { return cdf_at(t) - p; };
  bool use_warm =
      warm != nullptr && std::isfinite(warm->previous) && warm->previous > 0;
  double lo;
  double hi;
  if (use_warm) {
    // A monotone sweep moves the root a little between calls: [prev/2,
    // 2·prev] almost always brackets immediately, skipping the geometric
    // growth from mean_hint·1e-6.  The shrink/expand loops below still
    // run, so correctness never depends on the sweep actually being
    // monotone — a bad seed only costs extra probes.
    lo = 0.5 * warm->previous;
    hi = 2.0 * warm->previous;
    obs::add(obs::Counter::kQuantileWarmAccept);
  } else {
    lo = mean_hint * 1e-6;
    hi = std::max(mean_hint, lo * 2.0);
    obs::add(obs::Counter::kQuantileColdStart);
  }
  if (use_warm) {
    // A seed that needs more than 12 decades of shrink to recover the
    // left edge is not warm — it is stale beyond repair (a regime change
    // the caller did not fingerprint).  Bound the ladder and re-seed
    // cold rather than probing toward an invalid bracket.
    int shrink = 0;
    while (residual(lo) > 0 && ++shrink <= 12) lo *= 0.1;
    if (residual(lo) > 0) {
      obs::add(obs::Counter::kQuantileWarmFallback);
      lo = mean_hint * 1e-6;
      hi = std::max(mean_hint, lo * 2.0);
    }
  }
  while (residual(lo) > 0 && lo > 1e-14 * mean_hint) lo *= 0.1;
  bool bracketed = expand_bracket_upward(residual, lo, hi);
  COSM_REQUIRE(bracketed && hi <= t_max,
               "quantile could not be bracketed below t_max");
  const RootResult root = brent(residual, lo, hi, 1e-10 * mean_hint);
  COSM_REQUIRE(root.converged, "quantile root search did not converge");
  if (warm != nullptr) warm->previous = root.x;
  return root.x;
}

}  // namespace

// --------------------------- contour plumbing ----------------------------

int euler_terms(int m) { return 2 * m + 1; }

void euler_fill_nodes(double t, int m, std::span<std::complex<double>> out) {
  check_euler_args(t, m);
  const int terms = euler_terms(m);
  COSM_REQUIRE(out.size() == static_cast<std::size_t>(terms),
               "euler node span has the wrong length");
  // Abate & Whitt (2006): contour nodes beta_k / t with beta_k =
  // M ln(10)/3 + i pi k.
  const double a = m * std::numbers::ln10 / 3.0;
  for (int k = 0; k < terms; ++k) {
    const std::complex<double> beta(a, std::numbers::pi * k);
    out[static_cast<std::size_t>(k)] = beta / t;
  }
}

double euler_reduce(double t, int m,
                    std::span<const std::complex<double>> values) {
  check_euler_args(t, m);
  const int terms = euler_terms(m);
  COSM_REQUIRE(values.size() == static_cast<std::size_t>(terms),
               "euler value span has the wrong length");
  // f(t) ~ (1/t) sum_{k=0}^{2M} eta_k Re v_k with Euler-smoothed eta_k.
  const std::vector<double>& xi = euler_xi(m);
  const double scale = std::pow(10.0, m / 3.0);
  double sum = 0.0;
  for (int k = 0; k < terms; ++k) {
    const double eta =
        (k % 2 == 0 ? 1.0 : -1.0) * xi[static_cast<std::size_t>(k)] * scale;
    sum += eta * values[static_cast<std::size_t>(k)].real();
  }
  return sum / t;
}

int talbot_terms(int m) { return m; }

void talbot_fill_nodes(double t, int m, std::span<std::complex<double>> out) {
  check_talbot_args(t, m);
  COSM_REQUIRE(out.size() == static_cast<std::size_t>(m),
               "talbot node span has the wrong length");
  // Fixed-Talbot (Abate & Valkó 2004): contour s(theta) = r theta (cot
  // theta + i), r = 2m / (5t); node 0 is the real point s = r.
  const double r = 2.0 * m / (5.0 * t);
  out[0] = std::complex<double>(r, 0.0);
  for (int k = 1; k < m; ++k) {
    const double theta = k * std::numbers::pi / m;
    const double cot = std::cos(theta) / std::sin(theta);
    out[static_cast<std::size_t>(k)] =
        std::complex<double>(r * theta * cot, r * theta);
  }
}

double talbot_reduce(double t, int m,
                     std::span<const std::complex<double>> values) {
  check_talbot_args(t, m);
  COSM_REQUIRE(values.size() == static_cast<std::size_t>(m),
               "talbot value span has the wrong length");
  const double r = 2.0 * m / (5.0 * t);
  double sum = 0.5 * std::exp(r * t) * values[0].real();
  for (int k = 1; k < m; ++k) {
    // Recompute the node geometry with the exact fill expressions so the
    // per-node arithmetic matches the historical single-loop form.
    const double theta = k * std::numbers::pi / m;
    const double cot = std::cos(theta) / std::sin(theta);
    const std::complex<double> s(r * theta * cot, r * theta);
    const double sigma = theta + (theta * cot - 1.0) * cot;
    const std::complex<double> ds(1.0, sigma);  // (1 + i sigma)
    const std::complex<double> term =
        std::exp(s * t) * values[static_cast<std::size_t>(k)] * ds;
    sum += term.real();
  }
  return sum * r / m;
}

// ------------------------------- inverters -------------------------------

double invert_euler(const LaplaceFn& lt, double t, int m) {
  check_euler_args(t, m);
  const std::size_t terms = static_cast<std::size_t>(euler_terms(m));
  ScratchLease scratch;
  scratch->nodes.resize(terms);
  scratch->values.resize(terms);
  euler_fill_nodes(t, m, scratch->nodes);
  for (std::size_t k = 0; k < terms; ++k) {
    scratch->values[k] = lt(scratch->nodes[k]);
  }
  return euler_reduce(t, m, scratch->values);
}

double invert_euler(const BatchLaplaceFn& lt_many, double t, int m) {
  check_euler_args(t, m);
  const std::size_t terms = static_cast<std::size_t>(euler_terms(m));
  ScratchLease scratch;
  scratch->nodes.resize(terms);
  scratch->values.resize(terms);
  euler_fill_nodes(t, m, scratch->nodes);
  lt_many(scratch->nodes, scratch->values);
  return euler_reduce(t, m, scratch->values);
}

double invert_talbot(const LaplaceFn& lt, double t, int m) {
  check_talbot_args(t, m);
  const std::size_t terms = static_cast<std::size_t>(talbot_terms(m));
  ScratchLease scratch;
  scratch->nodes.resize(terms);
  scratch->values.resize(terms);
  talbot_fill_nodes(t, m, scratch->nodes);
  for (std::size_t k = 0; k < terms; ++k) {
    scratch->values[k] = lt(scratch->nodes[k]);
  }
  return talbot_reduce(t, m, scratch->values);
}

double invert_talbot(const BatchLaplaceFn& lt_many, double t, int m) {
  check_talbot_args(t, m);
  const std::size_t terms = static_cast<std::size_t>(talbot_terms(m));
  ScratchLease scratch;
  scratch->nodes.resize(terms);
  scratch->values.resize(terms);
  talbot_fill_nodes(t, m, scratch->nodes);
  lt_many(scratch->nodes, scratch->values);
  return talbot_reduce(t, m, scratch->values);
}

double invert_gaver_stehfest(const RealLaplaceFn& lt, double t, int n) {
  COSM_REQUIRE(t > 0, "gaver-stehfest inversion requires t > 0");
  COSM_REQUIRE(n >= 2 && n % 2 == 0 && n <= 18,
               "gaver-stehfest n must be even and in [2, 18]");
  const double ln2_over_t = std::numbers::ln2 / t;
  const std::vector<double>& weights = stehfest_weights(n);
  double sum = 0.0;
  for (int k = 1; k <= n; ++k) {
    sum += weights[static_cast<std::size_t>(k)] * lt(k * ln2_over_t);
  }
  return sum * ln2_over_t;
}

InversionQuality classify_cdf_value(double raw) {
  if (!std::isfinite(raw)) return InversionQuality::kNonFinite;
  // excess > 0 means the raw sum sits outside [0, 1] by that much.
  const double excess = std::max(0.0 - raw, raw - 1.0);
  if (excess <= 1e-9) return InversionQuality::kConverged;
  if (excess <= 1e-3) return InversionQuality::kTruncated;
  return InversionQuality::kClamped;
}

void QuantileWarmStart::enter_regime(std::uint64_t regime_fp) {
  if (regime == regime_fp) return;
  if (regime != 0 && previous > 0) {
    // A carried root from a different curve family is worse than no seed:
    // discard it loudly (the counter) instead of reusing it silently.
    obs::add(obs::Counter::kQuantileWarmRejectRegime);
  }
  previous = 0.0;
  regime = regime_fp;
}

CdfPoint cdf_from_laplace_checked(const LaplaceFn& lt, double t, int m) {
  if (t <= 0.0) return CdfPoint{0.0, InversionQuality::kConverged};
  check_euler_args(t, m);
  const std::size_t terms = static_cast<std::size_t>(euler_terms(m));
  ScratchLease scratch;
  scratch->nodes.resize(terms);
  scratch->values.resize(terms);
  euler_fill_nodes(t, m, scratch->nodes);
  // DIV-BY-S: inverting L[f](s)/s turns the density transform into the
  // CDF transform; the division is fused after evaluation.
  for (std::size_t k = 0; k < terms; ++k) {
    scratch->values[k] = lt(scratch->nodes[k]) / scratch->nodes[k];
  }
  return finish_cdf(euler_reduce(t, m, scratch->values),
                    static_cast<int>(terms));
}

CdfPoint cdf_from_laplace_checked(const BatchLaplaceFn& lt_many, double t,
                                  int m) {
  if (t <= 0.0) return CdfPoint{0.0, InversionQuality::kConverged};
  check_euler_args(t, m);
  const std::size_t terms = static_cast<std::size_t>(euler_terms(m));
  ScratchLease scratch;
  scratch->nodes.resize(terms);
  scratch->values.resize(terms);
  euler_fill_nodes(t, m, scratch->nodes);
  lt_many(scratch->nodes, scratch->values);
  for (std::size_t k = 0; k < terms; ++k) {
    scratch->values[k] = scratch->values[k] / scratch->nodes[k];
  }
  return finish_cdf(euler_reduce(t, m, scratch->values),
                    static_cast<int>(terms));
}

double cdf_from_laplace(const LaplaceFn& lt, double t, int m) {
  return cdf_from_laplace_checked(lt, t, m).value;
}

double cdf_from_laplace(const BatchLaplaceFn& lt_many, double t, int m) {
  return cdf_from_laplace_checked(lt_many, t, m).value;
}

namespace {

// Shared worker for both cdf_many overloads; `quality` may be empty (no
// propagation) or ts-sized.
std::vector<double> cdf_many_impl(const BatchLaplaceFn& lt_many,
                                  std::span<const double> ts, int m,
                                  std::span<InversionQuality> quality) {
  COSM_REQUIRE(quality.empty() || quality.size() == ts.size(),
               "quality span must match the t grid");
  std::vector<double> out(ts.size(), 0.0);
  for (std::size_t i = 0; i < quality.size(); ++i) {
    quality[i] = InversionQuality::kConverged;  // exact 0 for t <= 0
  }
  // Concatenate the contours of every positive t into one node array so
  // the transform is evaluated exactly once.
  std::vector<std::size_t> live;
  live.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] > 0.0) {
      check_euler_args(ts[i], m);
      live.push_back(i);
    }
  }
  if (live.empty()) return out;
  obs::Span span("numerics.cdf_many");
  const std::size_t terms = static_cast<std::size_t>(euler_terms(m));
  ScratchLease scratch;
  scratch->nodes.resize(terms * live.size());
  scratch->values.resize(terms * live.size());
  for (std::size_t b = 0; b < live.size(); ++b) {
    euler_fill_nodes(ts[live[b]], m,
                     std::span<std::complex<double>>(
                         scratch->nodes.data() + b * terms, terms));
  }
  lt_many(scratch->nodes, scratch->values);
  for (std::size_t b = 0; b < live.size(); ++b) {
    std::complex<double>* nodes = scratch->nodes.data() + b * terms;
    std::complex<double>* values = scratch->values.data() + b * terms;
    for (std::size_t k = 0; k < terms; ++k) values[k] = values[k] / nodes[k];
    const double raw = euler_reduce(
        ts[live[b]], m,
        std::span<const std::complex<double>>(values, terms));
    const CdfPoint point = finish_cdf(raw, static_cast<int>(terms));
    out[live[b]] = point.value;
    if (!quality.empty()) quality[live[b]] = point.quality;
  }
  return out;
}

}  // namespace

std::vector<double> cdf_many_from_laplace(const BatchLaplaceFn& lt_many,
                                          std::span<const double> ts,
                                          int m) {
  return cdf_many_impl(lt_many, ts, m, {});
}

std::vector<double> cdf_many_from_laplace(
    const BatchLaplaceFn& lt_many, std::span<const double> ts, int m,
    std::span<InversionQuality> quality) {
  COSM_REQUIRE(quality.size() == ts.size(),
               "quality span must match the t grid");
  return cdf_many_impl(lt_many, ts, m, quality);
}

double quantile_from_laplace(const LaplaceFn& lt, double p, double mean_hint,
                             double t_max, QuantileWarmStart* warm) {
  return quantile_impl(
      [&lt](double t) { return cdf_from_laplace(lt, t); }, p, mean_hint,
      t_max, warm);
}

double quantile_from_laplace(const BatchLaplaceFn& lt_many, double p,
                             double mean_hint, double t_max,
                             QuantileWarmStart* warm) {
  return quantile_impl(
      [&lt_many](double t) { return cdf_from_laplace(lt_many, t); }, p,
      mean_hint, t_max, warm);
}

}  // namespace cosm::numerics
