#include "numerics/lt_inversion.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <vector>

#include "common/require.hpp"
#include "numerics/roots.hpp"

namespace cosm::numerics {

namespace {

// Node-weight memoization: the Euler xi and Gaver–Stehfest V_k weights
// depend only on the term count, yet every inversion used to recompute
// them (~2M lgamma/exp calls per CDF query — a measurable slice of the
// ~3 µs budget when the transform itself is a shallow tree).  Percentile
// sweeps hammer one or two term counts, so a tiny keyed table suffices.
// std::map references are stable under insertion, so the returned
// reference stays valid while other threads populate other keys.
const std::vector<double>& euler_xi(int m) {
  static std::mutex mutex;
  static std::map<int, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.try_emplace(m);
  if (inserted) {
    std::vector<double>& xi = it->second;
    xi.assign(static_cast<std::size_t>(2 * m + 1), 0.0);
    xi[0] = 0.5;
    for (int k = 1; k <= m; ++k) xi[static_cast<std::size_t>(k)] = 1.0;
    xi[static_cast<std::size_t>(2 * m)] = std::pow(2.0, -m);
    for (int k = 1; k < m; ++k) {
      // xi_{2M-k} = xi_{2M-k+1} + 2^{-M} C(M, k), built up iteratively.
      double binom = std::exp(std::lgamma(m + 1.0) - std::lgamma(k + 1.0) -
                              std::lgamma(m - k + 1.0));
      xi[static_cast<std::size_t>(2 * m - k)] =
          xi[static_cast<std::size_t>(2 * m - k + 1)] +
          std::pow(2.0, -m) * binom;
    }
  }
  return it->second;
}

// Stehfest weights V_1..V_n for even n (index 0 unused).
const std::vector<double>& stehfest_weights(int n) {
  static std::mutex mutex;
  static std::map<int, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.try_emplace(n);
  if (inserted) {
    const int half = n / 2;
    std::vector<double>& weights = it->second;
    weights.assign(static_cast<std::size_t>(n + 1), 0.0);
    for (int k = 1; k <= n; ++k) {
      double v = 0.0;
      const int j_lo = (k + 1) / 2;
      const int j_hi = std::min(k, half);
      for (int j = j_lo; j <= j_hi; ++j) {
        // j^{n/2} (2j)! / ((n/2 - j)! j! (j-1)! (k-j)! (2j-k)!)
        const double log_term =
            half * std::log(static_cast<double>(j)) +
            std::lgamma(2.0 * j + 1.0) - std::lgamma(half - j + 1.0) -
            std::lgamma(j + 1.0) - std::lgamma(static_cast<double>(j)) -
            std::lgamma(k - j + 1.0) - std::lgamma(2.0 * j - k + 1.0);
        v += std::exp(log_term);
      }
      if ((k + half) % 2 != 0) v = -v;
      weights[static_cast<std::size_t>(k)] = v;
    }
  }
  return it->second;
}

}  // namespace

double invert_euler(const LaplaceFn& lt, double t, int m) {
  COSM_REQUIRE(t > 0, "euler inversion requires t > 0");
  COSM_REQUIRE(m >= 2 && m <= 30, "euler M out of the stable range [2, 30]");
  // Abate & Whitt (2006): f(t) ~ (1/t) sum_{k=0}^{2M} eta_k Re lt(beta_k/t)
  // with beta_k = M ln(10)/3 + i pi k and Euler-smoothed weights eta_k.
  const int terms = 2 * m + 1;
  const std::vector<double>& xi = euler_xi(m);
  const double a = m * std::numbers::ln10 / 3.0;
  const double scale = std::pow(10.0, m / 3.0);
  double sum = 0.0;
  for (int k = 0; k < terms; ++k) {
    const std::complex<double> beta(a, std::numbers::pi * k);
    const double eta =
        (k % 2 == 0 ? 1.0 : -1.0) * xi[static_cast<std::size_t>(k)] * scale;
    sum += eta * lt(beta / t).real();
  }
  return sum / t;
}

double invert_talbot(const LaplaceFn& lt, double t, int m) {
  COSM_REQUIRE(t > 0, "talbot inversion requires t > 0");
  COSM_REQUIRE(m >= 4, "talbot needs at least 4 nodes");
  // Fixed-Talbot (Abate & Valkó 2004): contour s(theta) = r theta (cot
  // theta + i), r = 2m / (5t).
  const double r = 2.0 * m / (5.0 * t);
  double sum = 0.5 * std::exp(r * t) * lt(std::complex<double>(r, 0.0)).real();
  for (int k = 1; k < m; ++k) {
    const double theta = k * std::numbers::pi / m;
    const double cot = std::cos(theta) / std::sin(theta);
    const std::complex<double> s(r * theta * cot, r * theta);
    const double sigma = theta + (theta * cot - 1.0) * cot;
    const std::complex<double> ds(1.0, sigma);  // (1 + i sigma)
    const std::complex<double> term = std::exp(s * t) * lt(s) * ds;
    sum += term.real();
  }
  return sum * r / m;
}

double invert_gaver_stehfest(const RealLaplaceFn& lt, double t, int n) {
  COSM_REQUIRE(t > 0, "gaver-stehfest inversion requires t > 0");
  COSM_REQUIRE(n >= 2 && n % 2 == 0 && n <= 18,
               "gaver-stehfest n must be even and in [2, 18]");
  const double ln2_over_t = std::numbers::ln2 / t;
  const std::vector<double>& weights = stehfest_weights(n);
  double sum = 0.0;
  for (int k = 1; k <= n; ++k) {
    sum += weights[static_cast<std::size_t>(k)] * lt(k * ln2_over_t);
  }
  return sum * ln2_over_t;
}

double cdf_from_laplace(const LaplaceFn& lt, double t, int m) {
  if (t <= 0.0) return 0.0;
  const auto cdf_lt = [&lt](std::complex<double> s) { return lt(s) / s; };
  const double value = invert_euler(cdf_lt, t, m);
  return std::clamp(value, 0.0, 1.0);
}

double quantile_from_laplace(const LaplaceFn& lt, double p, double mean_hint,
                             double t_max) {
  COSM_REQUIRE(p > 0 && p < 1, "quantile level must be in (0, 1)");
  COSM_REQUIRE(mean_hint > 0, "mean hint must be positive");
  const auto residual = [&](double t) { return cdf_from_laplace(lt, t) - p; };
  double lo = mean_hint * 1e-6;
  double hi = std::max(mean_hint, lo * 2.0);
  while (residual(lo) > 0 && lo > 1e-14 * mean_hint) lo *= 0.1;
  bool bracketed = expand_bracket_upward(residual, lo, hi);
  COSM_REQUIRE(bracketed && hi <= t_max,
               "quantile could not be bracketed below t_max");
  const RootResult root = brent(residual, lo, hi, 1e-10 * mean_hint);
  COSM_REQUIRE(root.converged, "quantile root search did not converge");
  return root.x;
}

}  // namespace cosm::numerics
