#pragma once

#include <cstdint>

namespace cosm::numerics {

// How TransformTape::evaluate executes a compiled tape.
//
//  kExact — the original array-of-std::complex evaluator: BIT-IDENTICAL to
//    the scalar Distribution::laplace tree walk (the tape's founding
//    contract; see transform_tape.hpp).  Default everywhere.
//
//  kSimd — the structure-of-arrays evaluator over the runtime-dispatched
//    vector kernels (numerics/simd_kernels.hpp), still BIT-IDENTICAL to
//    kExact: rational and integer-power ops (divisions, folds, the
//    queueing loops) are vectorized exact replicas of the scalar
//    arithmetic, and the exp/pow-family leaves run per lane through the
//    same libm expressions the exact evaluator uses.  Safe anywhere
//    kExact is, including under caches keyed without the mode.
//
//  kSimdFast — kSimd plus branchless vector transcendentals
//    (numerics/simd_math.hpp) in the exp/pow-family ops.  NOT
//    bit-identical: per-op deviation from kExact is ULP-bounded
//    (docs/PERFORMANCE.md §7 documents the bound, including the
//    conditioning term for pow-family leaves), and deviations compound
//    through downstream combinators.  Deterministic: the same inputs give
//    the same outputs on every build variant and CPU, so cached values
//    never depend on the machine — but kSimdFast results must be keyed
//    separately from exact ones wherever both can land in one cache.
enum class TapeEvalMode : std::uint8_t {
  kExact = 0,
  kSimd = 1,
  kSimdFast = 2,
};

}  // namespace cosm::numerics
