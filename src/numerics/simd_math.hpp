#pragma once

// Branchless elementwise math for the SoA tape kernels (simd_kernels_*.cpp).
//
// Two families live here:
//
//  1. Exact complex arithmetic that replicates, operation for operation,
//     what the scalar evaluator's std::complex<double> expressions compile
//     to with GCC's non-finite-checking fast paths: naive multiply
//     (ac - bd, ad + bc), Smith's-algorithm division (libgcc __divdc3's
//     in-range path, made branchless), and pow(complex, int) by repeated
//     squaring in libstdc++ __cmath_power's exact order.  Kernels built
//     from only these helpers produce BIT-IDENTICAL results to the scalar
//     tree walk (verified by tests/numerics/test_simd_kernels.cpp).
//
//  2. ULP-bounded transcendentals (fast_exp / fast_sincos / fast_log /
//     fast_atan2) used by the exp/log-heavy leaves.  They are plain
//     branchless double expressions (magic-number rounding, bit-twiddled
//     exponent scaling, Taylor kernels after Cody-Waite reduction) so the
//     compiler can auto-vectorize the surrounding batch loops.  The
//     accuracy contract is documented in docs/PERFORMANCE.md §7 and
//     enforced by tests/numerics/test_simd_kernels.cpp plus the
//     perf_numerics_tape ULP gates: each elementary kernel stays within
//     8 ULP of the libm result over the tape's operating ranges (sincos
//     quadrant counts up to 2^26; positive normal inputs for log).
//
// Everything here must stay branch-free (ternary selects only) and must
// avoid std::fma: the variant TUs compile with -ffp-contract=off so the
// scalar-fallback build, the AVX2 build, and the AVX-512 build of the SAME
// source produce bit-identical results on every lane.

#include <bit>
#include <cmath>
#include <cstdint>

namespace cosm::numerics::simd {

// ------------------------- exact complex helpers -------------------------

// (ar + i*ai) * (br + i*bi), naive formula — matches GCC's inlined complex
// multiply (the non-NaN fast path of __muldc3, emitted inline at -O1+).
inline void cmul(double ar, double ai, double br, double bi, double& cr, double& ci) {
  cr = ar * br - ai * bi;
  ci = ar * bi + ai * br;
}

// (a + i*b) / (c + i*d) by Smith's algorithm, branchless.  Replicates
// libgcc __divdc3's in-range path exactly: the flipped and unflipped
// branches compute the same products, and their additions commute, so one
// fused form with selects is bit-identical to whichever branch the scalar
// code takes.
inline void cdiv(double a, double b, double c, double d, double& x, double& y) {
  const bool flip = std::fabs(c) < std::fabs(d);
  const double major = flip ? d : c;
  const double minor = flip ? c : d;
  const double ratio = minor / major;
  const double denom = major + minor * ratio;
  const double u = flip ? a : b;
  const double v = flip ? b : a;
  x = (u * ratio + v) / denom;
  // y numerator is (b*ratio - a) when flipped, (b - a*ratio) otherwise.
  // Select the OPERANDS, not a sign: negating the difference would flip
  // the sign of an exactly-zero numerator and break bit-identity with
  // __divdc3 (IEEE: -(p - q) != q - p when p == q).
  const double br = b * ratio;
  const double ar = a * ratio;
  const double p = flip ? br : b;
  const double q = flip ? a : ar;
  y = (p - q) / denom;
}

// a / (c + i*d): the scalar walk's double-over-complex division routes
// through the same __divdc3 with a zero imaginary numerator.
inline void cdiv_real(double a, double c, double d, double& x, double& y) {
  cdiv(a, 0.0, c, d, x, y);
}

// ---------------------- ULP-bounded transcendentals ----------------------

namespace detail {

inline constexpr double kTwo52 = 6755399441055744.0;  // 1.5 * 2^52

// Round-to-nearest-even integer of x (|x| < 2^51), as a double and as the
// exact int64, via the add-magic-number trick: avoids cvttpd2qq, which
// AVX2 lacks, and keeps the whole reduction vectorizable.
inline double round_magic(double x, std::int64_t& k) {
  const double shifted = x + kTwo52;
  k = std::bit_cast<std::int64_t>(shifted) - std::bit_cast<std::int64_t>(kTwo52);
  return shifted - kTwo52;
}

}  // namespace detail

// e^x for x in the finite range; inputs outside [-708, 708] are clamped
// (the tape never produces them — transform magnitudes are <= 1).
inline double fast_exp(double x) {
  x = x < -708.0 ? -708.0 : (x > 708.0 ? 708.0 : x);
  constexpr double kLog2E = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  std::int64_t ki;
  const double kd = detail::round_magic(x * kLog2E, ki);
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
  // Taylor kernel on |r| <= ln2/2 + eps, through r^13/13!.
  double p = 1.6059043836821613e-10;
  p = p * r + 2.0876756987868099e-09;
  p = p * r + 2.5052108385441719e-08;
  p = p * r + 2.7557319223985890e-07;
  p = p * r + 2.7557319223985893e-06;
  p = p * r + 2.4801587301587302e-05;
  p = p * r + 1.9841269841269841e-04;
  p = p * r + 1.3888888888888889e-03;
  p = p * r + 8.3333333333333332e-03;
  p = p * r + 4.1666666666666664e-02;
  p = p * r + 1.6666666666666666e-01;
  p = p * r + 5.0000000000000000e-01;
  p = p * r + 1.0;
  p = p * r + 1.0;
  return p * std::bit_cast<double>((ki + 1023) << 52);
}

// sin(x) and cos(x) together.  Cody-Waite pi/2 reduction with a 26-bit
// leading split (exact products for quadrant counts up to 2^26) plus the
// residual of fl(pi/2) itself; Taylor kernels on |r| <= pi/4.
inline void fast_sincos(double x, double& sin_out, double& cos_out) {
  constexpr double kTwoOverPi = 0.63661977236758134308;
  constexpr double kFullPio2 = 1.57079632679489661923;
  constexpr double kP1 = std::bit_cast<double>(std::bit_cast<std::uint64_t>(kFullPio2) & 0xFFFFFFFFF8000000ULL);
  constexpr double kP2 = kFullPio2 - kP1;
  constexpr double kP3 = 6.123233995736766036e-17;  // pi/2 - fl(pi/2)
  std::int64_t ki;
  const double kd = detail::round_magic(x * kTwoOverPi, ki);
  const double r = ((x - kd * kP1) - kd * kP2) - kd * kP3;
  const double z = r * r;
  // sin r = r + r*z*P(z), coefficients (-1)^k/(2k+1)! through 1/15!.
  double p = -7.6471637318198164e-13;
  p = p * z + 1.6059043836821613e-10;
  p = p * z - 2.5052108385441719e-08;
  p = p * z + 2.7557319223985893e-06;
  p = p * z - 1.9841269841269841e-04;
  p = p * z + 8.3333333333333332e-03;
  p = p * z - 1.6666666666666666e-01;
  const double sr = r + r * (z * p);
  // cos r = 1 - z/2 + z^2*Q(z), coefficients (-1)^k/(2k)! through 1/16!.
  double q = 4.7794773323873853e-14;
  q = q * z - 1.1470745597729725e-11;
  q = q * z + 2.0876756987868099e-09;
  q = q * z - 2.7557319223985890e-07;
  q = q * z + 2.4801587301587302e-05;
  q = q * z - 1.3888888888888889e-03;
  q = q * z + 4.1666666666666664e-02;
  const double cr = (1.0 - 0.5 * z) + (z * z) * q;
  const std::int64_t quad = ki & 3;
  const bool swap = (quad & 1) != 0;
  const double ss = swap ? cr : sr;
  const double cc = swap ? sr : cr;
  sin_out = (quad & 2) != 0 ? -ss : ss;
  cos_out = ((quad + 1) & 2) != 0 ? -cc : cc;
}

// ln(x) for positive normal x.
inline double fast_log(double x) {
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kSqrt2 = 1.4142135623730951;
  const std::uint64_t ux = std::bit_cast<std::uint64_t>(x);
  std::int64_t e = static_cast<std::int64_t>((ux >> 52) & 0x7FF) - 1023;
  double m = std::bit_cast<double>((ux & 0x000FFFFFFFFFFFFFULL) | 0x3FF0000000000000ULL);
  // Shift the mantissa into [sqrt(1/2), sqrt(2)) so |t| stays small.
  const bool big = m > kSqrt2;
  m = big ? m * 0.5 : m;
  e = big ? e + 1 : e;
  const double ed = static_cast<double>(e);
  const double t = (m - 1.0) / (m + 1.0);
  const double z = t * t;
  // atanh kernel: log m = 2t * (1 + z/3 + z^2/5 + ... + z^10/21).
  double p = 4.7619047619047616e-02;
  p = p * z + 5.2631578947368418e-02;
  p = p * z + 5.8823529411764705e-02;
  p = p * z + 6.6666666666666666e-02;
  p = p * z + 7.6923076923076927e-02;
  p = p * z + 9.0909090909090912e-02;
  p = p * z + 1.1111111111111111e-01;
  p = p * z + 1.4285714285714285e-01;
  p = p * z + 2.0000000000000001e-01;
  p = p * z + 3.3333333333333331e-01;
  p = p * z + 1.0;
  const double lm = 2.0 * t * p;
  return ed * kLn2Hi + (lm + ed * kLn2Lo);
}

// atan(t) for t in [0, 1]: two half-angle reductions (no tabulated split
// constants — correctness by construction), then a Taylor kernel on
// |v| <= tan(pi/8)/ (1 + sec(pi/8)) ~= 0.199.
inline double fast_atan_unit(double t) {
  const double u = t / (1.0 + std::sqrt(1.0 + t * t));
  const double v = u / (1.0 + std::sqrt(1.0 + u * u));
  const double z = v * v;
  // atan v = v * A(z), A(z) = 1 - z/3 + z^2/5 - ... - z^11/23.
  double a = -4.3478260869565216e-02;
  a = a * z + 4.7619047619047616e-02;
  a = a * z - 5.2631578947368418e-02;
  a = a * z + 5.8823529411764705e-02;
  a = a * z - 6.6666666666666666e-02;
  a = a * z + 7.6923076923076927e-02;
  a = a * z - 9.0909090909090912e-02;
  a = a * z + 1.1111111111111111e-01;
  a = a * z - 1.4285714285714285e-01;
  a = a * z + 2.0000000000000001e-01;
  a = a * z - 3.3333333333333331e-01;
  a = a * z + 1.0;
  return 4.0 * (v * a);
}

inline double fast_atan2(double y, double x) {
  const double ax = std::fabs(x);
  const double ay = std::fabs(y);
  const double mx = ax > ay ? ax : ay;
  const double mn = ax > ay ? ay : ax;
  const double a0 = fast_atan_unit(mx > 0.0 ? mn / mx : 0.0);
  const double a1 = ay > ax ? 1.5707963267948966 - a0 : a0;
  const double a2 = x < 0.0 ? 3.1415926535897931 - a1 : a1;
  return std::copysign(a2, y);
}

// ----------------------- composite complex helpers -----------------------

// exp(xr + i*xi) = e^xr * (cos xi, sin xi) — the same polar formula
// libstdc++ uses, with the fast elementary kernels.
inline void cexp_fast(double xr, double xi, double& wr, double& wi) {
  const double e = fast_exp(xr);
  double s, c;
  fast_sincos(xi, s, c);
  wr = e * c;
  wi = e * s;
}

// pow(z, a) for real a via the polar path: exp(a*log|z|) cis(a*arg z).
// log|z| is computed as 0.5*log(|z|^2); fine for the tape's magnitudes
// (no overflow of |z|^2) and covered by the documented ULP bound.
inline void cpow_fast(double zr, double zi, double a, double& wr, double& wi) {
  const double n2 = zr * zr + zi * zi;
  const double lr = 0.5 * fast_log(n2);
  const double th = fast_atan2(zi, zr);
  const double e = fast_exp(a * lr);
  double s, c;
  fast_sincos(a * th, s, c);
  wr = e * c;
  wi = e * s;
}

}  // namespace cosm::numerics::simd
