#include "numerics/fitting.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "numerics/roots.hpp"
#include "numerics/special.hpp"

namespace cosm::numerics {

SampleStats compute_stats(std::span<const double> samples) {
  COSM_REQUIRE(!samples.empty(), "stats require a non-empty sample");
  SampleStats st;
  st.count = samples.size();
  st.min = samples[0];
  st.max = samples[0];
  double sum = 0.0;
  double sum_log = 0.0;
  bool logs_valid = true;
  for (const double x : samples) {
    COSM_REQUIRE(x >= 0, "latency samples must be non-negative");
    sum += x;
    st.min = std::min(st.min, x);
    st.max = std::max(st.max, x);
    if (x > 0) {
      sum_log += std::log(x);
    } else {
      logs_valid = false;
    }
  }
  const double n = static_cast<double>(st.count);
  st.mean = sum / n;
  double ss = 0.0;
  double ss_log = 0.0;
  st.mean_log = logs_valid ? sum_log / n
                           : std::numeric_limits<double>::quiet_NaN();
  for (const double x : samples) {
    const double d = x - st.mean;
    ss += d * d;
    if (logs_valid) {
      const double dl = std::log(x) - st.mean_log;
      ss_log += dl * dl;
    }
  }
  st.variance = st.count > 1 ? ss / (n - 1.0) : 0.0;
  st.variance_log = (logs_valid && st.count > 1)
                        ? ss_log / (n - 1.0)
                        : std::numeric_limits<double>::quiet_NaN();
  return st;
}

Degenerate fit_degenerate(std::span<const double> samples) {
  COSM_REQUIRE(!samples.empty(), "degenerate fit needs samples");
  // The median rather than the mean: on exactly-constant data the median
  // is bitwise equal to the samples, so the step CDF evaluates to 1 *at*
  // the samples and the KS statistic is exactly zero; a floating-point
  // mean can land one ULP above and flip the step.
  std::vector<double> sorted(samples.begin(), samples.end());
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  return Degenerate(sorted[sorted.size() / 2]);
}

Exponential fit_exponential(std::span<const double> samples) {
  const SampleStats st = compute_stats(samples);
  COSM_REQUIRE(st.mean > 0, "exponential fit needs a positive mean");
  return Exponential(1.0 / st.mean);
}

Gamma fit_gamma(std::span<const double> samples) {
  const SampleStats st = compute_stats(samples);
  COSM_REQUIRE(st.mean > 0, "gamma fit needs a positive mean");
  // Degenerate-looking data: fall back to a sharp moment-matched shape.
  // The shape is capped at 1e6 (CV = 0.1%): beyond that the distribution
  // is numerically indistinguishable from a point mass, while transforms
  // like (l/(l+s))^k lose all precision once k * eps ~ 1.
  if (st.variance <= 1e-18 * st.mean * st.mean || std::isnan(st.mean_log)) {
    const double shape =
        st.variance > 0
            ? std::min(st.mean * st.mean / st.variance, 1e6)
            : 1e6;
    return Gamma(shape, shape / st.mean);
  }
  // MLE: maximize sum log f => solve ln(k) - psi(k) = s, with
  // s = ln(mean) - mean(ln x) > 0 by Jensen.
  const double s = std::log(st.mean) - st.mean_log;
  COSM_CHECK(s > 0, "Jensen gap must be positive for non-constant data");
  // Minka's closed-form starting point.
  double k0 = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
              (12.0 * s);
  k0 = std::clamp(k0, 1e-6, 1e9);
  const auto f = [s](double k) { return std::log(k) - digamma(k) - s; };
  const auto df = [](double k) { return 1.0 / k - trigamma(k); };
  const RootResult root =
      newton_safeguarded(f, df, k0, 1e-8, 1e10, 1e-12, 200);
  const double shape = std::min(root.converged ? root.x : k0, 1e6);
  return Gamma(shape, shape / st.mean);
}

TruncatedNormal fit_truncated_normal(std::span<const double> samples) {
  // Sample moments of the truncated variable are a serviceable estimate
  // when the truncation point is far in the lower tail (latency data);
  // the KS ranking downstream judges the result fairly either way.
  const SampleStats st = compute_stats(samples);
  const double sigma = std::sqrt(std::max(st.variance, 1e-24));
  return TruncatedNormal(st.mean, sigma);
}

Lognormal fit_lognormal(std::span<const double> samples) {
  const SampleStats st = compute_stats(samples);
  COSM_REQUIRE(!std::isnan(st.mean_log),
               "lognormal fit requires strictly positive samples");
  const double sigma = std::sqrt(std::max(st.variance_log, 1e-24));
  return Lognormal(st.mean_log, sigma);
}

Weibull fit_weibull(std::span<const double> samples) {
  const SampleStats st = compute_stats(samples);
  COSM_REQUIRE(!std::isnan(st.mean_log),
               "weibull fit requires strictly positive samples");
  // MLE for the shape: solve g(c) = sum x^c ln x / sum x^c - 1/c - mean(ln x).
  const auto g = [&samples, &st](double c) {
    double sum_pow = 0.0;
    double sum_pow_log = 0.0;
    for (const double x : samples) {
      const double p = std::pow(x, c);
      sum_pow += p;
      sum_pow_log += p * std::log(x);
    }
    return sum_pow_log / sum_pow - 1.0 / c - st.mean_log;
  };
  double lo = 0.05;
  double hi = 2.0;
  if (!expand_bracket_upward(g, lo, hi, 2.0, 30)) {
    // Could not bracket (e.g. pathological data) — moment heuristic.
    const double cv2 = st.variance / (st.mean * st.mean);
    const double shape = std::clamp(std::pow(cv2, -0.543), 0.1, 50.0);
    const double scale =
        st.mean / std::exp(std::lgamma(1.0 + 1.0 / shape));
    return Weibull(shape, scale);
  }
  const RootResult root = brent(g, lo, hi, 1e-10);
  const double shape = root.x;
  double sum_pow = 0.0;
  for (const double x : samples) sum_pow += std::pow(x, shape);
  const double scale = std::pow(
      sum_pow / static_cast<double>(samples.size()), 1.0 / shape);
  return Weibull(shape, scale);
}

double ks_statistic(std::span<const double> sorted_samples,
                    const Distribution& dist) {
  COSM_REQUIRE(!sorted_samples.empty(), "KS requires a non-empty sample");
  COSM_REQUIRE(
      std::is_sorted(sorted_samples.begin(), sorted_samples.end()),
      "KS requires an ascending sample");
  const double n = static_cast<double>(sorted_samples.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sorted_samples.size(); ++i) {
    const double x = sorted_samples[i];
    const double f = dist.cdf(x);
    // For CDFs with atoms (Degenerate), the D- branch must compare the
    // empirical CDF's left limit against F(x-), not F(x); approximate the
    // left limit with a tiny relative backstep.
    const double f_minus = dist.cdf(x - 1e-9 * (1.0 + std::abs(x)));
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    worst = std::max(worst, std::max(f_minus - lo, hi - f));
  }
  return std::max(worst, 0.0);
}

FitSelection fit_best(std::span<const double> samples, bool extended) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  FitSelection selection;
  const auto try_fit = [&](const std::string& name, auto&& fitter) {
    try {
      DistPtr dist = fitter();
      const double ks = ks_statistic(sorted, *dist);
      selection.candidates.push_back({name, std::move(dist), ks});
    } catch (const std::exception&) {
      // Candidate not applicable to this sample; skip it.
    }
  };
  try_fit("exponential", [&] {
    return std::make_shared<Exponential>(fit_exponential(samples));
  });
  try_fit("degenerate", [&] {
    return std::make_shared<Degenerate>(fit_degenerate(samples));
  });
  try_fit("normal", [&] {
    return std::make_shared<TruncatedNormal>(fit_truncated_normal(samples));
  });
  try_fit("gamma",
          [&] { return std::make_shared<Gamma>(fit_gamma(samples)); });
  if (extended) {
    try_fit("lognormal", [&] {
      return std::make_shared<Lognormal>(fit_lognormal(samples));
    });
    try_fit("weibull", [&] {
      return std::make_shared<Weibull>(fit_weibull(samples));
    });
  }
  COSM_CHECK(!selection.candidates.empty(), "no fit candidate succeeded");
  std::sort(selection.candidates.begin(), selection.candidates.end(),
            [](const FitCandidate& a, const FitCandidate& b) {
              return a.ks < b.ks;
            });
  return selection;
}

}  // namespace cosm::numerics
