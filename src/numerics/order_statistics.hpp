// Order-statistic latency distributions — the redundancy extension's
// model-side counterpart of the simulator's hedged and (n,k) fan-out
// reads.
//
// The paper's model predicts the latency of ONE attempt.  Tail-tolerant
// request scheduling completes a logical request from SEVERAL concurrent
// attempts: a hedged GET finishes when either the primary attempt or a
// delayed second attempt responds, and an (n,k) coded read finishes on
// the k-th of n attempts.  Under the independent-replica approximation
// (attempt latencies i.i.d. copies of the single-attempt response T with
// CDF F), the completed-request CDF has closed forms in F:
//
//   min of n        F_(1:n)(t) = 1 - (1 - F(t))^n
//   k-th of n       F_(k:n)(t) = sum_{j=k}^{n} C(n,j) F(t)^j (1-F(t))^{n-j}
//   hedged at d     F_h(t)     = F(t)                         for t <  d
//                                1 - (1-F(t))(1-F(t-d))       for t >= d
//
// F itself only exists as a Laplace transform (the response convolution),
// so these combinators cannot stay in transform space: an order statistic
// of a distribution has no algebraic expression in its transform.  The
// classes below therefore materialize F ONCE on a uniform grid (batched
// tape inversion over ~512 points, horizon at the 0.9999 quantile), apply
// the closed form pointwise, and serve the result as a piecewise-linear
// CDF: cdf() interpolates the grid, laplace() integrates the grid in
// closed form per segment (so the distribution composes with the rest of
// the transform algebra), and moments come from the same grid.  Residual
// tail mass beyond the horizon is carried as an atom at the horizon,
// keeping laplace(0) == 1 and the moments consistent.
//
// Fork-join correction.  Independence is optimistic: concurrent attempts
// share arrival bursts, so their queues are busy at the same times and
// the realized diversity is smaller than n.  `correlation` in [0, 1]
// blends the independent order-statistic SURVIVAL function geometrically
// toward the single-attempt survival,
//
//   1 - F_corr = (1 - F_os)^{1-c} (1 - F)^{c},
//
// which for the min statistic is exactly an effective replica count
// n_eff = n - c (n - 1): full diversity at c = 0, no benefit at c = 1.
// The model layer passes the backend utilization as c (busy queues are
// exactly when attempts correlate); see core::RedundancyOptions.
//
// Tape integration: the compiler flattens OrderStatistic to a dedicated
// MIN-OF-K / KTH-OF-N leaf op carrying the combined grid in its params
// (fingerprinted like any other leaf), evaluated through the SAME
// piecewise_cdf_laplace helper as the scalar walk — bit-identical by
// construction.  HedgedResponse rides the generic-leaf fallback, which
// is bit-identical by definition (it calls laplace_many).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "numerics/distribution.hpp"

namespace cosm::numerics {

namespace detail {

// Laplace–Stieltjes transform of the piecewise-linear CDF with values
// cdf[i] at t_i = i * dt, an atom of mass cdf[0] at zero and an atom of
// the residual tail mass 1 - cdf[count-1] at the horizon t_{count-1}:
//
//   L(s) = cdf[0]
//        + sum_i (cdf[i+1]-cdf[i])/dt * e^{-s t_i} * (1 - e^{-s dt})/s
//        + (1 - cdf[count-1]) e^{-s t_{count-1}},
//
// with the (1 - e^{-z})/s factor switching to its series
// dt (1 - z/2 + z^2/6 - z^3/24), z = s dt, for small |z|.  This is the
// ONE definition both the scalar laplace() of the grid-backed
// distributions and the tape's MIN-OF-K / KTH-OF-N ops call, so tape and
// tree evaluation are bit-identical.  Precondition: count >= 2, dt > 0.
std::complex<double> piecewise_cdf_laplace(std::complex<double> s, double dt,
                                           const double* cdf,
                                           std::size_t count);

}  // namespace detail

// Latency of the k-th fastest of n concurrent attempts, each distributed
// as `base` (independent-replica approximation, optionally blended by
// `correlation` — see file comment).  k == 1 is the hedge-everything /
// replicated-read min; k < n is an (n,k) coded read that needs any k
// chunks.  Transform-only for the simulator (sample() throws): the
// simulator runs real fan-out instead.
class OrderStatistic final : public Distribution {
 public:
  // Preconditions: base != nullptr with finite positive mean,
  // 1 <= k <= n, n >= 1, correlation in [0, 1], grid_points >= 2.
  OrderStatistic(DistPtr base, unsigned n, unsigned k,
                 double correlation = 0.0, std::size_t grid_points = 513);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return mean_; }
  double second_moment() const override { return second_; }
  double cdf(double t) const override;

  unsigned n() const { return n_; }
  unsigned k() const { return k_; }
  double correlation() const { return correlation_; }
  const DistPtr& base() const { return base_; }

  // The combined F_(k:n) grid (tape-compiler interface): values at
  // t_i = i * grid_dt().
  double grid_dt() const { return dt_; }
  const std::vector<double>& grid() const { return grid_; }

 private:
  DistPtr base_;
  unsigned n_;
  unsigned k_;
  double correlation_;
  double dt_ = 0.0;
  std::vector<double> grid_;
  double mean_ = 0.0;
  double second_ = 0.0;
};

// Latency of a request hedged at deadline `delay`: the primary attempt
// races a second attempt issued `delay` seconds later (both distributed
// as `base`; independent-replica approximation with the same
// `correlation` blend).  Compiles through the tape's generic-leaf path.
class HedgedResponse final : public Distribution {
 public:
  // Preconditions: base != nullptr with finite positive mean, delay > 0
  // and finite, correlation in [0, 1], grid_points >= 2.
  HedgedResponse(DistPtr base, double delay, double correlation = 0.0,
                 std::size_t grid_points = 513);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return mean_; }
  double second_moment() const override { return second_; }
  double cdf(double t) const override;

  double delay() const { return delay_; }
  double correlation() const { return correlation_; }
  const DistPtr& base() const { return base_; }
  double grid_dt() const { return dt_; }
  const std::vector<double>& grid() const { return grid_; }

 private:
  DistPtr base_;
  double delay_;
  double correlation_;
  double dt_ = 0.0;
  std::vector<double> grid_;
  double mean_ = 0.0;
  double second_ = 0.0;
};

}  // namespace cosm::numerics
