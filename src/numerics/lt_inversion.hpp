// Numerical inversion of Laplace transforms.
//
// The model's outputs (waiting-time and response-latency distributions)
// exist only as Laplace transforms; predicting "the percentile of requests
// meeting a 100 ms SLA" means evaluating the CDF at the SLA, i.e. inverting
// L[F](s) = L[f](s) / s at t = SLA.  Three classic algorithms are provided:
//
//  * Euler (Abate–Whitt 2006 unified framework) — the default.  Robust for
//    CDFs (bounded, monotone), needs complex evaluations on a vertical
//    contour Re s = const > 0.
//  * Fixed Talbot (Abate–Valkó) — deformed contour, excellent for smooth
//    transforms; used as a cross-check.
//  * Gaver–Stehfest — real-axis only; useful for transforms that are only
//    cheap to evaluate for real s, and as a third opinion in tests.
//
// At a jump discontinuity of F these methods converge to the midpoint; SLA
// evaluation points in the experiments sit away from the model's atoms.
//
// Batching: every inversion materializes its whole contour up front and
// issues ONE transform evaluation over all nodes, then reduces.  The
// scalar LaplaceFn overloads loop that evaluation per node; the
// BatchLaplaceFn overloads hand the full node array to the callee (a
// Distribution::laplace_many loop, or a compiled TransformTape) in one
// call.  Per-node arithmetic is identical either way, so scalar and
// batched paths are bit-identical — the contract the tape's perf gates
// and tests/numerics/test_transform_tape.cpp enforce.
//
// Thread-safety: every function here is safe to call concurrently — the
// node weights each algorithm needs (Euler's xi, Stehfest's V_k) are
// memoized per term count behind a mutex, contour scratch buffers are
// thread-local, and all remaining state is call-local.  The provided `lt`
// callback itself must be safe to invoke from multiple threads; every
// Distribution in this repo qualifies (they are immutable after
// construction).
//
// Units: `t` is in the same unit as the random variable behind the
// transform — seconds everywhere in this repo.  `lt` must be the
// Laplace(–Stieltjes) transform with `s` in reciprocal units (1/s).
#pragma once

#include <complex>
#include <functional>
#include <span>
#include <vector>

namespace cosm::numerics {

using LaplaceFn = std::function<std::complex<double>(std::complex<double>)>;
using RealLaplaceFn = std::function<double(double)>;
// Batched transform evaluation: fill out[i] = L(s[i]) for every i (spans
// have equal length).  Bind Distribution::laplace_many or
// TransformTape::evaluate here.
using BatchLaplaceFn = std::function<void(
    std::span<const std::complex<double>>, std::span<std::complex<double>>)>;

// Inverts L[f] at t with the Euler algorithm using 2M+1 terms.
// Preconditions: t > 0 (seconds), 2 <= m <= 30 — M around 20 is the sweet
// spot in double precision (the binomial weights grow like 10^{M/3};
// beyond ~M=25 cancellation dominates).  Violations throw
// std::invalid_argument.  Costs 2M+1 evaluations of `lt` on the vertical
// contour Re s = M ln(10) / (3t).
double invert_euler(const LaplaceFn& lt, double t, int m = 20);
// Batched form: one lt_many call over the whole contour; bit-identical to
// the scalar overload.
double invert_euler(const BatchLaplaceFn& lt_many, double t, int m = 20);

// Inverts L[f] at t with the fixed-Talbot algorithm using m nodes.
// Preconditions: t > 0 (seconds), m >= 4.  Costs m evaluations of `lt` on
// the deformed Talbot contour.
double invert_talbot(const LaplaceFn& lt, double t, int m = 32);
// Batched form; bit-identical to the scalar overload.
double invert_talbot(const BatchLaplaceFn& lt_many, double t, int m = 32);

// Inverts L[f] at t with Gaver–Stehfest using n terms.
// Preconditions: t > 0 (seconds), n even and in [2, 18] (the V_k weights
// alternate with magnitude ~10^{n/2}; beyond 18 cancellation destroys
// double precision).  Real-axis evaluations only.
double invert_gaver_stehfest(const RealLaplaceFn& lt, double t, int n = 16);

// Evaluates the CDF at t of the distribution whose density transform is
// `lt`, by inverting lt(s)/s; the result is clamped to [0, 1].  t <= 0
// returns 0 (our latencies are strictly positive away from atoms at zero,
// where inversion is ill-posed anyway).  This is the pipeline's unit of
// work — one SLA-percentile query per device costs exactly one call —
// and what core::PredictionCache memoizes across identical devices.
double cdf_from_laplace(const LaplaceFn& lt, double t, int m = 20);
// Batched form; bit-identical to the scalar overload.
double cdf_from_laplace(const BatchLaplaceFn& lt_many, double t, int m = 20);

// Multi-point CDF evaluation: one value per entry of `ts` (entries <= 0
// yield 0).  Materializes the contours of ALL t-points and issues a
// single lt_many call over the concatenation, so SLA sweeps and Brent
// ladders amortize transform setup (tape dispatch, virtual-call batching)
// across points.  Element i is bit-identical to
// cdf_from_laplace(lt_many, ts[i], m).
std::vector<double> cdf_many_from_laplace(const BatchLaplaceFn& lt_many,
                                          std::span<const double> ts,
                                          int m = 20);

// Warm-start state for quantile searches over monotone sweeps (SLA
// ladders, rate grids): carries the previous root so the next bracket
// seeds at [prev/2, 2·prev] instead of re-growing from mean_hint.  The
// root found is the same (the CDF is monotone, Brent converges to the
// unique crossing within tolerance); only the bracketing work changes —
// so warm-started sweeps agree with cold calls to the Brent tolerance,
// not bit-exactly.  Reset (or default-construct) when the swept quantity
// jumps.
struct QuantileWarmStart {
  // Previous solution in seconds; <= 0 (or non-finite) means cold start.
  double previous = 0.0;
};

// Finds the p-quantile of the same distribution by bracketing + Brent on
// cdf_from_laplace.  Preconditions: 0 < p < 1, mean_hint > 0 (seconds;
// seeds the bracket — use the distribution mean).  Throws
// std::invalid_argument if the quantile cannot be bracketed below `t_max`
// or the root search fails to converge.  When `warm` is non-null the
// bracket seeds from warm->previous (see QuantileWarmStart) and the root
// found is written back to it.
double quantile_from_laplace(const LaplaceFn& lt, double p, double mean_hint,
                             double t_max = 1e9,
                             QuantileWarmStart* warm = nullptr);
// Batched form: every CDF probe of the search runs through `lt_many`.
double quantile_from_laplace(const BatchLaplaceFn& lt_many, double p,
                             double mean_hint, double t_max = 1e9,
                             QuantileWarmStart* warm = nullptr);

// ------------------- contour plumbing (shared internals) ------------------
//
// The scalar inverters, the batched inverters, and TransformTape's fused
// inversion entry points all build the same contours and reduce with the
// same weights, in the same node order.  These helpers are the single
// source of truth for that arithmetic; they are public so the tape unit
// (and tests) can reuse them, but they are an implementation detail of
// the inversion layer, not a stable API.

// Number of Euler contour nodes for term count m: 2m + 1.
int euler_terms(int m);
// Fills out[k] = (M ln10/3 + i·pi·k) / t for k in [0, 2m]; out.size()
// must equal euler_terms(m).
void euler_fill_nodes(double t, int m, std::span<std::complex<double>> out);
// Euler reduction sum_k eta_k Re(values[k]) / t, with the same weight
// expressions and summation order as the scalar loop.
double euler_reduce(double t, int m,
                    std::span<const std::complex<double>> values);

// Number of Talbot contour nodes: m (node 0 is the real point s = r).
int talbot_terms(int m);
// Fills the fixed-Talbot contour s(theta_k), k in [0, m).
void talbot_fill_nodes(double t, int m, std::span<std::complex<double>> out);
// Talbot reduction with the same per-node geometry factors and summation
// order as the scalar loop.
double talbot_reduce(double t, int m,
                     std::span<const std::complex<double>> values);

}  // namespace cosm::numerics
