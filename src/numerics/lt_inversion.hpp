// Numerical inversion of Laplace transforms.
//
// The model's outputs (waiting-time and response-latency distributions)
// exist only as Laplace transforms; predicting "the percentile of requests
// meeting a 100 ms SLA" means evaluating the CDF at the SLA, i.e. inverting
// L[F](s) = L[f](s) / s at t = SLA.  Three classic algorithms are provided:
//
//  * Euler (Abate–Whitt 2006 unified framework) — the default.  Robust for
//    CDFs (bounded, monotone), needs complex evaluations on a vertical
//    contour Re s = const > 0.
//  * Fixed Talbot (Abate–Valkó) — deformed contour, excellent for smooth
//    transforms; used as a cross-check.
//  * Gaver–Stehfest — real-axis only; useful for transforms that are only
//    cheap to evaluate for real s, and as a third opinion in tests.
//
// At a jump discontinuity of F these methods converge to the midpoint; SLA
// evaluation points in the experiments sit away from the model's atoms.
//
// Batching: every inversion materializes its whole contour up front and
// issues ONE transform evaluation over all nodes, then reduces.  The
// scalar LaplaceFn overloads loop that evaluation per node; the
// BatchLaplaceFn overloads hand the full node array to the callee (a
// Distribution::laplace_many loop, or a compiled TransformTape) in one
// call.  Per-node arithmetic is identical either way, so scalar and
// batched paths are bit-identical — the contract the tape's perf gates
// and tests/numerics/test_transform_tape.cpp enforce.
//
// Thread-safety: every function here is safe to call concurrently — the
// node weights each algorithm needs (Euler's xi, Stehfest's V_k) are
// memoized per term count behind a mutex, contour scratch buffers are
// thread-local, and all remaining state is call-local.  The provided `lt`
// callback itself must be safe to invoke from multiple threads; every
// Distribution in this repo qualifies (they are immutable after
// construction).
//
// Units: `t` is in the same unit as the random variable behind the
// transform — seconds everywhere in this repo.  `lt` must be the
// Laplace(–Stieltjes) transform with `s` in reciprocal units (1/s).
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace cosm::numerics {

using LaplaceFn = std::function<std::complex<double>(std::complex<double>)>;
using RealLaplaceFn = std::function<double(double)>;
// Batched transform evaluation: fill out[i] = L(s[i]) for every i (spans
// have equal length).  Bind Distribution::laplace_many or
// TransformTape::evaluate here.
using BatchLaplaceFn = std::function<void(
    std::span<const std::complex<double>>, std::span<std::complex<double>>)>;

// Inverts L[f] at t with the Euler algorithm using 2M+1 terms.
// Preconditions: t > 0 (seconds), 2 <= m <= 30 — M around 20 is the sweet
// spot in double precision (the binomial weights grow like 10^{M/3};
// beyond ~M=25 cancellation dominates).  Violations throw
// std::invalid_argument.  Costs 2M+1 evaluations of `lt` on the vertical
// contour Re s = M ln(10) / (3t).
double invert_euler(const LaplaceFn& lt, double t, int m = 20);
// Batched form: one lt_many call over the whole contour; bit-identical to
// the scalar overload.
double invert_euler(const BatchLaplaceFn& lt_many, double t, int m = 20);

// Inverts L[f] at t with the fixed-Talbot algorithm using m nodes.
// Preconditions: t > 0 (seconds), m >= 4.  Costs m evaluations of `lt` on
// the deformed Talbot contour.
double invert_talbot(const LaplaceFn& lt, double t, int m = 32);
// Batched form; bit-identical to the scalar overload.
double invert_talbot(const BatchLaplaceFn& lt_many, double t, int m = 32);

// Inverts L[f] at t with Gaver–Stehfest using n terms.
// Preconditions: t > 0 (seconds), n even and in [2, 18] (the V_k weights
// alternate with magnitude ~10^{n/2}; beyond 18 cancellation destroys
// double precision).  Real-axis evaluations only.
double invert_gaver_stehfest(const RealLaplaceFn& lt, double t, int n = 16);

// Quality verdict of one CDF inversion — how far the raw Euler sum sat
// outside the mathematically required [0, 1] before the clamp:
//  * kConverged  — in range up to the inversion's intrinsic accuracy
//                  (|excess| <= 1e-9; the ~10^-8 Abate–Whitt error floor
//                  at M=20 rounded up);
//  * kTruncated  — visible series-truncation overshoot (excess <= 1e-3):
//                  the result is usable but the term count is marginal
//                  for this transform at this t;
//  * kClamped    — the raw value was wildly out of range (e.g. -0.4): the
//                  clamped value is a fabrication, not an estimate — the
//                  inversion diverged for this transform/t/m combination;
//  * kNonFinite  — the raw value was NaN or infinite (overflow inside the
//                  transform or the reduction).
// Every inversion bumps exactly one obs counter (inversion.converged /
// .truncated / .clamped / .nonfinite) so failed inversions are visible in
// any traced run; the *_checked entry points additionally hand the
// verdict to the caller.  See docs/OBSERVABILITY.md for the semantics.
enum class InversionQuality : std::uint8_t {
  kConverged,
  kTruncated,
  kClamped,
  kNonFinite,
};

// Classifies a raw (pre-clamp) CDF value against the thresholds above.
InversionQuality classify_cdf_value(double raw);

// A CDF point with its quality verdict.  `value` preserves the historical
// return exactly (clamped to [0, 1]; a non-finite raw value propagates
// unchanged) so checked and unchecked paths are bit-identical.
struct CdfPoint {
  double value = 0.0;
  InversionQuality quality = InversionQuality::kConverged;
};

// Evaluates the CDF at t of the distribution whose density transform is
// `lt`, by inverting lt(s)/s; the result is clamped to [0, 1].  t <= 0
// returns 0 (our latencies are strictly positive away from atoms at zero,
// where inversion is ill-posed anyway).  This is the pipeline's unit of
// work — one SLA-percentile query per device costs exactly one call —
// and what core::PredictionCache memoizes across identical devices.
// The inversion's quality verdict is recorded in the obs counters; use
// the _checked form to receive it directly.
double cdf_from_laplace(const LaplaceFn& lt, double t, int m = 20);
// Batched form; bit-identical to the scalar overload.
double cdf_from_laplace(const BatchLaplaceFn& lt_many, double t, int m = 20);

// Checked forms: same value, plus the quality verdict.  A kClamped or
// kNonFinite verdict means the returned value is NOT a valid CDF estimate
// and must not be silently trusted.
CdfPoint cdf_from_laplace_checked(const LaplaceFn& lt, double t, int m = 20);
CdfPoint cdf_from_laplace_checked(const BatchLaplaceFn& lt_many, double t,
                                  int m = 20);

// Multi-point CDF evaluation: one value per entry of `ts` (entries <= 0
// yield 0).  Materializes the contours of ALL t-points and issues a
// single lt_many call over the concatenation, so SLA sweeps and Brent
// ladders amortize transform setup (tape dispatch, virtual-call batching)
// across points.  Element i is bit-identical to
// cdf_from_laplace(lt_many, ts[i], m).
std::vector<double> cdf_many_from_laplace(const BatchLaplaceFn& lt_many,
                                          std::span<const double> ts,
                                          int m = 20);
// Quality-propagating form: quality[i] receives the verdict for ts[i]
// (entries with ts[i] <= 0 report kConverged for their exact 0).
// Precondition: quality.size() == ts.size().  Values are bit-identical
// to the quality-less overload — out-of-range raw sums are still clamped
// into the returned vector, but the verdict tells the caller (and the
// obs counters tell any traced run) that flooring happened.
std::vector<double> cdf_many_from_laplace(const BatchLaplaceFn& lt_many,
                                          std::span<const double> ts, int m,
                                          std::span<InversionQuality> quality);

// Warm-start state for quantile searches over monotone sweeps (SLA
// ladders, rate grids): carries the previous root so the next bracket
// seeds at [prev/2, 2·prev] instead of re-growing from mean_hint.  The
// root found is the same (the CDF is monotone, Brent converges to the
// unique crossing within tolerance); only the bracketing work changes —
// so warm-started sweeps agree with cold calls to the Brent tolerance,
// not bit-exactly.  Reset (or default-construct) when the swept quantity
// jumps.
//
// Regime guard: a carried root is only a good seed while consecutive
// sweep points belong to the same *curve family* — the same device set,
// the same structural model.  Crossing a regime change (a failed device
// dropping out of a what-if sweep, a degraded device set healing) can
// leave the seed orders of magnitude off, and a stale bracket then costs
// a long shrink/expand ladder — or, for searches without a validity
// check, a wrong bracket.  Callers that can fingerprint their regime
// (e.g. SystemModel::latency_quantile folds the devices' structural tape
// fingerprints) call enter_regime() before seeding: a fingerprint change
// resets the carried root and bumps quantile.warm_reject_regime.
struct QuantileWarmStart {
  // Previous solution in seconds; <= 0 (or non-finite) means cold start.
  double previous = 0.0;
  // Curve-family fingerprint of the sweep the carried root belongs to;
  // 0 = not tracked (enter_regime never called).
  std::uint64_t regime = 0;

  // Declares that the next search belongs to `regime_fp` (any non-zero
  // value).  A change of regime invalidates the carried root.
  void enter_regime(std::uint64_t regime_fp);

  void reset() {
    previous = 0.0;
    regime = 0;
  }
};

// Finds the p-quantile of the same distribution by bracketing + Brent on
// cdf_from_laplace.  Preconditions: 0 < p < 1, mean_hint > 0 (seconds;
// seeds the bracket — use the distribution mean).  Throws
// std::invalid_argument if the quantile cannot be bracketed below `t_max`
// or the root search fails to converge.  When `warm` is non-null the
// bracket seeds from warm->previous (see QuantileWarmStart) and the root
// found is written back to it.
double quantile_from_laplace(const LaplaceFn& lt, double p, double mean_hint,
                             double t_max = 1e9,
                             QuantileWarmStart* warm = nullptr);
// Batched form: every CDF probe of the search runs through `lt_many`.
double quantile_from_laplace(const BatchLaplaceFn& lt_many, double p,
                             double mean_hint, double t_max = 1e9,
                             QuantileWarmStart* warm = nullptr);

// ------------------- contour plumbing (shared internals) ------------------
//
// The scalar inverters, the batched inverters, and TransformTape's fused
// inversion entry points all build the same contours and reduce with the
// same weights, in the same node order.  These helpers are the single
// source of truth for that arithmetic; they are public so the tape unit
// (and tests) can reuse them, but they are an implementation detail of
// the inversion layer, not a stable API.

// Number of Euler contour nodes for term count m: 2m + 1.
int euler_terms(int m);
// Fills out[k] = (M ln10/3 + i·pi·k) / t for k in [0, 2m]; out.size()
// must equal euler_terms(m).
void euler_fill_nodes(double t, int m, std::span<std::complex<double>> out);
// Euler reduction sum_k eta_k Re(values[k]) / t, with the same weight
// expressions and summation order as the scalar loop.
double euler_reduce(double t, int m,
                    std::span<const std::complex<double>> values);

// Number of Talbot contour nodes: m (node 0 is the real point s = r).
int talbot_terms(int m);
// Fills the fixed-Talbot contour s(theta_k), k in [0, m).
void talbot_fill_nodes(double t, int m, std::span<std::complex<double>> out);
// Talbot reduction with the same per-node geometry factors and summation
// order as the scalar loop.
double talbot_reduce(double t, int m,
                     std::span<const std::complex<double>> values);

}  // namespace cosm::numerics
