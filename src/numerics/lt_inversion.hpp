// Numerical inversion of Laplace transforms.
//
// The model's outputs (waiting-time and response-latency distributions)
// exist only as Laplace transforms; predicting "the percentile of requests
// meeting a 100 ms SLA" means evaluating the CDF at the SLA, i.e. inverting
// L[F](s) = L[f](s) / s at t = SLA.  Three classic algorithms are provided:
//
//  * Euler (Abate–Whitt 2006 unified framework) — the default.  Robust for
//    CDFs (bounded, monotone), needs complex evaluations on a vertical
//    contour Re s = const > 0.
//  * Fixed Talbot (Abate–Valkó) — deformed contour, excellent for smooth
//    transforms; used as a cross-check.
//  * Gaver–Stehfest — real-axis only; useful for transforms that are only
//    cheap to evaluate for real s, and as a third opinion in tests.
//
// At a jump discontinuity of F these methods converge to the midpoint; SLA
// evaluation points in the experiments sit away from the model's atoms.
//
// Thread-safety: every function here is safe to call concurrently — the
// node weights each algorithm needs (Euler's xi, Stehfest's V_k) are
// memoized per term count behind a mutex, and all remaining state is
// call-local.  The provided `lt` callback itself must be safe to invoke
// from multiple threads; every Distribution in this repo qualifies (they
// are immutable after construction).
//
// Units: `t` is in the same unit as the random variable behind the
// transform — seconds everywhere in this repo.  `lt` must be the
// Laplace(–Stieltjes) transform with `s` in reciprocal units (1/s).
#pragma once

#include <complex>
#include <functional>

namespace cosm::numerics {

using LaplaceFn = std::function<std::complex<double>(std::complex<double>)>;
using RealLaplaceFn = std::function<double(double)>;

// Inverts L[f] at t with the Euler algorithm using 2M+1 terms.
// Preconditions: t > 0 (seconds), 2 <= m <= 30 — M around 20 is the sweet
// spot in double precision (the binomial weights grow like 10^{M/3};
// beyond ~M=25 cancellation dominates).  Violations throw
// std::invalid_argument.  Costs 2M+1 evaluations of `lt` on the vertical
// contour Re s = M ln(10) / (3t).
double invert_euler(const LaplaceFn& lt, double t, int m = 20);

// Inverts L[f] at t with the fixed-Talbot algorithm using m nodes.
// Preconditions: t > 0 (seconds), m >= 4.  Costs m evaluations of `lt` on
// the deformed Talbot contour.
double invert_talbot(const LaplaceFn& lt, double t, int m = 32);

// Inverts L[f] at t with Gaver–Stehfest using n terms.
// Preconditions: t > 0 (seconds), n even and in [2, 18] (the V_k weights
// alternate with magnitude ~10^{n/2}; beyond 18 cancellation destroys
// double precision).  Real-axis evaluations only.
double invert_gaver_stehfest(const RealLaplaceFn& lt, double t, int n = 16);

// Evaluates the CDF at t of the distribution whose density transform is
// `lt`, by inverting lt(s)/s; the result is clamped to [0, 1].  t <= 0
// returns 0 (our latencies are strictly positive away from atoms at zero,
// where inversion is ill-posed anyway).  This is the pipeline's unit of
// work — one SLA-percentile query per device costs exactly one call —
// and what core::PredictionCache memoizes across identical devices.
double cdf_from_laplace(const LaplaceFn& lt, double t, int m = 20);

// Finds the p-quantile of the same distribution by bracketing + Brent on
// cdf_from_laplace.  Preconditions: 0 < p < 1, mean_hint > 0 (seconds;
// seeds the bracket — use the distribution mean).  Throws
// std::invalid_argument if the quantile cannot be bracketed below `t_max`
// or the root search fails to converge.
double quantile_from_laplace(const LaplaceFn& lt, double p, double mean_hint,
                             double t_max = 1e9);

}  // namespace cosm::numerics
