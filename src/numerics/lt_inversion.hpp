// Numerical inversion of Laplace transforms.
//
// The model's outputs (waiting-time and response-latency distributions)
// exist only as Laplace transforms; predicting "the percentile of requests
// meeting a 100 ms SLA" means evaluating the CDF at the SLA, i.e. inverting
// L[F](s) = L[f](s) / s at t = SLA.  Three classic algorithms are provided:
//
//  * Euler (Abate–Whitt 2006 unified framework) — the default.  Robust for
//    CDFs (bounded, monotone), needs complex evaluations on a vertical
//    contour Re s = const > 0.
//  * Fixed Talbot (Abate–Valkó) — deformed contour, excellent for smooth
//    transforms; used as a cross-check.
//  * Gaver–Stehfest — real-axis only; useful for transforms that are only
//    cheap to evaluate for real s, and as a third opinion in tests.
//
// At a jump discontinuity of F these methods converge to the midpoint; SLA
// evaluation points in the experiments sit away from the model's atoms.
#pragma once

#include <complex>
#include <functional>

namespace cosm::numerics {

using LaplaceFn = std::function<std::complex<double>(std::complex<double>)>;
using RealLaplaceFn = std::function<double(double)>;

// Inverts L[f] at t > 0 with the Euler algorithm using 2M+1 terms.
// M around 20 is the sweet spot in double precision (the binomial weights
// grow like 10^{M/3}; beyond ~M=25 cancellation dominates).
double invert_euler(const LaplaceFn& lt, double t, int m = 20);

// Inverts L[f] at t > 0 with the fixed-Talbot algorithm using m nodes.
double invert_talbot(const LaplaceFn& lt, double t, int m = 32);

// Inverts L[f] at t > 0 with Gaver–Stehfest using n terms (n even, <= 18).
double invert_gaver_stehfest(const RealLaplaceFn& lt, double t, int n = 16);

// Evaluates the CDF at t of the distribution whose density transform is
// `lt`, by inverting lt(s)/s; the result is clamped to [0, 1].  t <= 0
// returns 0 (our latencies are strictly positive away from atoms at zero,
// where inversion is ill-posed anyway).
double cdf_from_laplace(const LaplaceFn& lt, double t, int m = 20);

// Finds the p-quantile of the same distribution by bracketing + Brent on
// cdf_from_laplace.  `mean_hint` seeds the bracket (use the distribution
// mean).  Throws if the quantile cannot be bracketed below `t_max`.
double quantile_from_laplace(const LaplaceFn& lt, double p, double mean_hint,
                             double t_max = 1e9);

}  // namespace cosm::numerics
