file(REMOVE_RECURSE
  "CMakeFiles/fig5_disk_fitting.dir/fig5_disk_fitting.cpp.o"
  "CMakeFiles/fig5_disk_fitting.dir/fig5_disk_fitting.cpp.o.d"
  "fig5_disk_fitting"
  "fig5_disk_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_disk_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
