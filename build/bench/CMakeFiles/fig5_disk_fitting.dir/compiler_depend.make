# Empty compiler generated dependencies file for fig5_disk_fitting.
# This may be replaced when dependencies are built.
