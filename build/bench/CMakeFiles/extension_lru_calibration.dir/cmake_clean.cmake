file(REMOVE_RECURSE
  "CMakeFiles/extension_lru_calibration.dir/extension_lru_calibration.cpp.o"
  "CMakeFiles/extension_lru_calibration.dir/extension_lru_calibration.cpp.o.d"
  "extension_lru_calibration"
  "extension_lru_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_lru_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
