# Empty compiler generated dependencies file for extension_lru_calibration.
# This may be replaced when dependencies are built.
