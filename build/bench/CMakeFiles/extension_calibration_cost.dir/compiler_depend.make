# Empty compiler generated dependencies file for extension_calibration_cost.
# This may be replaced when dependencies are built.
