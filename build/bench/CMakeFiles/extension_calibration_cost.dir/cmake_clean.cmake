file(REMOVE_RECURSE
  "CMakeFiles/extension_calibration_cost.dir/extension_calibration_cost.cpp.o"
  "CMakeFiles/extension_calibration_cost.dir/extension_calibration_cost.cpp.o.d"
  "extension_calibration_cost"
  "extension_calibration_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_calibration_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
