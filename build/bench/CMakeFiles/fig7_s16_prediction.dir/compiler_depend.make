# Empty compiler generated dependencies file for fig7_s16_prediction.
# This may be replaced when dependencies are built.
