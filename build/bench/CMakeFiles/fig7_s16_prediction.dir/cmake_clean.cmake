file(REMOVE_RECURSE
  "CMakeFiles/fig7_s16_prediction.dir/fig7_s16_prediction.cpp.o"
  "CMakeFiles/fig7_s16_prediction.dir/fig7_s16_prediction.cpp.o.d"
  "fig7_s16_prediction"
  "fig7_s16_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_s16_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
