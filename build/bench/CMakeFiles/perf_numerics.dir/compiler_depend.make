# Empty compiler generated dependencies file for perf_numerics.
# This may be replaced when dependencies are built.
