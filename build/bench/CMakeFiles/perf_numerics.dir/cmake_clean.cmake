file(REMOVE_RECURSE
  "CMakeFiles/perf_numerics.dir/perf_numerics.cpp.o"
  "CMakeFiles/perf_numerics.dir/perf_numerics.cpp.o.d"
  "perf_numerics"
  "perf_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
