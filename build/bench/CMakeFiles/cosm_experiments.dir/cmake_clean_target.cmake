file(REMOVE_RECURSE
  "../lib/libcosm_experiments.a"
)
