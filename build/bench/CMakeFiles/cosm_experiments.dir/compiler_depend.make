# Empty compiler generated dependencies file for cosm_experiments.
# This may be replaced when dependencies are built.
