file(REMOVE_RECURSE
  "../lib/libcosm_experiments.a"
  "../lib/libcosm_experiments.pdb"
  "CMakeFiles/cosm_experiments.dir/common/experiment.cpp.o"
  "CMakeFiles/cosm_experiments.dir/common/experiment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
