file(REMOVE_RECURSE
  "CMakeFiles/ablation_mg1k.dir/ablation_mg1k.cpp.o"
  "CMakeFiles/ablation_mg1k.dir/ablation_mg1k.cpp.o.d"
  "ablation_mg1k"
  "ablation_mg1k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mg1k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
