# Empty compiler generated dependencies file for ablation_mg1k.
# This may be replaced when dependencies are built.
