file(REMOVE_RECURSE
  "CMakeFiles/extension_mean_baseline.dir/extension_mean_baseline.cpp.o"
  "CMakeFiles/extension_mean_baseline.dir/extension_mean_baseline.cpp.o.d"
  "extension_mean_baseline"
  "extension_mean_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_mean_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
