# Empty dependencies file for extension_mean_baseline.
# This may be replaced when dependencies are built.
