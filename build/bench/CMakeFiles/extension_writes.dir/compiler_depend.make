# Empty compiler generated dependencies file for extension_writes.
# This may be replaced when dependencies are built.
