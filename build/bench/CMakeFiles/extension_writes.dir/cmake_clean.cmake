file(REMOVE_RECURSE
  "CMakeFiles/extension_writes.dir/extension_writes.cpp.o"
  "CMakeFiles/extension_writes.dir/extension_writes.cpp.o.d"
  "extension_writes"
  "extension_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
