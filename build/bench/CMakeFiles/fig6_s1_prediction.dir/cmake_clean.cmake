file(REMOVE_RECURSE
  "CMakeFiles/fig6_s1_prediction.dir/fig6_s1_prediction.cpp.o"
  "CMakeFiles/fig6_s1_prediction.dir/fig6_s1_prediction.cpp.o.d"
  "fig6_s1_prediction"
  "fig6_s1_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_s1_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
