# Empty compiler generated dependencies file for fig6_s1_prediction.
# This may be replaced when dependencies are built.
