# Empty dependencies file for extension_burstiness.
# This may be replaced when dependencies are built.
