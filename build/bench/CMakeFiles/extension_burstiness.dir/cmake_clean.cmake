file(REMOVE_RECURSE
  "CMakeFiles/extension_burstiness.dir/extension_burstiness.cpp.o"
  "CMakeFiles/extension_burstiness.dir/extension_burstiness.cpp.o.d"
  "extension_burstiness"
  "extension_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
