file(REMOVE_RECURSE
  "CMakeFiles/ablation_wta.dir/ablation_wta.cpp.o"
  "CMakeFiles/ablation_wta.dir/ablation_wta.cpp.o.d"
  "ablation_wta"
  "ablation_wta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
