
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_wta.cpp" "bench/CMakeFiles/ablation_wta.dir/ablation_wta.cpp.o" "gcc" "bench/CMakeFiles/ablation_wta.dir/ablation_wta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/cosm_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/calibration/CMakeFiles/cosm_calibration.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cosm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/cosm_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cosm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cosm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cosm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cosm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
