# Empty compiler generated dependencies file for ablation_wta.
# This may be replaced when dependencies are built.
