file(REMOVE_RECURSE
  "CMakeFiles/extension_elastic_validation.dir/extension_elastic_validation.cpp.o"
  "CMakeFiles/extension_elastic_validation.dir/extension_elastic_validation.cpp.o.d"
  "extension_elastic_validation"
  "extension_elastic_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_elastic_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
