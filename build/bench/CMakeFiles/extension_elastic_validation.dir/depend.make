# Empty dependencies file for extension_elastic_validation.
# This may be replaced when dependencies are built.
