# Empty compiler generated dependencies file for table1_prediction_errors.
# This may be replaced when dependencies are built.
