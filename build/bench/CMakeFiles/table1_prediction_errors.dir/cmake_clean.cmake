file(REMOVE_RECURSE
  "CMakeFiles/table1_prediction_errors.dir/table1_prediction_errors.cpp.o"
  "CMakeFiles/table1_prediction_errors.dir/table1_prediction_errors.cpp.o.d"
  "table1_prediction_errors"
  "table1_prediction_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_prediction_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
