# Empty dependencies file for fig6_continuous_run.
# This may be replaced when dependencies are built.
