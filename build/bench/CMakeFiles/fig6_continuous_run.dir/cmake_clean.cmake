file(REMOVE_RECURSE
  "CMakeFiles/fig6_continuous_run.dir/fig6_continuous_run.cpp.o"
  "CMakeFiles/fig6_continuous_run.dir/fig6_continuous_run.cpp.o.d"
  "fig6_continuous_run"
  "fig6_continuous_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_continuous_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
