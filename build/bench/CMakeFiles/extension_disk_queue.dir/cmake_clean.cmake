file(REMOVE_RECURSE
  "CMakeFiles/extension_disk_queue.dir/extension_disk_queue.cpp.o"
  "CMakeFiles/extension_disk_queue.dir/extension_disk_queue.cpp.o.d"
  "extension_disk_queue"
  "extension_disk_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_disk_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
