# Empty compiler generated dependencies file for extension_disk_queue.
# This may be replaced when dependencies are built.
