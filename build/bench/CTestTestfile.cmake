# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig6_s1_prediction "/root/repo/build/bench/fig6_s1_prediction" "--scale=0.03")
set_tests_properties(bench_smoke_fig6_s1_prediction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7_s16_prediction "/root/repo/build/bench/fig7_s16_prediction" "--scale=0.03")
set_tests_properties(bench_smoke_fig7_s16_prediction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table1_prediction_errors "/root/repo/build/bench/table1_prediction_errors" "--scale=0.03")
set_tests_properties(bench_smoke_table1_prediction_errors PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2_model_comparison "/root/repo/build/bench/table2_model_comparison" "--scale=0.03")
set_tests_properties(bench_smoke_table2_model_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_extension_disk_queue "/root/repo/build/bench/extension_disk_queue" "--scale=0.03")
set_tests_properties(bench_smoke_extension_disk_queue PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6_continuous_run "/root/repo/build/bench/fig6_continuous_run" "--scale=0.03")
set_tests_properties(bench_smoke_fig6_continuous_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5 "/root/repo/build/bench/fig5_disk_fitting")
set_tests_properties(bench_smoke_fig5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
