# Empty dependencies file for cosm_numerics.
# This may be replaced when dependencies are built.
