file(REMOVE_RECURSE
  "libcosm_numerics.a"
)
