file(REMOVE_RECURSE
  "CMakeFiles/cosm_numerics.dir/compose.cpp.o"
  "CMakeFiles/cosm_numerics.dir/compose.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/distribution.cpp.o"
  "CMakeFiles/cosm_numerics.dir/distribution.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/fft.cpp.o"
  "CMakeFiles/cosm_numerics.dir/fft.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/fitting.cpp.o"
  "CMakeFiles/cosm_numerics.dir/fitting.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/grid.cpp.o"
  "CMakeFiles/cosm_numerics.dir/grid.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/lt_inversion.cpp.o"
  "CMakeFiles/cosm_numerics.dir/lt_inversion.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/phase_type.cpp.o"
  "CMakeFiles/cosm_numerics.dir/phase_type.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/quadrature.cpp.o"
  "CMakeFiles/cosm_numerics.dir/quadrature.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/roots.cpp.o"
  "CMakeFiles/cosm_numerics.dir/roots.cpp.o.d"
  "CMakeFiles/cosm_numerics.dir/special.cpp.o"
  "CMakeFiles/cosm_numerics.dir/special.cpp.o.d"
  "libcosm_numerics.a"
  "libcosm_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
