
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/compose.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/compose.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/compose.cpp.o.d"
  "/root/repo/src/numerics/distribution.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/distribution.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/distribution.cpp.o.d"
  "/root/repo/src/numerics/fft.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/fft.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/fft.cpp.o.d"
  "/root/repo/src/numerics/fitting.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/fitting.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/fitting.cpp.o.d"
  "/root/repo/src/numerics/grid.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/grid.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/grid.cpp.o.d"
  "/root/repo/src/numerics/lt_inversion.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/lt_inversion.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/lt_inversion.cpp.o.d"
  "/root/repo/src/numerics/phase_type.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/phase_type.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/phase_type.cpp.o.d"
  "/root/repo/src/numerics/quadrature.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/quadrature.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/quadrature.cpp.o.d"
  "/root/repo/src/numerics/roots.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/roots.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/roots.cpp.o.d"
  "/root/repo/src/numerics/special.cpp" "src/numerics/CMakeFiles/cosm_numerics.dir/special.cpp.o" "gcc" "src/numerics/CMakeFiles/cosm_numerics.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
