
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrivals.cpp" "src/workload/CMakeFiles/cosm_workload.dir/arrivals.cpp.o" "gcc" "src/workload/CMakeFiles/cosm_workload.dir/arrivals.cpp.o.d"
  "/root/repo/src/workload/catalog.cpp" "src/workload/CMakeFiles/cosm_workload.dir/catalog.cpp.o" "gcc" "src/workload/CMakeFiles/cosm_workload.dir/catalog.cpp.o.d"
  "/root/repo/src/workload/placement.cpp" "src/workload/CMakeFiles/cosm_workload.dir/placement.cpp.o" "gcc" "src/workload/CMakeFiles/cosm_workload.dir/placement.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/cosm_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/cosm_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/trace_stats.cpp" "src/workload/CMakeFiles/cosm_workload.dir/trace_stats.cpp.o" "gcc" "src/workload/CMakeFiles/cosm_workload.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/cosm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
