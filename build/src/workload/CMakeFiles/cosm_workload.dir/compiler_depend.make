# Empty compiler generated dependencies file for cosm_workload.
# This may be replaced when dependencies are built.
