file(REMOVE_RECURSE
  "libcosm_workload.a"
)
