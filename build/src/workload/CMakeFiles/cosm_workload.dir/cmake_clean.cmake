file(REMOVE_RECURSE
  "CMakeFiles/cosm_workload.dir/arrivals.cpp.o"
  "CMakeFiles/cosm_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/cosm_workload.dir/catalog.cpp.o"
  "CMakeFiles/cosm_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/cosm_workload.dir/placement.cpp.o"
  "CMakeFiles/cosm_workload.dir/placement.cpp.o.d"
  "CMakeFiles/cosm_workload.dir/trace.cpp.o"
  "CMakeFiles/cosm_workload.dir/trace.cpp.o.d"
  "CMakeFiles/cosm_workload.dir/trace_stats.cpp.o"
  "CMakeFiles/cosm_workload.dir/trace_stats.cpp.o.d"
  "libcosm_workload.a"
  "libcosm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
