# Empty compiler generated dependencies file for cosm_common.
# This may be replaced when dependencies are built.
