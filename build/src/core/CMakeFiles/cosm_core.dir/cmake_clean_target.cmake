file(REMOVE_RECURSE
  "libcosm_core.a"
)
