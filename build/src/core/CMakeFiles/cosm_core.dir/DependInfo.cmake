
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend_model.cpp" "src/core/CMakeFiles/cosm_core.dir/backend_model.cpp.o" "gcc" "src/core/CMakeFiles/cosm_core.dir/backend_model.cpp.o.d"
  "/root/repo/src/core/frontend_model.cpp" "src/core/CMakeFiles/cosm_core.dir/frontend_model.cpp.o" "gcc" "src/core/CMakeFiles/cosm_core.dir/frontend_model.cpp.o.d"
  "/root/repo/src/core/mean_value_baseline.cpp" "src/core/CMakeFiles/cosm_core.dir/mean_value_baseline.cpp.o" "gcc" "src/core/CMakeFiles/cosm_core.dir/mean_value_baseline.cpp.o.d"
  "/root/repo/src/core/system_model.cpp" "src/core/CMakeFiles/cosm_core.dir/system_model.cpp.o" "gcc" "src/core/CMakeFiles/cosm_core.dir/system_model.cpp.o.d"
  "/root/repo/src/core/whatif.cpp" "src/core/CMakeFiles/cosm_core.dir/whatif.cpp.o" "gcc" "src/core/CMakeFiles/cosm_core.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/cosm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/cosm_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
