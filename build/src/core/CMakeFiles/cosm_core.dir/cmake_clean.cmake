file(REMOVE_RECURSE
  "CMakeFiles/cosm_core.dir/backend_model.cpp.o"
  "CMakeFiles/cosm_core.dir/backend_model.cpp.o.d"
  "CMakeFiles/cosm_core.dir/frontend_model.cpp.o"
  "CMakeFiles/cosm_core.dir/frontend_model.cpp.o.d"
  "CMakeFiles/cosm_core.dir/mean_value_baseline.cpp.o"
  "CMakeFiles/cosm_core.dir/mean_value_baseline.cpp.o.d"
  "CMakeFiles/cosm_core.dir/system_model.cpp.o"
  "CMakeFiles/cosm_core.dir/system_model.cpp.o.d"
  "CMakeFiles/cosm_core.dir/whatif.cpp.o"
  "CMakeFiles/cosm_core.dir/whatif.cpp.o.d"
  "libcosm_core.a"
  "libcosm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
