file(REMOVE_RECURSE
  "libcosm_sim.a"
)
