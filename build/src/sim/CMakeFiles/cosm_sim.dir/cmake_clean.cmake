file(REMOVE_RECURSE
  "CMakeFiles/cosm_sim.dir/backend.cpp.o"
  "CMakeFiles/cosm_sim.dir/backend.cpp.o.d"
  "CMakeFiles/cosm_sim.dir/cache.cpp.o"
  "CMakeFiles/cosm_sim.dir/cache.cpp.o.d"
  "CMakeFiles/cosm_sim.dir/cluster.cpp.o"
  "CMakeFiles/cosm_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/cosm_sim.dir/disk.cpp.o"
  "CMakeFiles/cosm_sim.dir/disk.cpp.o.d"
  "CMakeFiles/cosm_sim.dir/engine.cpp.o"
  "CMakeFiles/cosm_sim.dir/engine.cpp.o.d"
  "CMakeFiles/cosm_sim.dir/frontend.cpp.o"
  "CMakeFiles/cosm_sim.dir/frontend.cpp.o.d"
  "CMakeFiles/cosm_sim.dir/metrics.cpp.o"
  "CMakeFiles/cosm_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/cosm_sim.dir/source.cpp.o"
  "CMakeFiles/cosm_sim.dir/source.cpp.o.d"
  "libcosm_sim.a"
  "libcosm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
