# Empty dependencies file for cosm_sim.
# This may be replaced when dependencies are built.
