
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backend.cpp" "src/sim/CMakeFiles/cosm_sim.dir/backend.cpp.o" "gcc" "src/sim/CMakeFiles/cosm_sim.dir/backend.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/cosm_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/cosm_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/cosm_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/cosm_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/disk.cpp" "src/sim/CMakeFiles/cosm_sim.dir/disk.cpp.o" "gcc" "src/sim/CMakeFiles/cosm_sim.dir/disk.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/cosm_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/cosm_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/frontend.cpp" "src/sim/CMakeFiles/cosm_sim.dir/frontend.cpp.o" "gcc" "src/sim/CMakeFiles/cosm_sim.dir/frontend.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/cosm_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/cosm_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/source.cpp" "src/sim/CMakeFiles/cosm_sim.dir/source.cpp.o" "gcc" "src/sim/CMakeFiles/cosm_sim.dir/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/cosm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cosm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cosm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
