file(REMOVE_RECURSE
  "libcosm_queueing.a"
)
