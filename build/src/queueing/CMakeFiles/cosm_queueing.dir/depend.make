# Empty dependencies file for cosm_queueing.
# This may be replaced when dependencies are built.
