file(REMOVE_RECURSE
  "CMakeFiles/cosm_queueing.dir/mg1.cpp.o"
  "CMakeFiles/cosm_queueing.dir/mg1.cpp.o.d"
  "CMakeFiles/cosm_queueing.dir/mg1k.cpp.o"
  "CMakeFiles/cosm_queueing.dir/mg1k.cpp.o.d"
  "CMakeFiles/cosm_queueing.dir/mm1k.cpp.o"
  "CMakeFiles/cosm_queueing.dir/mm1k.cpp.o.d"
  "libcosm_queueing.a"
  "libcosm_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
