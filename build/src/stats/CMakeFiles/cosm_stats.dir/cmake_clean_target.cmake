file(REMOVE_RECURSE
  "libcosm_stats.a"
)
