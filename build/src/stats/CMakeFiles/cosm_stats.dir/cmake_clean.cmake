file(REMOVE_RECURSE
  "CMakeFiles/cosm_stats.dir/histogram.cpp.o"
  "CMakeFiles/cosm_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/cosm_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/cosm_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/cosm_stats.dir/sla.cpp.o"
  "CMakeFiles/cosm_stats.dir/sla.cpp.o.d"
  "CMakeFiles/cosm_stats.dir/summary.cpp.o"
  "CMakeFiles/cosm_stats.dir/summary.cpp.o.d"
  "libcosm_stats.a"
  "libcosm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
