# Empty compiler generated dependencies file for cosm_stats.
# This may be replaced when dependencies are built.
