
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calibration/disk_benchmark.cpp" "src/calibration/CMakeFiles/cosm_calibration.dir/disk_benchmark.cpp.o" "gcc" "src/calibration/CMakeFiles/cosm_calibration.dir/disk_benchmark.cpp.o.d"
  "/root/repo/src/calibration/online_metrics.cpp" "src/calibration/CMakeFiles/cosm_calibration.dir/online_metrics.cpp.o" "gcc" "src/calibration/CMakeFiles/cosm_calibration.dir/online_metrics.cpp.o.d"
  "/root/repo/src/calibration/parse_benchmark.cpp" "src/calibration/CMakeFiles/cosm_calibration.dir/parse_benchmark.cpp.o" "gcc" "src/calibration/CMakeFiles/cosm_calibration.dir/parse_benchmark.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cosm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cosm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cosm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cosm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/cosm_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cosm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
