file(REMOVE_RECURSE
  "libcosm_calibration.a"
)
