# Empty compiler generated dependencies file for cosm_calibration.
# This may be replaced when dependencies are built.
