file(REMOVE_RECURSE
  "CMakeFiles/cosm_calibration.dir/disk_benchmark.cpp.o"
  "CMakeFiles/cosm_calibration.dir/disk_benchmark.cpp.o.d"
  "CMakeFiles/cosm_calibration.dir/online_metrics.cpp.o"
  "CMakeFiles/cosm_calibration.dir/online_metrics.cpp.o.d"
  "CMakeFiles/cosm_calibration.dir/parse_benchmark.cpp.o"
  "CMakeFiles/cosm_calibration.dir/parse_benchmark.cpp.o.d"
  "libcosm_calibration.a"
  "libcosm_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
