file(REMOVE_RECURSE
  "CMakeFiles/cosmsim.dir/cosmsim.cpp.o"
  "CMakeFiles/cosmsim.dir/cosmsim.cpp.o.d"
  "cosmsim"
  "cosmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
