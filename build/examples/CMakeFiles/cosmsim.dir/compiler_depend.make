# Empty compiler generated dependencies file for cosmsim.
# This may be replaced when dependencies are built.
