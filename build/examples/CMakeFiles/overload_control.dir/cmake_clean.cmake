file(REMOVE_RECURSE
  "CMakeFiles/overload_control.dir/overload_control.cpp.o"
  "CMakeFiles/overload_control.dir/overload_control.cpp.o.d"
  "overload_control"
  "overload_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overload_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
