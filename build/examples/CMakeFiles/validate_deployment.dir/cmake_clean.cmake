file(REMOVE_RECURSE
  "CMakeFiles/validate_deployment.dir/validate_deployment.cpp.o"
  "CMakeFiles/validate_deployment.dir/validate_deployment.cpp.o.d"
  "validate_deployment"
  "validate_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
