# Empty compiler generated dependencies file for validate_deployment.
# This may be replaced when dependencies are built.
