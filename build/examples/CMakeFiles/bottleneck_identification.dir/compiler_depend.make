# Empty compiler generated dependencies file for bottleneck_identification.
# This may be replaced when dependencies are built.
