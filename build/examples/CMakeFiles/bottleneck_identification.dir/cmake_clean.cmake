file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_identification.dir/bottleneck_identification.cpp.o"
  "CMakeFiles/bottleneck_identification.dir/bottleneck_identification.cpp.o.d"
  "bottleneck_identification"
  "bottleneck_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
