file(REMOVE_RECURSE
  "CMakeFiles/elastic_storage.dir/elastic_storage.cpp.o"
  "CMakeFiles/elastic_storage.dir/elastic_storage.cpp.o.d"
  "elastic_storage"
  "elastic_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
