# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overload_control "/root/repo/build/examples/overload_control")
set_tests_properties(example_overload_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_elastic_storage "/root/repo/build/examples/elastic_storage")
set_tests_properties(example_elastic_storage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bottleneck_identification "/root/repo/build/examples/bottleneck_identification")
set_tests_properties(example_bottleneck_identification PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_validate_deployment "/root/repo/build/examples/validate_deployment")
set_tests_properties(example_validate_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build/examples/trace_replay")
set_tests_properties(example_trace_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cosmsim "/root/repo/build/examples/cosmsim" "--rate=80" "--devices=4" "--duration=30" "--warmup=5")
set_tests_properties(example_cosmsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
