# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_numerics[1]_include.cmake")
include("/root/repo/build/tests/test_queueing[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_model_vs_sim[1]_include.cmake")
include("/root/repo/build/tests/test_grid_vs_transform[1]_include.cmake")
include("/root/repo/build/tests/test_bottleneck_detection[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
