
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_grid_vs_transform.cpp" "tests/CMakeFiles/test_grid_vs_transform.dir/integration/test_grid_vs_transform.cpp.o" "gcc" "tests/CMakeFiles/test_grid_vs_transform.dir/integration/test_grid_vs_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cosm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/cosm_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cosm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
