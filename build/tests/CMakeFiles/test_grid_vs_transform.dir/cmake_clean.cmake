file(REMOVE_RECURSE
  "CMakeFiles/test_grid_vs_transform.dir/integration/test_grid_vs_transform.cpp.o"
  "CMakeFiles/test_grid_vs_transform.dir/integration/test_grid_vs_transform.cpp.o.d"
  "test_grid_vs_transform"
  "test_grid_vs_transform.pdb"
  "test_grid_vs_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_vs_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
