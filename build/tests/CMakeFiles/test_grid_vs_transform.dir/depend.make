# Empty dependencies file for test_grid_vs_transform.
# This may be replaced when dependencies are built.
