# Empty compiler generated dependencies file for test_bottleneck_detection.
# This may be replaced when dependencies are built.
