file(REMOVE_RECURSE
  "CMakeFiles/test_bottleneck_detection.dir/integration/test_bottleneck_detection.cpp.o"
  "CMakeFiles/test_bottleneck_detection.dir/integration/test_bottleneck_detection.cpp.o.d"
  "test_bottleneck_detection"
  "test_bottleneck_detection.pdb"
  "test_bottleneck_detection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bottleneck_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
