
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/numerics/test_compose.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_compose.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_compose.cpp.o.d"
  "/root/repo/tests/numerics/test_distribution.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_distribution.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_distribution.cpp.o.d"
  "/root/repo/tests/numerics/test_fft.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_fft.cpp.o.d"
  "/root/repo/tests/numerics/test_fitting.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_fitting.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_fitting.cpp.o.d"
  "/root/repo/tests/numerics/test_grid.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_grid.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_grid.cpp.o.d"
  "/root/repo/tests/numerics/test_lt_inversion.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_lt_inversion.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_lt_inversion.cpp.o.d"
  "/root/repo/tests/numerics/test_phase_type.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_phase_type.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_phase_type.cpp.o.d"
  "/root/repo/tests/numerics/test_roots_quadrature.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_roots_quadrature.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_roots_quadrature.cpp.o.d"
  "/root/repo/tests/numerics/test_special.cpp" "tests/CMakeFiles/test_numerics.dir/numerics/test_special.cpp.o" "gcc" "tests/CMakeFiles/test_numerics.dir/numerics/test_special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/cosm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/cosm_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
