file(REMOVE_RECURSE
  "CMakeFiles/test_numerics.dir/numerics/test_compose.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_compose.cpp.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_distribution.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_distribution.cpp.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_fft.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_fft.cpp.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_fitting.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_fitting.cpp.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_grid.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_grid.cpp.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_lt_inversion.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_lt_inversion.cpp.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_phase_type.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_phase_type.cpp.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_roots_quadrature.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_roots_quadrature.cpp.o.d"
  "CMakeFiles/test_numerics.dir/numerics/test_special.cpp.o"
  "CMakeFiles/test_numerics.dir/numerics/test_special.cpp.o.d"
  "test_numerics"
  "test_numerics.pdb"
  "test_numerics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
