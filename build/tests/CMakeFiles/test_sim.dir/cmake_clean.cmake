file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_accept_semantics.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_accept_semantics.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_cluster.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_cluster.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_engine_cache_disk.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_engine_cache_disk.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_timeouts.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_timeouts.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_writes.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_writes.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
