file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_backend_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_backend_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mean_baseline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mean_baseline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_system_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_system_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_whatif.cpp.o"
  "CMakeFiles/test_core.dir/core/test_whatif.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
