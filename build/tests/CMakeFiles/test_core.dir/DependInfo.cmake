
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_backend_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_backend_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_backend_model.cpp.o.d"
  "/root/repo/tests/core/test_mean_baseline.cpp" "tests/CMakeFiles/test_core.dir/core/test_mean_baseline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mean_baseline.cpp.o.d"
  "/root/repo/tests/core/test_system_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_system_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_system_model.cpp.o.d"
  "/root/repo/tests/core/test_whatif.cpp" "tests/CMakeFiles/test_core.dir/core/test_whatif.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cosm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/cosm_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/cosm_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
