
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_histogram_sla.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_histogram_sla.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_histogram_sla.cpp.o.d"
  "/root/repo/tests/stats/test_p2_quantile.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_p2_quantile.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_p2_quantile.cpp.o.d"
  "/root/repo/tests/stats/test_summary.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_summary.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/cosm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
