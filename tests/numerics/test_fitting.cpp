// Tests for the Section IV-A fitting pipeline: MLE parameter recovery on
// synthetic samples with known ground truth, KS-statistic correctness, and
// the model-selection behaviour the paper reports (Gamma wins on
// disk-service-like data).
#include "numerics/fitting.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace cosm::numerics {
namespace {

std::vector<double> draw(std::size_t n, std::uint64_t seed,
                         const std::function<double(Rng&)>& gen) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& x : out) x = gen(rng);
  return out;
}

TEST(ComputeStats, BasicMoments) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const SampleStats st = compute_stats(xs);
  EXPECT_EQ(st.count, 4u);
  EXPECT_NEAR(st.mean, 2.5, 1e-15);
  EXPECT_NEAR(st.variance, 5.0 / 3.0, 1e-12);
  EXPECT_EQ(st.min, 1.0);
  EXPECT_EQ(st.max, 4.0);
}

TEST(ComputeStats, RejectsNegativeAndEmpty) {
  EXPECT_THROW(compute_stats(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(compute_stats(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
}

TEST(FitExponential, RecoversRate) {
  const auto xs =
      draw(100000, 1, [](Rng& r) { return r.exponential(40.0); });
  const Exponential fit = fit_exponential(xs);
  EXPECT_NEAR(fit.rate(), 40.0, 0.5);
}

class FitGammaTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FitGammaTest, RecoversShapeAndRate) {
  const double shape = std::get<0>(GetParam());
  const double rate = std::get<1>(GetParam());
  const auto xs = draw(200000, 7, [&](Rng& r) { return r.gamma(shape, rate); });
  const Gamma fit = fit_gamma(xs);
  EXPECT_NEAR(fit.shape(), shape, 0.03 * shape);
  EXPECT_NEAR(fit.rate(), rate, 0.03 * rate);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeRateSweep, FitGammaTest,
    ::testing::Values(std::make_tuple(0.5, 10.0), std::make_tuple(1.0, 2.0),
                      std::make_tuple(2.8, 250.0),  // disk-service-like
                      std::make_tuple(8.0, 0.4),
                      std::make_tuple(50.0, 1000.0)));

TEST(FitGamma, HandlesNearConstantData) {
  std::vector<double> xs(1000, 0.005);
  const Gamma fit = fit_gamma(xs);
  EXPECT_NEAR(fit.mean(), 0.005, 1e-12);
  EXPECT_GT(fit.shape(), 1e4);  // effectively degenerate
}

TEST(FitLognormal, RecoversLogMoments) {
  const auto xs =
      draw(200000, 3, [](Rng& r) { return r.lognormal(-1.0, 0.4); });
  const Lognormal fit = fit_lognormal(xs);
  EXPECT_NEAR(fit.mean(), std::exp(-1.0 + 0.5 * 0.16), 0.01);
}

TEST(FitWeibull, RecoversShape) {
  const auto xs = draw(100000, 5, [](Rng& r) { return r.weibull(1.7, 3.0); });
  const Weibull fit = fit_weibull(xs);
  EXPECT_NEAR(fit.mean(), 3.0 * std::exp(std::lgamma(1.0 + 1.0 / 1.7)),
              0.05);
}

TEST(KsStatistic, ZeroForPerfectFitLimit) {
  // For samples at the exact quantile midpoints of the reference CDF, the
  // KS statistic is 1/(2n).
  const Exponential e(1.0);
  constexpr std::size_t kN = 100;
  std::vector<double> xs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / kN;
    xs[i] = -std::log(1.0 - p);
  }
  EXPECT_NEAR(ks_statistic(xs, e), 0.5 / kN, 1e-12);
}

TEST(KsStatistic, DetectsGrossMismatch) {
  const auto xs = draw(5000, 11, [](Rng& r) { return r.exponential(1.0); });
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const Exponential wrong(10.0);
  EXPECT_GT(ks_statistic(sorted, wrong), 0.5);
}

TEST(KsStatistic, RequiresSortedInput) {
  const std::vector<double> unsorted = {2.0, 1.0};
  EXPECT_THROW(ks_statistic(unsorted, Exponential(1.0)),
               std::invalid_argument);
}

TEST(FitBest, GammaWinsOnGammaData) {
  // The paper's Fig. 5 selection: on disk-service-like Gamma samples the
  // Gamma candidate must beat exponential, degenerate, and normal.
  const auto xs =
      draw(20000, 13, [](Rng& r) { return r.gamma(2.8, 250.0); });
  const FitSelection sel = fit_best(xs);
  EXPECT_EQ(sel.best().name, "gamma");
  EXPECT_LT(sel.best().ks, 0.02);
  EXPECT_EQ(sel.candidates.size(), 4u);
}

TEST(FitBest, ExponentialWinsOnExponentialData) {
  const auto xs =
      draw(20000, 17, [](Rng& r) { return r.exponential(5.0); });
  const FitSelection sel = fit_best(xs);
  // Gamma nests the exponential, so accept either; exponential must not be
  // beaten by degenerate or normal.
  EXPECT_TRUE(sel.best().name == "exponential" || sel.best().name == "gamma")
      << sel.best().name;
}

TEST(FitBest, DegenerateWinsOnConstantData) {
  std::vector<double> xs(500, 0.0042);
  const FitSelection sel = fit_best(xs);
  EXPECT_EQ(sel.best().name, "degenerate");
  EXPECT_NEAR(sel.best().dist->mean(), 0.0042, 1e-12);
}

TEST(FitBest, ExtendedAddsCandidates) {
  const auto xs =
      draw(5000, 19, [](Rng& r) { return r.lognormal(-2.0, 0.8); });
  const FitSelection sel = fit_best(xs, /*extended=*/true);
  EXPECT_EQ(sel.candidates.size(), 6u);
  EXPECT_EQ(sel.best().name, "lognormal");
}

TEST(FitBest, CandidatesSortedByKs) {
  const auto xs = draw(2000, 23, [](Rng& r) { return r.gamma(3.0, 10.0); });
  const FitSelection sel = fit_best(xs, true);
  for (std::size_t i = 1; i < sel.candidates.size(); ++i) {
    EXPECT_LE(sel.candidates[i - 1].ks, sel.candidates[i].ks);
  }
}

}  // namespace
}  // namespace cosm::numerics
