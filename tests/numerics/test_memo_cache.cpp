// MemoCache: LRU bookkeeping, exact collision handling, counters, and the
// value-fingerprint helpers the prediction cache keys on.
#include "numerics/memo_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "numerics/distribution.hpp"

namespace {

using cosm::numerics::CacheStats;
using cosm::numerics::MemoCache;

TEST(MemoCache, MissThenHitWithCounters) {
  MemoCache<int, std::string> cache(4);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, "one");
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "one");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 4u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(MemoCache, EvictsLeastRecentlyUsed) {
  MemoCache<int, int> cache(3);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(3, 30);
  // Touch 1 so 2 becomes the least recently used.
  EXPECT_TRUE(cache.lookup(1).has_value());
  cache.insert(4, 40);
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_TRUE(cache.lookup(4).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 3u);
}

TEST(MemoCache, OverwriteRefreshesRecencyWithoutEviction) {
  MemoCache<int, int> cache(2);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(1, 11);  // overwrite: 2 is now the LRU entry
  cache.insert(3, 30);
  EXPECT_FALSE(cache.lookup(2).has_value());
  const auto refreshed = cache.lookup(1);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_EQ(*refreshed, 11);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// A pathological hash maps every key to one bucket: entries must still be
// distinguished exactly (operator==), only slower.
struct CollidingHash {
  std::size_t operator()(int) const { return 42; }
};

TEST(MemoCache, HashCollisionsResolvedExactly) {
  MemoCache<int, int, CollidingHash> cache(8);
  for (int k = 0; k < 8; ++k) cache.insert(k, k * 100);
  for (int k = 0; k < 8; ++k) {
    const auto value = cache.lookup(k);
    ASSERT_TRUE(value.has_value()) << "key " << k;
    EXPECT_EQ(*value, k * 100);
  }
  EXPECT_FALSE(cache.lookup(99).has_value());
}

TEST(MemoCache, GetOrComputeComputesOncePerKey) {
  MemoCache<int, int> cache(8);
  int computations = 0;
  const auto square = [&](int k) {
    return cache.get_or_compute(k, [&] {
      ++computations;
      return k * k;
    });
  };
  EXPECT_EQ(square(5), 25);
  EXPECT_EQ(square(5), 25);
  EXPECT_EQ(square(6), 36);
  EXPECT_EQ(computations, 2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(MemoCache, ZeroCapacityRejected) {
  using Cache = MemoCache<int, int>;
  EXPECT_THROW(Cache cache(0), std::invalid_argument);
}

TEST(MemoCache, ClearResetsEntriesAndCounters) {
  MemoCache<int, int> cache(2);
  cache.insert(1, 10);
  (void)cache.lookup(1);
  (void)cache.lookup(2);
  cache.clear();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.size, 0u);
  EXPECT_FALSE(cache.lookup(1).has_value());
}

TEST(MemoCache, ConcurrentGetOrComputeIsConsistent) {
  MemoCache<int, int> cache(64);
  std::atomic<int> computations{0};
  std::vector<std::thread> threads;
  std::vector<int> results(8, -1);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = cache.get_or_compute(7, [&] {
        ++computations;
        return 49;
      });
    });
  }
  for (auto& thread : threads) thread.join();
  for (const int r : results) EXPECT_EQ(r, 49);
  // Concurrent missers may each compute (compute runs outside the lock),
  // but the value is deterministic so every caller sees 49.
  EXPECT_GE(computations.load(), 1);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u);
}

// ------------------------------ sharding ---------------------------------

TEST(MemoCacheSharded, ShardCountClampsToCapacityAndZero) {
  EXPECT_EQ((MemoCache<int, int>(16, 4).shard_count()), 4u);
  // shards = 0 falls back to one stripe; shards > capacity clamps so
  // every stripe owns at least one entry.
  EXPECT_EQ((MemoCache<int, int>(16, 0).shard_count()), 1u);
  EXPECT_EQ((MemoCache<int, int>(3, 8).shard_count()), 3u);
  EXPECT_EQ((MemoCache<int, int>(16).shard_count()), 1u);
}

TEST(MemoCacheSharded, StripeCapacitiesSumToRequestedCapacity) {
  // 10 entries over 4 stripes: 3+3+2+2, never 4*2 or 4*3.
  MemoCache<int, int> cache(10, 4);
  EXPECT_EQ(cache.stats().capacity, 10u);
  // Total residency can never exceed the requested capacity, whatever
  // stripe the keys land in.
  for (int k = 0; k < 100; ++k) cache.insert(k, k);
  EXPECT_LE(cache.stats().size, 10u);
}

TEST(MemoCacheSharded, CountersAggregateExactlyAcrossShards) {
  MemoCache<int, int> cache(64, 8);
  for (int k = 0; k < 32; ++k) cache.insert(k, k * 2);
  for (int k = 0; k < 32; ++k) EXPECT_TRUE(cache.lookup(k).has_value());
  for (int k = 100; k < 110; ++k) EXPECT_FALSE(cache.lookup(k).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 32u);
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 32u);
}

TEST(MemoCacheSharded, ConcurrentHammeringStaysConsistent) {
  MemoCache<int, int> cache(128, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (t * 31 + i) % 200;
        const int value =
            cache.get_or_compute(key, [key] { return key * key; });
        if (value != key * key) ++wrong;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  const CacheStats stats = cache.stats();
  // Every operation is counted exactly once, on exactly one stripe.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.size, 128u);
}

TEST(MemoCacheSharded, ClearResetsEveryShard) {
  MemoCache<int, int> cache(32, 4);
  for (int k = 0; k < 20; ++k) cache.insert(k, k);
  (void)cache.lookup(0);
  cache.clear();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.capacity, 32u);
}

TEST(HashMix, DistinguishesValuesAndOrder) {
  using cosm::numerics::hash_mix;
  EXPECT_NE(hash_mix(0, 1.0), hash_mix(0, 2.0));
  EXPECT_NE(hash_mix(0, std::uint64_t{1}), hash_mix(0, std::uint64_t{2}));
  // Order-sensitive: (a, b) and (b, a) fold differently.
  EXPECT_NE(hash_mix(hash_mix(7, 1.0), 2.0), hash_mix(hash_mix(7, 2.0), 1.0));
  // -0.0 and +0.0 have distinct bit patterns, so they key differently —
  // exactness beats IEEE equality for cache identity.
  EXPECT_NE(hash_mix(0, 0.0), hash_mix(0, -0.0));
}

TEST(Fingerprint, EqualForIdenticalDistributions) {
  using cosm::numerics::fingerprint;
  const cosm::numerics::Gamma a(3.0, 300.0);
  const cosm::numerics::Gamma b(3.0, 300.0);  // separately constructed
  const cosm::numerics::Gamma c(3.0, 301.0);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
  const cosm::numerics::Degenerate d(0.5e-3);
  EXPECT_NE(fingerprint(a), fingerprint(d));
  EXPECT_EQ(fingerprint(d), fingerprint(cosm::numerics::Degenerate(0.5e-3)));
}

}  // namespace
