// Golden-value tests for the special functions; references computed with
// mpmath at 50 digits.  Known-value checks compare in ULP (common/ulp.hpp)
// rather than ad-hoc absolute epsilons: the old 1e-12 bands were thousands
// of ULP wide at these magnitudes, so regressions could hide inside them.
#include "numerics/special.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/ulp.hpp"

namespace cosm::numerics {
namespace {

using cosm::common::ulp_distance;

constexpr double kEulerMascheroni = 0.57721566490153286060651209008240243;

TEST(Digamma, KnownValues) {
  // Series + recurrence implementation: within 64 ULP at the references
  // (measured <= 41; the old 1e-12 band allowed ~7800 at x = 1).
  EXPECT_LE(ulp_distance(digamma(1.0), -kEulerMascheroni), 64);
  EXPECT_LE(ulp_distance(digamma(0.5),
                         -kEulerMascheroni - 2.0 * std::numbers::ln2),
            64);
  EXPECT_LE(ulp_distance(digamma(2.0), 1.0 - kEulerMascheroni), 64);
  EXPECT_LE(
      ulp_distance(digamma(10.0), 2.2517525890667211076474561638858515), 64);
  EXPECT_LE(
      ulp_distance(digamma(100.0), 4.6001618527380874001986055855758507), 64);
}

TEST(Digamma, SatisfiesRecurrence) {
  // psi(x + 1) = psi(x) + 1/x.
  for (double x : {0.1, 0.7, 1.3, 2.9, 5.5, 17.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-12) << x;
  }
}

TEST(Trigamma, KnownValues) {
  EXPECT_LE(ulp_distance(trigamma(1.0),
                         std::numbers::pi * std::numbers::pi / 6.0),
            128);
  EXPECT_LE(ulp_distance(trigamma(0.5),
                         std::numbers::pi * std::numbers::pi / 2.0),
            128);
  EXPECT_LE(
      ulp_distance(trigamma(5.0), 0.22132295573711532536210756323152), 128);
}

TEST(Trigamma, SatisfiesRecurrence) {
  for (double x : {0.2, 0.9, 1.8, 4.4, 12.0}) {
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-12) << x;
  }
}

TEST(GammaP, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-13) << x;
  }
  // Chi-squared(4)/2 at its median-ish points (mpmath references); the
  // series/continued-fraction split stays within 16 ULP here.
  EXPECT_LE(
      ulp_distance(gamma_p(2.0, 1.0), 0.26424111765711535680895245967707),
      16);
  EXPECT_LE(
      ulp_distance(gamma_p(2.0, 5.0), 0.95957231800548719742018366210601),
      16);
  EXPECT_LE(
      ulp_distance(gamma_p(0.5, 0.25), 0.52049987781304653768274665389197),
      16);
  EXPECT_LE(
      ulp_distance(gamma_p(10.0, 10.0), 0.54207028552814779168583514294066),
      16);
}

TEST(GammaP, ComplementsGammaQ) {
  for (double a : {0.3, 1.0, 2.5, 8.0}) {
    for (double x : {0.1, 1.0, 4.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-13)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaP, BoundaryBehaviour) {
  EXPECT_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_EQ(gamma_q(3.0, 0.0), 1.0);
  EXPECT_NEAR(gamma_p(3.0, 1e4), 1.0, 1e-14);
  EXPECT_THROW(gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(gamma_p(1.0, -1.0), std::invalid_argument);
}

class GammaPInvTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GammaPInvTest, RoundTripsThroughGammaP) {
  const double a = std::get<0>(GetParam());
  const double p = std::get<1>(GetParam());
  const double x = gamma_p_inv(a, p);
  EXPECT_NEAR(gamma_p(a, x), p, 1e-10) << "a=" << a << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeAndLevelSweep, GammaPInvTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 1.0, 2.0, 5.0, 25.0,
                                         150.0),
                       ::testing::Values(0.01, 0.1, 0.5, 0.9, 0.95, 0.99,
                                         0.999)));

TEST(NormalCdf, KnownValues) {
  // erfc-backed: correctly rounded at these references.
  EXPECT_LE(ulp_distance(normal_cdf(0.0), 0.5), 2);
  EXPECT_LE(
      ulp_distance(normal_cdf(1.0), 0.84134474606854292578480817623591), 2);
  EXPECT_LE(
      ulp_distance(normal_cdf(3.0), 0.99865010196836990537120191936092), 2);
  // 0.025 is itself a decimal approximation of the true quantile, so the
  // inverse probe stays an interval check.
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-12);
}

TEST(NormalCdfInv, RoundTrips) {
  for (double p : {1e-6, 0.001, 0.025, 0.3, 0.5, 0.7, 0.975, 0.999,
                   1.0 - 1e-6}) {
    EXPECT_NEAR(normal_cdf(normal_cdf_inv(p)), p, 1e-12) << p;
  }
  EXPECT_THROW(normal_cdf_inv(0.0), std::invalid_argument);
  EXPECT_THROW(normal_cdf_inv(1.0), std::invalid_argument);
}

TEST(GeneralizedHarmonic, MatchesDirectSums) {
  EXPECT_NEAR(generalized_harmonic(1, 1.0), 1.0, 1e-15);
  EXPECT_NEAR(generalized_harmonic(4, 1.0), 1.0 + 0.5 + 1.0 / 3.0 + 0.25,
              1e-14);
  EXPECT_NEAR(generalized_harmonic(10, 0.0), 10.0, 1e-13);
  // H_{100, 2} approaches pi^2/6.
  EXPECT_NEAR(generalized_harmonic(100000, 2.0),
              std::numbers::pi * std::numbers::pi / 6.0, 1e-5);
}

}  // namespace
}  // namespace cosm::numerics
