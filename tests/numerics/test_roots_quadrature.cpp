#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "numerics/quadrature.hpp"
#include "numerics/roots.hpp"

namespace cosm::numerics {
namespace {

TEST(Brent, FindsSimpleRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  const RootResult r = brent(f, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::numbers::sqrt2, 1e-10);
}

TEST(Brent, FindsTranscendentalRoot) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const RootResult r = brent(f, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-10);
}

TEST(Brent, AcceptsRootAtBracketEndpoint) {
  const auto f = [](double x) { return x; };
  const RootResult r = brent(f, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
}

TEST(Brent, RejectsNonBracketingInterval) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(brent(f, -1.0, 1.0), std::invalid_argument);
}

TEST(NewtonSafeguarded, ConvergesQuadratically) {
  const auto f = [](double x) { return x * x * x - 8.0; };
  const auto df = [](double x) { return 3.0 * x * x; };
  const RootResult r = newton_safeguarded(f, df, 1.0, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-10);
  EXPECT_LT(r.iterations, 20);
}

TEST(NewtonSafeguarded, SurvivesBadDerivative) {
  // f'(x0) = 0 at the start: safeguard must bisect instead of dividing by 0.
  const auto f = [](double x) { return x * x - 4.0; };
  const auto df = [](double x) { return 2.0 * x; };
  const RootResult r = newton_safeguarded(f, df, 0.0, -1.0, 5.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-8);
}

TEST(ExpandBracket, FindsSignChange) {
  const auto f = [](double x) { return x - 100.0; };
  double hi = 1.0;
  EXPECT_TRUE(expand_bracket_upward(f, 0.0, hi));
  EXPECT_GE(hi, 100.0);
}

TEST(ExpandBracket, GivesUpWhenNoRoot) {
  const auto f = [](double) { return 1.0; };
  double hi = 1.0;
  EXPECT_FALSE(expand_bracket_upward(f, 0.0, hi, 2.0, 10));
}

TEST(AdaptiveSimpson, IntegratesPolynomialsExactly) {
  const auto f = [](double x) { return 3.0 * x * x; };
  EXPECT_NEAR(integrate_adaptive(f, 0.0, 2.0), 8.0, 1e-10);
}

TEST(AdaptiveSimpson, IntegratesOscillatoryFunction) {
  const auto f = [](double x) { return std::sin(10.0 * x); };
  const double expected = (1.0 - std::cos(20.0)) / 10.0;
  EXPECT_NEAR(integrate_adaptive(f, 0.0, 2.0, 1e-12), expected, 1e-9);
}

TEST(AdaptiveSimpson, EmptyIntervalIsZero) {
  EXPECT_EQ(integrate_adaptive([](double) { return 1.0; }, 1.0, 1.0), 0.0);
}

TEST(GaussLegendre, MatchesAdaptiveOnSmoothIntegrand) {
  const auto f = [](double x) { return std::exp(-x) * std::cos(x); };
  const double expected = 0.5 * (1.0 + std::exp(-5.0) *
                                           (std::sin(5.0) - std::cos(5.0)));
  EXPECT_NEAR(integrate_gauss(f, 0.0, 5.0, 4), expected, 1e-12);
}

TEST(GaussLegendreComplex, IntegratesComplexExponential) {
  // Integral of e^{-(1+2i)t} over [0, 10] = (1 - e^{-(1+2i)10})/(1+2i).
  const std::complex<double> s(1.0, 2.0);
  const auto f = [s](double t) { return std::exp(-s * t); };
  const std::complex<double> expected = (1.0 - std::exp(-s * 10.0)) / s;
  const std::complex<double> got = integrate_gauss_complex(f, 0.0, 10.0, 8);
  EXPECT_NEAR(got.real(), expected.real(), 1e-12);
  EXPECT_NEAR(got.imag(), expected.imag(), 1e-12);
}

TEST(GaussLegendre, RejectsBadArguments) {
  EXPECT_THROW(integrate_gauss([](double) { return 0.0; }, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(integrate_gauss([](double) { return 0.0; }, 0.0, 1.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cosm::numerics
