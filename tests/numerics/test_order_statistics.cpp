// Tests for the order-statistic latency distributions (redundancy
// extension): analytic agreement for the closed-form cases, coherence of
// the grid-backed transform/CDF/moments, the fork-join correlation
// blend, and bit-identity between the scalar laplace() walk and the
// compiled tape (dedicated MIN-OF-K / KTH-OF-N ops for OrderStatistic,
// the generic-leaf path for HedgedResponse).
#include "numerics/order_statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>
#include <vector>

#include "numerics/compose.hpp"
#include "numerics/lt_inversion.hpp"
#include "numerics/transform_tape.hpp"

namespace cosm::numerics {
namespace {

using Complex = std::complex<double>;

DistPtr exponential(double rate) {
  return std::make_shared<Exponential>(rate);
}

// Contour-like probes: real Euler abscissae, complex points, and the
// small-|s·dt| neighborhood where the series branch engages.
std::vector<Complex> probe_points() {
  return {{0.0, 0.0},   {1e-9, 0.0},   {0.5, 0.0},    {20.0, 0.0},
          {3.0, 40.0},  {12.5, -40.0}, {1e-4, 1e-4},  {80.0, 300.0}};
}

TEST(OrderStatistic, MinOfExponentialsMatchesAnalytic) {
  // Min of n i.i.d. Exponential(mu) is Exponential(n*mu) exactly.
  const double mu = 20.0;
  const unsigned n = 3;
  const OrderStatistic min_of_n(exponential(mu), n, 1);
  const Exponential analytic(static_cast<double>(n) * mu);
  EXPECT_NEAR(min_of_n.mean(), analytic.mean(), 0.01 * analytic.mean());
  for (const double t : {0.002, 0.01, 0.03, 0.08}) {
    EXPECT_NEAR(min_of_n.cdf(t), analytic.cdf(t), 2e-3) << t;
  }
  // The transform agrees on the real axis (where it is a smooth bounded
  // function the grid resolves well).
  for (const double s : {0.5, 5.0, 20.0}) {
    EXPECT_NEAR(min_of_n.laplace({s, 0.0}).real(),
                analytic.laplace({s, 0.0}).real(), 5e-3)
        << s;
  }
}

TEST(OrderStatistic, KthOfNMatchesBinomialFormula) {
  const double mu = 10.0;
  const unsigned n = 3;
  const unsigned k = 2;
  const DistPtr base = exponential(mu);
  const OrderStatistic second_of_three(base, n, k);
  for (const double t : {0.01, 0.05, 0.1, 0.25}) {
    const double f = base->cdf(t);
    // F_(2:3) = 3 f^2 (1-f) + f^3.
    const double expected = 3.0 * f * f * (1.0 - f) + f * f * f;
    EXPECT_NEAR(second_of_three.cdf(t), expected, 2e-3) << t;
  }
  // 1 <= k' < k <= n orders stochastically: earlier order statistics are
  // faster everywhere.
  const OrderStatistic first_of_three(base, n, 1);
  for (const double t : {0.02, 0.06, 0.15}) {
    EXPECT_GE(first_of_three.cdf(t), second_of_three.cdf(t)) << t;
  }
}

TEST(OrderStatistic, DegenerateCaseNEqualsOneIsIdentity) {
  const DistPtr base = exponential(8.0);
  const OrderStatistic identity(base, 1, 1);
  EXPECT_NEAR(identity.mean(), base->mean(), 0.01 * base->mean());
  for (const double t : {0.05, 0.2, 0.5}) {
    EXPECT_NEAR(identity.cdf(t), base->cdf(t), 2e-3) << t;
  }
}

TEST(OrderStatistic, TransformIsACoherentProbabilityDistribution) {
  const OrderStatistic dist(exponential(15.0), 3, 2);
  // L(0) = 1 exactly: atom masses and segment masses sum to one.
  const Complex at_zero = dist.laplace({0.0, 0.0});
  EXPECT_NEAR(at_zero.real(), 1.0, 1e-12);
  EXPECT_NEAR(at_zero.imag(), 0.0, 1e-12);
  // |L(s)| <= 1 on the right half-plane.
  for (const Complex s : probe_points()) {
    EXPECT_LE(std::abs(dist.laplace(s)), 1.0 + 1e-9);
  }
  // Inverting the transform recovers the grid CDF.
  const LaplaceFn lt = [&dist](Complex s) { return dist.laplace(s); };
  for (const double t : {0.02, 0.05, 0.12}) {
    EXPECT_NEAR(cdf_from_laplace(lt, t), dist.cdf(t), 5e-3) << t;
  }
}

TEST(OrderStatistic, CorrelationBlendInterpolatesTowardBase) {
  const DistPtr base = exponential(10.0);
  const OrderStatistic independent(base, 3, 1, 0.0);
  const OrderStatistic half(base, 3, 1, 0.5);
  const OrderStatistic saturated(base, 3, 1, 1.0);
  for (const double t : {0.02, 0.08, 0.2}) {
    // Full correlation recovers the single-attempt CDF: no diversity.
    EXPECT_NEAR(saturated.cdf(t), base->cdf(t), 2e-3) << t;
    // Partial correlation sits strictly between.
    EXPECT_GE(independent.cdf(t) + 1e-12, half.cdf(t)) << t;
    EXPECT_GE(half.cdf(t) + 1e-12, saturated.cdf(t)) << t;
  }
  EXPECT_LT(independent.mean(), saturated.mean());
}

TEST(OrderStatistic, TapeUsesDedicatedOpAndIsBitIdentical) {
  const auto dist =
      std::make_shared<OrderStatistic>(exponential(12.0), 3, 2, 0.25);
  const TransformTape tape = TransformTape::compile(dist);
  // The op is a flattened leaf, not a generic fallback.
  EXPECT_EQ(tape.generic_leaf_count(), 0u);
  EXPECT_EQ(tape.op_count(), 1u);
  const std::vector<Complex> s = probe_points();
  std::vector<Complex> out(s.size());
  tape.evaluate(s, out);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Complex scalar = dist->laplace(s[i]);
    EXPECT_EQ(out[i], scalar) << "probe " << i;
  }
  for (const double t : {0.01, 0.04, 0.1}) {
    const LaplaceFn lt = [&dist](Complex s_) { return dist->laplace(s_); };
    EXPECT_EQ(tape.cdf(t), cdf_from_laplace(lt, t)) << t;
  }
}

TEST(OrderStatistic, ComposesInsideConvolutions) {
  // An order statistic convolved with a deterministic offset — the shape
  // a redundant response takes inside larger model trees.
  const auto os = std::make_shared<OrderStatistic>(exponential(25.0), 2, 1);
  const auto tree = std::make_shared<Convolution>(
      std::vector<DistPtr>{std::make_shared<Degenerate>(0.003), os});
  const TransformTape tape = TransformTape::compile(tree);
  EXPECT_EQ(tape.generic_leaf_count(), 0u);
  for (const Complex s : probe_points()) {
    EXPECT_EQ(tape.batch_fn() != nullptr, true);
    std::vector<Complex> out(1);
    tape.evaluate(std::vector<Complex>{s}, out);
    EXPECT_EQ(out[0], tree->laplace(s));
  }
  EXPECT_NEAR(tree->mean(), 0.003 + os->mean(), 1e-12);
}

TEST(OrderStatistic, FingerprintSeparatesRedundancyDegrees) {
  const DistPtr base = exponential(10.0);
  const auto two = std::make_shared<OrderStatistic>(base, 2, 1);
  const auto three = std::make_shared<OrderStatistic>(base, 3, 1);
  const auto coded = std::make_shared<OrderStatistic>(base, 3, 2);
  const auto two_again = std::make_shared<OrderStatistic>(base, 2, 1);
  const std::uint64_t fp_two = TransformTape::compile(two).fingerprint();
  const std::uint64_t fp_three = TransformTape::compile(three).fingerprint();
  const std::uint64_t fp_coded = TransformTape::compile(coded).fingerprint();
  EXPECT_NE(fp_two, fp_three);
  EXPECT_NE(fp_three, fp_coded);
  // Identically constructed wrappers hash equal (cache-share safety).
  EXPECT_EQ(fp_two, TransformTape::compile(two_again).fingerprint());
  // min-of-n and k-of-n are structurally distinct opcodes.
  EXPECT_NE(TransformTape::compile(three).structure_fingerprint(),
            TransformTape::compile(coded).structure_fingerprint());
}

TEST(OrderStatistic, RejectsInvalidParameters) {
  const DistPtr base = exponential(1.0);
  EXPECT_THROW(OrderStatistic(base, 2, 0), std::invalid_argument);
  EXPECT_THROW(OrderStatistic(base, 2, 3), std::invalid_argument);
  EXPECT_THROW(OrderStatistic(base, 2, 1, -0.1), std::invalid_argument);
  EXPECT_THROW(OrderStatistic(base, 2, 1, 1.5), std::invalid_argument);
  EXPECT_THROW(OrderStatistic(nullptr, 2, 1), std::invalid_argument);
}

TEST(HedgedResponse, MatchesTheRacingFormula) {
  const double mu = 10.0;
  const double d = 0.05;
  const DistPtr base = exponential(mu);
  const HedgedResponse hedged(base, d);
  for (const double t : {0.01, 0.04}) {
    // Below the deadline only the primary can finish.
    EXPECT_NEAR(hedged.cdf(t), base->cdf(t), 2e-3) << t;
  }
  for (const double t : {0.08, 0.15, 0.3}) {
    const double expected =
        1.0 - (1.0 - base->cdf(t)) * (1.0 - base->cdf(t - d));
    EXPECT_NEAR(hedged.cdf(t), expected, 2e-3) << t;
  }
  // Hedging helps the tail and never hurts the distribution.
  EXPECT_LT(hedged.mean(), base->mean());
}

TEST(HedgedResponse, TapeGenericLeafIsBitIdentical) {
  const auto hedged =
      std::make_shared<HedgedResponse>(exponential(20.0), 0.02, 0.1);
  const TransformTape tape = TransformTape::compile(hedged);
  // Hedged responses ride the generic-leaf compatibility path.
  EXPECT_EQ(tape.generic_leaf_count(), 1u);
  const std::vector<Complex> s = probe_points();
  std::vector<Complex> out(s.size());
  tape.evaluate(s, out);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(out[i], hedged->laplace(s[i])) << "probe " << i;
  }
}

TEST(HedgedResponse, LargeDelayDegeneratesToBase) {
  // A deadline past the horizon never fires: the hedged CDF is the base.
  const DistPtr base = exponential(10.0);
  const HedgedResponse hedged(base, 5.0);
  for (const double t : {0.05, 0.2, 0.6}) {
    EXPECT_NEAR(hedged.cdf(t), base->cdf(t), 2e-3) << t;
  }
  EXPECT_NEAR(hedged.mean(), base->mean(), 0.02 * base->mean());
}

TEST(HedgedResponse, RejectsInvalidParameters) {
  const DistPtr base = exponential(1.0);
  EXPECT_THROW(HedgedResponse(base, 0.0), std::invalid_argument);
  EXPECT_THROW(HedgedResponse(base, -1.0), std::invalid_argument);
  EXPECT_THROW(HedgedResponse(base, 0.1, 2.0), std::invalid_argument);
  EXPECT_THROW(HedgedResponse(nullptr, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::numerics
