// The SoA/SIMD tape evaluator's exactness contracts
// (numerics/tape_mode.hpp):
//
//   * TapeEvalMode::kSimd is BIT-IDENTICAL to kExact — every leaf,
//     combinator, queueing op, and fuzzed tree, on every dispatch
//     variant this machine can run;
//   * the scalar / AVX2 / AVX-512 builds of the SAME kernel source are
//     bit-identical to each other (variant choice affects speed only);
//   * TapeEvalMode::kSimdFast's elementary kernels stay within the
//     documented 8-ULP bound of libm, and whole-inversion CDF values
//     stay within an absolute bound of the exact walk.

#include "numerics/simd_kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/ulp.hpp"
#include "numerics/compose.hpp"
#include "numerics/distribution.hpp"
#include "numerics/phase_type.hpp"
#include "numerics/simd_math.hpp"
#include "numerics/transform_nodes.hpp"
#include "numerics/transform_tape.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1k.hpp"
#include "queueing/mm1k.hpp"

namespace cosm::numerics {
namespace {

using Complex = std::complex<double>;
using cosm::common::ulp_close;
using cosm::common::ulp_distance;

// Same probe set as test_transform_tape.cpp: Euler-style contour points
// plus the small-|s| guard-branch neighborhoods.
std::vector<Complex> probe_points() {
  std::vector<Complex> s;
  for (int k = 0; k < 21; ++k) {
    s.emplace_back(15.35, 3.1415 * k * 9.7);
  }
  s.emplace_back(1e-16, 0.0);
  s.emplace_back(1e-9, 1e-9);
  s.emplace_back(1e-7, 0.0);
  s.emplace_back(0.5, -2.0);
  s.emplace_back(250.0, 1000.0);
  return s;
}

void expect_simd_bit_identical(const DistPtr& dist) {
  const TransformTape tape = TransformTape::compile(dist);
  ASSERT_TRUE(tape.compiled());
  const std::vector<Complex> s = probe_points();
  std::vector<Complex> exact(s.size());
  std::vector<Complex> simd(s.size());
  tape.evaluate(s, exact, TapeEvalMode::kExact);
  tape.evaluate(s, simd, TapeEvalMode::kSimd);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(exact[i].real(), simd[i].real())
        << dist->name() << " at s = " << s[i];
    EXPECT_EQ(exact[i].imag(), simd[i].imag())
        << dist->name() << " at s = " << s[i];
  }
}

TEST(SimdTape, LeafDistributionsBitIdentical) {
  expect_simd_bit_identical(std::make_shared<Degenerate>(0.0));
  expect_simd_bit_identical(std::make_shared<Degenerate>(3.25e-3));
  expect_simd_bit_identical(std::make_shared<Exponential>(123.5));
  expect_simd_bit_identical(std::make_shared<Gamma>(3.7, 412.0));
  expect_simd_bit_identical(std::make_shared<Gamma>(250.0, 1e4));
  expect_simd_bit_identical(std::make_shared<Uniform>(1e-3, 7e-3));
  expect_simd_bit_identical(std::make_shared<Erlang>(4, 800.0));
  expect_simd_bit_identical(std::make_shared<HyperExponential>(
      std::vector<HyperExponential::Branch>{{0.3, 100.0}, {0.7, 900.0}}));
}

TEST(SimdTape, QueueingNodesBitIdentical) {
  const auto service = std::make_shared<Gamma>(3.0, 900.0);
  const queueing::MG1 mg1(120.0, service);
  expect_simd_bit_identical(mg1.waiting_time());
  expect_simd_bit_identical(mg1.sojourn_time());
  expect_simd_bit_identical(queueing::MM1K(300.0, 400.0, 4).sojourn_time());
  expect_simd_bit_identical(
      queueing::MG1K(300.0, service, 4).sojourn_time());
}

TEST(SimdTape, CombinatorsAndGenericLeavesBitIdentical) {
  const auto gamma = std::make_shared<Gamma>(2.8, 560.0);
  const auto mix = atom_at_zero_mixture(0.35, gamma);
  const auto conv = std::make_shared<Convolution>(std::vector<DistPtr>{
      mix, std::make_shared<Exponential>(220.0),
      std::make_shared<Degenerate>(4e-4)});
  const auto compound =
      std::make_shared<CompoundPoissonConvolution>(conv, 0.8, mix);
  const auto shifted =
      std::make_shared<Shifted>(2e-4, std::make_shared<Scaled>(compound, 1.5));
  expect_simd_bit_identical(shifted);
  const auto tiered = std::make_shared<TieredService>(
      0.73, std::make_shared<Gamma>(4.0, 4000.0),
      std::make_shared<Gamma>(2.1, 55.0));
  expect_simd_bit_identical(tiered);
  // Generic (quadrature) leaves route through laplace_many in both modes.
  expect_simd_bit_identical(std::make_shared<Lognormal>(-6.0, 0.8));
}

TEST(SimdTape, CdfManyBitIdenticalAcrossModes) {
  const auto service = std::make_shared<Gamma>(2.5, 700.0);
  const queueing::MM1K disk(250.0, 350.0, 4);
  const auto response = std::make_shared<Convolution>(std::vector<DistPtr>{
      disk.sojourn_time(), service, std::make_shared<Degenerate>(5e-4)});
  const TransformTape tape = TransformTape::compile(response);
  const std::vector<double> ts = {-1.0, 0.0, 1e-4, 5e-3, 2e-2, 0.11, 0.5};
  const std::vector<double> exact = tape.cdf_many(ts, 20, TapeEvalMode::kExact);
  const std::vector<double> simd = tape.cdf_many(ts, 20, TapeEvalMode::kSimd);
  ASSERT_EQ(exact.size(), simd.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(exact[i], simd[i]) << "t = " << ts[i];
  }
}

// Mirrors the TreeFuzzer of test_transform_tape.cpp but checks the kSimd
// evaluator instead of the exact one, with subtree sharing so the SoA CSE
// slots get exercised too.
TEST(SimdTapeFuzz, RandomTreesBitIdenticalToExactMode) {
  const std::vector<Complex> s = probe_points();
  std::vector<Complex> exact(s.size());
  std::vector<Complex> simd(s.size());
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    cosm::Rng rng(seed);
    const auto uniform = [&rng](double lo, double hi) {
      return lo + (hi - lo) * rng.uniform();
    };
    // Two shared leaves under a mixture-of-convolutions with scaling and
    // a compound-Poisson union — the op set the backend model composes.
    const auto disk =
        std::make_shared<Gamma>(uniform(1.5, 4.5), uniform(100.0, 900.0));
    const auto net = std::make_shared<Exponential>(uniform(300.0, 3000.0));
    const auto hit = atom_at_zero_mixture(uniform(0.1, 0.9), disk);
    const auto conv = std::make_shared<Convolution>(
        std::vector<DistPtr>{hit, net, disk});
    const auto tree = std::make_shared<CompoundPoissonConvolution>(
        std::make_shared<Scaled>(conv, uniform(0.5, 2.0)), uniform(0.0, 1.5),
        hit);
    const TransformTape tape = TransformTape::compile(tree);
    ASSERT_TRUE(tape.compiled()) << "seed " << seed;
    tape.evaluate(s, exact, TapeEvalMode::kExact);
    tape.evaluate(s, simd, TapeEvalMode::kSimd);
    for (std::size_t i = 0; i < s.size(); ++i) {
      ASSERT_EQ(exact[i].real(), simd[i].real())
          << "seed " << seed << " at s = " << s[i];
      ASSERT_EQ(exact[i].imag(), simd[i].imag())
          << "seed " << seed << " at s = " << s[i];
    }
  }
}

// ----------------------- variant cross-parity ----------------------------
//
// The scalar, AVX2, and AVX-512 translation units compile the same kernel
// source with -ffp-contract=off and no fma, so their outputs must be
// bit-identical.  Drive each variant's function pointers directly on the
// same SoA planes (active_kernels() is decided once per process, so the
// tape itself can only exercise one variant per run).

struct SoaBatch {
  std::vector<double> sr, si, dr, di;
  explicit SoaBatch(const std::vector<Complex>& s)
      : sr(s.size()), si(s.size()), dr(s.size()), di(s.size()) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      sr[i] = s[i].real();
      si[i] = s[i].imag();
    }
  }
};

void expect_planes_equal(const SoaBatch& a, const SoaBatch& b,
                         const char* what) {
  ASSERT_EQ(a.dr.size(), b.dr.size());
  for (std::size_t i = 0; i < a.dr.size(); ++i) {
    EXPECT_EQ(a.dr[i], b.dr[i]) << what << " re lane " << i;
    EXPECT_EQ(a.di[i], b.di[i]) << what << " im lane " << i;
  }
}

void expect_variant_matches_scalar(const simd::TapeKernels& variant) {
  const simd::TapeKernels& scalar = simd::scalar_kernels();
  const std::vector<Complex> s = probe_points();
  const std::size_t n = s.size();

  SoaBatch ref(s), got(s);
  scalar.leaf_exponential(ref.sr.data(), ref.si.data(), 123.5, ref.dr.data(),
                          ref.di.data(), n);
  variant.leaf_exponential(got.sr.data(), got.si.data(), 123.5, got.dr.data(),
                           got.di.data(), n);
  expect_planes_equal(ref, got, "leaf_exponential");

  scalar.leaf_gamma(ref.sr.data(), ref.si.data(), 3.7, 412.0, ref.dr.data(),
                    ref.di.data(), n);
  variant.leaf_gamma(got.sr.data(), got.si.data(), 3.7, 412.0, got.dr.data(),
                     got.di.data(), n);
  expect_planes_equal(ref, got, "leaf_gamma");

  scalar.leaf_uniform(ref.sr.data(), ref.si.data(), 1e-3, 7e-3, ref.dr.data(),
                      ref.di.data(), n);
  variant.leaf_uniform(got.sr.data(), got.si.data(), 1e-3, 7e-3, got.dr.data(),
                       got.di.data(), n);
  expect_planes_equal(ref, got, "leaf_uniform");

  scalar.leaf_erlang(ref.sr.data(), ref.si.data(), 4.0, 800.0, ref.dr.data(),
                     ref.di.data(), n);
  variant.leaf_erlang(got.sr.data(), got.si.data(), 4.0, 800.0, got.dr.data(),
                      got.di.data(), n);
  expect_planes_equal(ref, got, "leaf_erlang");

  const double hyper[] = {0.3, 100.0, 0.7, 900.0};
  scalar.leaf_hyperexp(ref.sr.data(), ref.si.data(), hyper, 2, ref.dr.data(),
                       ref.di.data(), n);
  variant.leaf_hyperexp(got.sr.data(), got.si.data(), hyper, 2, got.dr.data(),
                        got.di.data(), n);
  expect_planes_equal(ref, got, "leaf_hyperexp");

  // [arrival, service, capacity, p0, blocking] as the compiler lays it out.
  const double mm1k[] = {300.0, 400.0, 4.0, 0.14497041420118342,
                         0.045888608471688885};
  scalar.leaf_mm1k(ref.sr.data(), ref.si.data(), mm1k, ref.dr.data(),
                   ref.di.data(), n);
  variant.leaf_mm1k(got.sr.data(), got.si.data(), mm1k, got.dr.data(),
                    got.di.data(), n);
  expect_planes_equal(ref, got, "leaf_mm1k");

  // Combinators operate in place: fill the base planes with the leaf
  // outputs of two children, then fold.
  const auto fill_children = [&](SoaBatch& b) {
    b.dr.assign(2 * n, 0.0);
    b.di.assign(2 * n, 0.0);
    scalar.leaf_exponential(b.sr.data(), b.si.data(), 220.0, b.dr.data(),
                            b.di.data(), n);
    scalar.leaf_gamma(b.sr.data(), b.si.data(), 2.8, 560.0, b.dr.data() + n,
                      b.di.data() + n, n);
  };
  fill_children(ref);
  fill_children(got);
  scalar.mul(ref.dr.data(), ref.di.data(), 2, n);
  variant.mul(got.dr.data(), got.di.data(), 2, n);
  expect_planes_equal(ref, got, "mul");

  const double weights[] = {0.35, 0.65};
  fill_children(ref);
  fill_children(got);
  scalar.mix(ref.dr.data(), ref.di.data(), weights, 2, n);
  variant.mix(got.dr.data(), got.di.data(), weights, 2, n);
  expect_planes_equal(ref, got, "mix");

  scalar.pk_wait(ref.sr.data(), ref.si.data(), 120.0, 0.4, ref.dr.data(),
                 ref.di.data(), n);
  variant.pk_wait(got.sr.data(), got.si.data(), 120.0, 0.4, got.dr.data(),
                  got.di.data(), n);
  expect_planes_equal(ref, got, "pk_wait");
}

TEST(SimdVariants, Avx2BitIdenticalToScalarBuild) {
  const simd::TapeKernels* avx2 = simd::avx2_kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2 variant on this machine";
  expect_variant_matches_scalar(*avx2);
}

TEST(SimdVariants, Avx512BitIdenticalToScalarBuild) {
  const simd::TapeKernels* avx512 = simd::avx512_kernels();
  if (avx512 == nullptr) GTEST_SKIP() << "no AVX-512 variant on this machine";
  expect_variant_matches_scalar(*avx512);
}

TEST(SimdVariants, DispatchNamesAreConsistent) {
  const char* name = simd::dispatch_name();
  ASSERT_NE(name, nullptr);
  EXPECT_STREQ(simd::active_kernels().name, name);
  EXPECT_STREQ(simd::scalar_kernels().name, "scalar");
}

// --------------------------- kSimdFast bounds ----------------------------

// The elementary kernels' documented contract (numerics/simd_math.hpp):
// within 8 ULP of libm over the tape's operating ranges.
constexpr std::int64_t kElementaryUlpBound = 8;

TEST(SimdFastMath, ExpWithinDocumentedUlpBound) {
  for (double x = -690.0; x <= 690.0; x += 0.37) {
    EXPECT_TRUE(ulp_close(simd::fast_exp(x), std::exp(x),
                          kElementaryUlpBound))
        << "x = " << x << " off by "
        << ulp_distance(simd::fast_exp(x), std::exp(x)) << " ulp";
  }
}

TEST(SimdFastMath, SinCosWithinDocumentedUlpBound) {
  // The contour arguments reach |x| ~ 2e3 at M=20; sweep well past that,
  // staying inside the documented 2^26-quadrant reduction range.
  for (double x = -4.0e4; x <= 4.0e4; x += 17.1) {
    double s, c;
    simd::fast_sincos(x, s, c);
    // sin/cos near a zero crossing lose absolute accuracy to the
    // reduction residual, so the honest comparison is against the
    // correctly-rounded value's neighborhood in ULP of the LARGER
    // component magnitude; libm itself is the reference here.
    EXPECT_TRUE(ulp_close(s, std::sin(x), kElementaryUlpBound) ||
                std::fabs(s - std::sin(x)) < 1e-15)
        << "sin x = " << x;
    EXPECT_TRUE(ulp_close(c, std::cos(x), kElementaryUlpBound) ||
                std::fabs(c - std::cos(x)) < 1e-15)
        << "cos x = " << x;
  }
}

TEST(SimdFastMath, LogWithinDocumentedUlpBound) {
  for (double x = 1e-12; x < 1e12; x *= 1.7) {
    EXPECT_TRUE(ulp_close(simd::fast_log(x), std::log(x),
                          kElementaryUlpBound))
        << "x = " << x << " off by "
        << ulp_distance(simd::fast_log(x), std::log(x)) << " ulp";
  }
}

TEST(SimdFastMath, Atan2WithinDocumentedUlpBound) {
  for (double y = -3.0; y <= 3.0; y += 0.13) {
    for (double x = -3.0; x <= 3.0; x += 0.13) {
      if (x == 0.0 && y == 0.0) continue;
      EXPECT_TRUE(ulp_close(simd::fast_atan2(y, x), std::atan2(y, x),
                            kElementaryUlpBound) ||
                  std::fabs(simd::fast_atan2(y, x) - std::atan2(y, x)) <
                      1e-15)
          << "y = " << y << " x = " << x;
    }
  }
}

// Whole-inversion bound: CDF values from kSimdFast stay within the same
// absolute band perf_numerics_tape gates on.  ULP distance is the wrong
// yardstick at the CDF level — deep-tail values near 0 make tiny absolute
// deviations count as millions of ULP.
constexpr double kFastCdfAbsBound = 1e-9;

TEST(SimdFast, CdfWithinAbsoluteBoundOfExact) {
  const auto service = std::make_shared<Gamma>(3.0, 900.0);
  const queueing::MG1 mg1(150.0, service);
  const auto response = std::make_shared<Convolution>(std::vector<DistPtr>{
      mg1.sojourn_time(), std::make_shared<Degenerate>(5e-4),
      std::make_shared<Exponential>(1200.0)});
  const TransformTape tape = TransformTape::compile(response);
  std::vector<double> ts;
  for (double t = 2e-4; t < 0.5; t *= 1.35) ts.push_back(t);
  const std::vector<double> exact = tape.cdf_many(ts, 20, TapeEvalMode::kExact);
  const std::vector<double> fast =
      tape.cdf_many(ts, 20, TapeEvalMode::kSimdFast);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(exact[i], fast[i], kFastCdfAbsBound) << "t = " << ts[i];
  }
}

TEST(SimdFast, DeterministicAcrossRepeatedEvaluations) {
  const auto tree = std::make_shared<Convolution>(std::vector<DistPtr>{
      std::make_shared<Gamma>(2.2, 300.0),
      std::make_shared<Uniform>(1e-4, 3e-3)});
  const TransformTape tape = TransformTape::compile(tree);
  const std::vector<Complex> s = probe_points();
  std::vector<Complex> first(s.size());
  std::vector<Complex> second(s.size());
  tape.evaluate(s, first, TapeEvalMode::kSimdFast);
  tape.evaluate(s, second, TapeEvalMode::kSimdFast);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(first[i].real(), second[i].real());
    EXPECT_EQ(first[i].imag(), second[i].imag());
  }
}

}  // namespace
}  // namespace cosm::numerics
