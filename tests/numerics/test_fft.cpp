#include "numerics/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace cosm::numerics {
namespace {

using Complex = std::complex<double>;

// Naive O(n^2) DFT reference.
std::vector<Complex> dft_reference(const std::vector<Complex>& in,
                                   bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n, Complex{0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * j) / static_cast<double>(n);
      out[k] += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  cosm::Rng rng(n);
  std::vector<Complex> data(n);
  for (auto& v : data) v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto expected = dft_reference(data, false);
  const auto got = fft_forward(data);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i].real(), expected[i].real(), 1e-9) << "n=" << n;
    EXPECT_NEAR(got[i].imag(), expected[i].imag(), 1e-9) << "n=" << n;
  }
}

TEST_P(FftSizeTest, RoundTripsThroughInverse) {
  const std::size_t n = GetParam();
  cosm::Rng rng(1000 + n);
  std::vector<Complex> data(n);
  for (auto& v : data) v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto round_trip = fft_inverse(fft_forward(data));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(round_trip[i].real(), data[i].real(), 1e-10);
    EXPECT_NEAR(round_trip[i].imag(), data[i].imag(), 1e-10);
  }
}

// Power-of-two sizes use radix-2; the rest exercise Bluestein.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 4, 8, 64, 3, 5, 7, 12, 17,
                                           100, 127));

TEST(Fft, ParsevalHolds) {
  cosm::Rng rng(4242);
  std::vector<Complex> data(256);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = Complex(rng.normal(0, 1), 0.0);
    time_energy += std::norm(v);
  }
  const auto freq = fft_forward(data);
  double freq_energy = 0.0;
  for (const auto& v : freq) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-8);
}

TEST(Convolve, MatchesDirectConvolution) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {0.5, 0.25};
  const auto c = convolve(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c[0], 0.5, 1e-12);
  EXPECT_NEAR(c[1], 1.25, 1e-12);
  EXPECT_NEAR(c[2], 2.0, 1e-12);
  EXPECT_NEAR(c[3], 0.75, 1e-12);
}

TEST(Convolve, PreservesProbabilityMass) {
  cosm::Rng rng(9);
  std::vector<double> a(100);
  std::vector<double> b(257);
  double sa = 0.0;
  double sb = 0.0;
  for (auto& v : a) {
    v = rng.uniform();
    sa += v;
  }
  for (auto& v : b) {
    v = rng.uniform();
    sb += v;
  }
  for (auto& v : a) v /= sa;
  for (auto& v : b) v /= sb;
  const auto c = convolve(a, b);
  double total = 0.0;
  for (const double v : c) total += v;
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Convolve, RejectsEmptyInput) {
  EXPECT_THROW(convolve({}, {1.0}), std::invalid_argument);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

}  // namespace
}  // namespace cosm::numerics
