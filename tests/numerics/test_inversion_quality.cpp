// Inversion-quality verdicts: the clamp in cdf_from_laplace used to be
// silent — a wildly out-of-range Euler sum was floored into [0, 1] and
// handed to callers as a valid CDF value.  These tests pin the new
// behavior: the returned value is unchanged (bit-identical to the
// historical clamp), but the verdict is classified, surfaced through the
// _checked entry points, propagated by cdf_many_from_laplace, and
// counted in the obs registry.
#include "numerics/lt_inversion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "numerics/distribution.hpp"
#include "obs/obs.hpp"

namespace cosm::numerics {
namespace {

struct ObsGuard {
  ObsGuard() {
    obs::reset();
    obs::set_enabled(true);
  }
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset();
  }
};

LaplaceFn gamma_lt() {
  static const Gamma gamma(3.0, 300.0);
  return [](std::complex<double> s) { return gamma.laplace(s); };
}

// Not a probability transform at all: L[F](s) = c / s inverts to the
// constant c, so the raw CDF value is far outside [0, 1] — a controlled,
// deterministic divergence.
LaplaceFn constant_lt(double c) {
  return [c](std::complex<double>) { return std::complex<double>(c, 0.0); };
}

TEST(ClassifyCdfValue, Thresholds) {
  EXPECT_EQ(classify_cdf_value(0.5), InversionQuality::kConverged);
  EXPECT_EQ(classify_cdf_value(0.0), InversionQuality::kConverged);
  EXPECT_EQ(classify_cdf_value(1.0), InversionQuality::kConverged);
  EXPECT_EQ(classify_cdf_value(-1e-10), InversionQuality::kConverged);
  EXPECT_EQ(classify_cdf_value(1.0 + 1e-10), InversionQuality::kConverged);
  EXPECT_EQ(classify_cdf_value(-1e-6), InversionQuality::kTruncated);
  EXPECT_EQ(classify_cdf_value(1.0 + 1e-4), InversionQuality::kTruncated);
  EXPECT_EQ(classify_cdf_value(-0.4), InversionQuality::kClamped);
  EXPECT_EQ(classify_cdf_value(5.0), InversionQuality::kClamped);
  EXPECT_EQ(classify_cdf_value(std::numeric_limits<double>::quiet_NaN()),
            InversionQuality::kNonFinite);
  EXPECT_EQ(classify_cdf_value(std::numeric_limits<double>::infinity()),
            InversionQuality::kNonFinite);
}

TEST(InversionQualityVerdict, WellBehavedTransformConverges) {
  const CdfPoint point = cdf_from_laplace_checked(gamma_lt(), 0.01);
  EXPECT_EQ(point.quality, InversionQuality::kConverged);
  EXPECT_GT(point.value, 0.0);
  EXPECT_LT(point.value, 1.0);
}

TEST(InversionQualityVerdict, CheckedValueIsBitIdenticalToLegacy) {
  for (const double t : {1e-4, 1e-3, 0.01, 0.05, 0.5}) {
    EXPECT_EQ(cdf_from_laplace(gamma_lt(), t),
              cdf_from_laplace_checked(gamma_lt(), t).value);
  }
  // The divergent transform too: the clamp result itself is preserved.
  EXPECT_EQ(cdf_from_laplace(constant_lt(5.0), 0.01),
            cdf_from_laplace_checked(constant_lt(5.0), 0.01).value);
}

TEST(InversionQualityVerdict, ForcedDivergenceIsReportedNotSilent) {
  const CdfPoint point = cdf_from_laplace_checked(constant_lt(5.0), 0.01);
  // Historical behavior: the value is clamped into [0, 1]...
  EXPECT_GE(point.value, 0.0);
  EXPECT_LE(point.value, 1.0);
  // ...new behavior: the caller is told the value is a fabrication.
  EXPECT_EQ(point.quality, InversionQuality::kClamped);
}

TEST(InversionQualityVerdict, NonFiniteTransformIsFlagged) {
  const LaplaceFn nan_lt = [](std::complex<double>) {
    return std::complex<double>(std::numeric_limits<double>::quiet_NaN(),
                                0.0);
  };
  const CdfPoint point = cdf_from_laplace_checked(nan_lt, 0.01);
  EXPECT_EQ(point.quality, InversionQuality::kNonFinite);
  // The legacy value contract (NaN passes through std::clamp) holds.
  EXPECT_TRUE(std::isnan(point.value));
  EXPECT_TRUE(std::isnan(cdf_from_laplace(nan_lt, 0.01)));
}

TEST(InversionQualityVerdict, NonPositiveTimeIsExactZero) {
  const CdfPoint point = cdf_from_laplace_checked(gamma_lt(), 0.0);
  EXPECT_EQ(point.value, 0.0);
  EXPECT_EQ(point.quality, InversionQuality::kConverged);
}

TEST(CdfManyQuality, PropagatesPerPointVerdicts) {
  const Gamma gamma(3.0, 300.0);
  const BatchLaplaceFn batch = [&](std::span<const std::complex<double>> s,
                                   std::span<std::complex<double>> out) {
    for (std::size_t i = 0; i < s.size(); ++i) out[i] = gamma.laplace(s[i]);
  };
  const std::vector<double> ts = {0.0, 0.005, 0.02, -1.0, 0.1};
  std::vector<InversionQuality> quality(ts.size(),
                                        InversionQuality::kNonFinite);
  const std::vector<double> values =
      cdf_many_from_laplace(batch, ts, 20, quality);
  const std::vector<double> legacy = cdf_many_from_laplace(batch, ts, 20);
  ASSERT_EQ(values.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(values[i], legacy[i]) << "value drift at point " << i;
    EXPECT_EQ(quality[i], InversionQuality::kConverged) << "point " << i;
  }
}

TEST(CdfManyQuality, DivergentBatchFlagsEveryLivePoint) {
  const BatchLaplaceFn batch = [](std::span<const std::complex<double>> s,
                                  std::span<std::complex<double>> out) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      out[i] = std::complex<double>(7.0, 0.0);
    }
  };
  const std::vector<double> ts = {0.01, 0.0, 0.02};
  std::vector<InversionQuality> quality(ts.size(),
                                        InversionQuality::kConverged);
  cdf_many_from_laplace(batch, ts, 20, quality);
  EXPECT_EQ(quality[0], InversionQuality::kClamped);
  EXPECT_EQ(quality[1], InversionQuality::kConverged);  // exact 0 at t<=0
  EXPECT_EQ(quality[2], InversionQuality::kClamped);
}

TEST(CdfManyQuality, MismatchedQualitySpanThrows) {
  const BatchLaplaceFn batch = [](std::span<const std::complex<double>> s,
                                  std::span<std::complex<double>> out) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      out[i] = std::complex<double>(1.0, 0.0);
    }
  };
  const std::vector<double> ts = {0.01, 0.02};
  std::vector<InversionQuality> wrong(1);
  EXPECT_THROW(cdf_many_from_laplace(batch, ts, 20, wrong),
               std::invalid_argument);
}

TEST(InversionQualityCounters, EveryInversionBumpsExactlyOneVerdict) {
  ObsGuard guard;
  cdf_from_laplace_checked(gamma_lt(), 0.01);        // converged
  cdf_from_laplace_checked(constant_lt(5.0), 0.01);  // clamped
  EXPECT_EQ(obs::counter_value(obs::Counter::kInversionConverged), 1u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kInversionClamped), 1u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kInversionCalls), 2u);
  // Euler at m=20 costs 2m+1 = 41 contour terms per inversion.
  EXPECT_EQ(obs::counter_value(obs::Counter::kInversionTerms), 82u);
}

TEST(WarmStartRegime, FingerprintChangeDiscardsCarriedRoot) {
  ObsGuard guard;
  QuantileWarmStart warm;
  warm.previous = 0.05;
  warm.enter_regime(111);  // first tracked regime: keeps nothing to reject
  EXPECT_EQ(warm.previous, 0.0);  // untracked -> tracked resets silently
  EXPECT_EQ(obs::counter_value(obs::Counter::kQuantileWarmRejectRegime), 0u);

  warm.previous = 0.07;
  warm.enter_regime(111);  // same regime: seed survives
  EXPECT_EQ(warm.previous, 0.07);

  warm.enter_regime(222);  // regime change: seed discarded, loudly
  EXPECT_EQ(warm.previous, 0.0);
  EXPECT_EQ(warm.regime, 222u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kQuantileWarmRejectRegime), 1u);
}

TEST(WarmStartRegime, PoisonedSeedFallsBackToColdBracket) {
  ObsGuard guard;
  const Gamma gamma(3.0, 300.0);
  const LaplaceFn lt = [&](std::complex<double> s) {
    return gamma.laplace(s);
  };
  const double mean = gamma.mean();
  const double cold = quantile_from_laplace(lt, 0.95, mean);

  // A moderately stale seed (a few decades off) is absorbed by the warm
  // shrink ladder without abandoning the seed.
  QuantileWarmStart stale;
  stale.previous = 1e4 * cold;
  const double from_stale = quantile_from_laplace(lt, 0.95, mean, 1e9,
                                                  &stale);
  EXPECT_NEAR(from_stale, cold, 1e-6 * cold);
  EXPECT_EQ(obs::counter_value(obs::Counter::kQuantileWarmFallback), 0u);

  // A seed 15 orders of magnitude above the root exhausts the bounded
  // ladder (12 decades): the search must restart cold instead of handing
  // Brent an invalid bracket — and say so through the counter.
  QuantileWarmStart poisoned;
  poisoned.previous = 1e15 * cold;
  const double recovered = quantile_from_laplace(lt, 0.95, mean, 1e9,
                                                 &poisoned);
  EXPECT_NEAR(recovered, cold, 1e-6 * cold);
  EXPECT_GE(obs::counter_value(obs::Counter::kQuantileWarmFallback), 1u);
}

}  // namespace
}  // namespace cosm::numerics
