// Tests for the distribution combinators that implement the paper's model
// algebra: mixtures (cache hit/miss), convolutions (latency components in
// sequence), and the compound-Poisson union-operation kernel.
#include "numerics/compose.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace cosm::numerics {
namespace {

TEST(Mixture, WeightsMustSumToOne) {
  const auto e = std::make_shared<Exponential>(1.0);
  EXPECT_THROW(Mixture({{0.5, e}, {0.6, e}}), std::invalid_argument);
  EXPECT_THROW(Mixture({{-0.1, e}, {1.1, e}}), std::invalid_argument);
  EXPECT_THROW(Mixture({}), std::invalid_argument);
}

TEST(Mixture, MomentsAreWeightedAverages) {
  const auto fast = std::make_shared<Exponential>(10.0);  // mean 0.1
  const auto slow = std::make_shared<Exponential>(1.0);   // mean 1.0
  const Mixture mix({{0.7, fast}, {0.3, slow}});
  EXPECT_NEAR(mix.mean(), 0.7 * 0.1 + 0.3 * 1.0, 1e-14);
  EXPECT_NEAR(mix.second_moment(), 0.7 * 0.02 + 0.3 * 2.0, 1e-14);
}

TEST(Mixture, CdfIsWeightedCdf) {
  const auto a = std::make_shared<Degenerate>(1.0);
  const auto b = std::make_shared<Degenerate>(3.0);
  const Mixture mix({{0.25, a}, {0.75, b}});
  EXPECT_EQ(mix.cdf(0.5), 0.0);
  EXPECT_EQ(mix.cdf(2.0), 0.25);
  EXPECT_EQ(mix.cdf(3.0), 1.0);
}

TEST(TieredService, MixesHitAndMissBranches) {
  // Tiering extension: L(s) = h * L_ssd(s) + (1 - h) * L_disk(s), and the
  // moments/CDF mix the same way.
  const double h = 0.6;
  const auto ssd = std::make_shared<Degenerate>(0.004);
  const auto disk = std::make_shared<Degenerate>(0.012);
  const TieredService tiered(h, ssd, disk);
  EXPECT_NEAR(tiered.mean(), h * 0.004 + (1 - h) * 0.012, 1e-15);
  EXPECT_NEAR(tiered.second_moment(),
              h * 0.004 * 0.004 + (1 - h) * 0.012 * 0.012, 1e-15);
  EXPECT_EQ(tiered.cdf(0.002), 0.0);
  EXPECT_DOUBLE_EQ(tiered.cdf(0.005), h);
  EXPECT_EQ(tiered.cdf(0.013), 1.0);
  const auto s = std::complex<double>(5.0, 2.0);
  const auto expected = h * ssd->laplace(s) + (1 - h) * disk->laplace(s);
  EXPECT_EQ(tiered.laplace(s), expected);  // exact: same arithmetic order
}

TEST(TieredService, SamplesFromBothBranches) {
  const auto ssd = std::make_shared<Degenerate>(1.0);
  const auto disk = std::make_shared<Degenerate>(2.0);
  const TieredService tiered(0.7, ssd, disk);
  cosm::Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += tiered.sample(rng) == 1.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.7, 0.02);
}

TEST(TieredService, RejectsBadArguments) {
  const auto d = std::make_shared<Exponential>(1.0);
  EXPECT_THROW(TieredService(-0.1, d, d), std::invalid_argument);
  EXPECT_THROW(TieredService(1.1, d, d), std::invalid_argument);
  EXPECT_THROW(TieredService(0.5, nullptr, d), std::invalid_argument);
  EXPECT_THROW(TieredService(0.5, d, nullptr), std::invalid_argument);
}

TEST(AtomAtZeroMixture, ModelsTheCacheEquation) {
  // Paper Sec. III-B: index(t) = m * index_d(t) + (1 - m) * delta(t).
  const double miss = 0.2;
  const auto disk = std::make_shared<Gamma>(2.0, 100.0);
  const DistPtr op = atom_at_zero_mixture(miss, disk);
  EXPECT_NEAR(op->mean(), miss * disk->mean(), 1e-14);
  // CDF at 0+ already includes the cache-hit atom.
  EXPECT_NEAR(op->cdf(1e-12), 1.0 - miss, 1e-9);
  // L(s) = (1 - m) + m * L_disk(s).
  const auto s = std::complex<double>(3.0, 1.0);
  const auto expected = (1.0 - miss) + miss * disk->laplace(s);
  const auto got = op->laplace(s);
  EXPECT_NEAR(got.real(), expected.real(), 1e-12);
  EXPECT_NEAR(got.imag(), expected.imag(), 1e-12);
}

TEST(AtomAtZeroMixture, RejectsBadMissRatio) {
  const auto d = std::make_shared<Exponential>(1.0);
  EXPECT_THROW(atom_at_zero_mixture(-0.1, d), std::invalid_argument);
  EXPECT_THROW(atom_at_zero_mixture(1.2, d), std::invalid_argument);
}

TEST(Convolution, GammaPlusGammaIsGamma) {
  // Gamma(a1, l) * Gamma(a2, l) = Gamma(a1 + a2, l): the convolution's
  // transform and CDF must match the closed-form sum.
  const auto g1 = std::make_shared<Gamma>(1.5, 8.0);
  const auto g2 = std::make_shared<Gamma>(2.5, 8.0);
  const Convolution conv({g1, g2});
  const Gamma sum(4.0, 8.0);
  EXPECT_NEAR(conv.mean(), sum.mean(), 1e-14);
  EXPECT_NEAR(conv.second_moment(), sum.second_moment(), 1e-12);
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    // Convolution::cdf goes through numeric LT inversion.
    EXPECT_NEAR(conv.cdf(t), sum.cdf(t), 1e-7) << t;
  }
}

TEST(Convolution, SamplesAddComponents) {
  const auto d1 = std::make_shared<Degenerate>(0.25);
  const auto d2 = std::make_shared<Degenerate>(0.5);
  const Convolution conv({d1, d2});
  Rng rng(1);
  EXPECT_EQ(conv.sample(rng), 0.75);
}

TEST(Convolution, MeanAndTransformConsistent) {
  const auto parts = std::vector<DistPtr>{
      std::make_shared<Degenerate>(0.002),
      std::make_shared<Gamma>(2.0, 150.0),
      std::make_shared<Exponential>(90.0)};
  const Convolution conv(parts);
  const double h = 1e-7;
  const double derivative =
      (conv.laplace({h, 0.0}).real() - conv.laplace({-h, 0.0}).real()) /
      (2.0 * h);
  EXPECT_NEAR(-derivative, conv.mean(), 1e-6);
}

TEST(CompoundPoisson, ZeroRateDegeneratesToBase) {
  const auto base = std::make_shared<Gamma>(2.0, 10.0);
  const auto extra = std::make_shared<Exponential>(5.0);
  const CompoundPoissonConvolution cp(base, 0.0, extra);
  EXPECT_NEAR(cp.mean(), base->mean(), 1e-14);
  const auto s = std::complex<double>(1.0, 0.5);
  EXPECT_NEAR(std::abs(cp.laplace(s) - base->laplace(s)), 0.0, 1e-14);
}

TEST(CompoundPoisson, MeanMatchesPaperFormula) {
  // Paper: mean = base_mean + p * extra_mean (B̄_be expression, Sec. III-B).
  const auto base = std::make_shared<Degenerate>(0.01);
  const auto extra = std::make_shared<Gamma>(1.5, 100.0);
  const double p = 2.3;
  const CompoundPoissonConvolution cp(base, p, extra);
  EXPECT_NEAR(cp.mean(), 0.01 + p * 0.015, 1e-14);
}

TEST(CompoundPoisson, TransformMatchesExplicitSeries) {
  // L(s) = L_base(s) sum_j p^j e^{-p}/j! L_extra(s)^j, truncated at j = 60.
  const auto base = std::make_shared<Gamma>(1.0, 50.0);
  const auto extra = std::make_shared<Gamma>(2.0, 80.0);
  const double p = 1.7;
  const CompoundPoissonConvolution cp(base, p, extra);
  for (const auto s : {std::complex<double>(2.0, 0.0),
                       std::complex<double>(5.0, 30.0)}) {
    std::complex<double> series = 0.0;
    std::complex<double> extra_pow = 1.0;
    double log_fact = 0.0;
    for (int j = 0; j < 60; ++j) {
      if (j > 0) log_fact += std::log(static_cast<double>(j));
      series += std::exp(j * std::log(p) - p - log_fact) * extra_pow;
      extra_pow *= extra->laplace(s);
    }
    series *= base->laplace(s);
    const auto closed = cp.laplace(s);
    EXPECT_NEAR(closed.real(), series.real(), 1e-10);
    EXPECT_NEAR(closed.imag(), series.imag(), 1e-10);
  }
}

TEST(CompoundPoisson, SampleMomentsMatch) {
  const auto base = std::make_shared<Degenerate>(0.5);
  const auto extra = std::make_shared<Exponential>(4.0);
  const double p = 3.0;
  const CompoundPoissonConvolution cp(base, p, extra);
  Rng rng(31);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) {
    const double x = cp.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, cp.mean(), 0.01 * cp.mean());
  EXPECT_NEAR(sum_sq / kN, cp.second_moment(), 0.03 * cp.second_moment());
}

TEST(LaplaceDistribution, WrapsTransform) {
  const Exponential ref(2.0);
  const LaplaceDistribution wrapped(
      "wrapped_exp",
      [&ref](std::complex<double> s) { return ref.laplace(s); }, ref.mean(),
      ref.second_moment());
  EXPECT_EQ(wrapped.name(), "wrapped_exp");
  EXPECT_NEAR(wrapped.mean(), 0.5, 1e-15);
  // CDF must fall back to LT inversion and agree with the closed form.
  for (double t : {0.2, 0.5, 1.5}) {
    EXPECT_NEAR(wrapped.cdf(t), ref.cdf(t), 1e-8) << t;
  }
  Rng rng(1);
  EXPECT_THROW(wrapped.sample(rng), std::logic_error);
}

TEST(ThirdMoments, ClosedFormsMatchSampling) {
  // E[X^3] by 1M-sample Monte Carlo vs the closed forms, for the
  // combinators the M/G/1/K residual moments rely on.
  const auto base = std::make_shared<Gamma>(2.5, 120.0);
  const auto extra = std::make_shared<Exponential>(90.0);
  const Convolution conv({base, extra, std::make_shared<Degenerate>(0.003)});
  const CompoundPoissonConvolution cp(base, 1.4, extra);
  const Mixture mix({{0.3, base}, {0.7, extra}});
  Rng rng(20170704);
  double conv_sum = 0.0;
  double cp_sum = 0.0;
  double mix_sum = 0.0;
  constexpr int kN = 1000000;
  for (int i = 0; i < kN; ++i) {
    const double a = conv.sample(rng);
    conv_sum += a * a * a;
    const double b = cp.sample(rng);
    cp_sum += b * b * b;
    const double c = mix.sample(rng);
    mix_sum += c * c * c;
  }
  EXPECT_NEAR(conv_sum / kN, conv.third_moment(),
              0.03 * conv.third_moment());
  EXPECT_NEAR(cp_sum / kN, cp.third_moment(), 0.05 * cp.third_moment());
  EXPECT_NEAR(mix_sum / kN, mix.third_moment(),
              0.05 * mix.third_moment());
}

TEST(ConvolveDists, SinglePartPassesThrough) {
  const auto g = std::make_shared<Gamma>(2.0, 1.0);
  EXPECT_EQ(convolve_dists({g}), g);
}

TEST(Scaled, MomentsTransformAndCdf) {
  // Y = 3X with X ~ Gamma(2, 100): Gamma is closed under scaling, so the
  // wrapper must agree with Gamma(2, 100/3) everywhere.
  const auto inner = std::make_shared<Gamma>(2.0, 100.0);
  const Scaled scaled(inner, 3.0);
  const Gamma direct(2.0, 100.0 / 3.0);
  EXPECT_NEAR(scaled.mean(), direct.mean(), 1e-14);
  EXPECT_NEAR(scaled.second_moment(), direct.second_moment(), 1e-14);
  EXPECT_NEAR(scaled.third_moment(), direct.third_moment(), 1e-12);
  for (const double t : {0.01, 0.05, 0.1, 0.3}) {
    EXPECT_NEAR(scaled.cdf(t), direct.cdf(t), 1e-10);
  }
  for (const double s : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(scaled.laplace({s, 0.0}).real(),
                direct.laplace({s, 0.0}).real(), 1e-12);
  }
  Rng rng(5);
  EXPECT_GT(scaled.sample(rng), 0.0);
}

TEST(Scaled, RejectsBadFactorAndUnitIsNoop) {
  const auto g = std::make_shared<Gamma>(2.0, 1.0);
  EXPECT_THROW(Scaled(g, 0.0), std::invalid_argument);
  EXPECT_THROW(Scaled(g, -2.0), std::invalid_argument);
  EXPECT_THROW(Scaled(nullptr, 2.0), std::invalid_argument);
  EXPECT_EQ(scale_dist(g, 1.0), g);  // no wrapper for the identity
  EXPECT_NE(scale_dist(g, 2.0), g);
}

}  // namespace
}  // namespace cosm::numerics
