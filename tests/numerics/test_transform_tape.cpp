// Bit-identity of the transform tape against the scalar tree walk — the
// tape's hard contract.  Every EXPECT on transform values uses exact
// double equality: the tape must replicate the scalar per-node arithmetic
// order, not merely approximate it.

#include "numerics/transform_tape.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "numerics/compose.hpp"
#include "numerics/distribution.hpp"
#include "numerics/lt_inversion.hpp"
#include "numerics/phase_type.hpp"
#include "numerics/transform_nodes.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1k.hpp"
#include "queueing/mm1k.hpp"

// Allocation counter: every operator new in this binary bumps it, so the
// workspace-leasing tests can assert that steady-state tape evaluation
// performs zero heap allocations (same pattern as tests/obs/test_obs.cpp).
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC pairs inlined make_shared allocations (through our operator new)
// with these free() calls and reports a mismatch; the pairing is exactly
// what we intend — new/new[] allocate with malloc.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cosm::numerics {
namespace {

using Complex = std::complex<double>;

// Contour-like probe points plus the guard-branch neighborhoods (tiny
// |s| for the P–K / M/M/1/K / Uniform / Gamma series branches).
std::vector<Complex> probe_points() {
  std::vector<Complex> s;
  for (int k = 0; k < 21; ++k) {
    s.emplace_back(15.35, 3.1415 * k * 9.7);  // Euler-style vertical line
  }
  s.emplace_back(1e-16, 0.0);   // below every small-|s| guard
  s.emplace_back(1e-9, 1e-9);   // below Uniform's 1e-8 guard
  s.emplace_back(1e-7, 0.0);    // between guards
  s.emplace_back(0.5, -2.0);    // negative imaginary part
  s.emplace_back(250.0, 1000.0);
  return s;
}

void expect_tape_bit_identical(const DistPtr& dist) {
  const TransformTape tape = TransformTape::compile(dist);
  ASSERT_TRUE(tape.compiled());
  const std::vector<Complex> s = probe_points();
  std::vector<Complex> batched(s.size());
  tape.evaluate(s, batched);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Complex scalar = dist->laplace(s[i]);
    EXPECT_EQ(scalar.real(), batched[i].real())
        << dist->name() << " at s = " << s[i];
    EXPECT_EQ(scalar.imag(), batched[i].imag())
        << dist->name() << " at s = " << s[i];
  }
}

TEST(TransformTape, LeafDistributionsBitIdentical) {
  expect_tape_bit_identical(std::make_shared<Degenerate>(0.0));
  expect_tape_bit_identical(std::make_shared<Degenerate>(3.25e-3));
  expect_tape_bit_identical(std::make_shared<Exponential>(123.5));
  expect_tape_bit_identical(std::make_shared<Gamma>(3.7, 412.0));
  expect_tape_bit_identical(std::make_shared<Gamma>(250.0, 1e4));
  expect_tape_bit_identical(std::make_shared<Uniform>(1e-3, 7e-3));
  expect_tape_bit_identical(std::make_shared<Erlang>(4, 800.0));
  expect_tape_bit_identical(std::make_shared<HyperExponential>(
      std::vector<HyperExponential::Branch>{{0.3, 100.0}, {0.7, 900.0}}));
}

TEST(TransformTape, QuadratureLeavesUseGenericPathBitIdentical) {
  // No closed form: these must compile to generic laplace_many leaves.
  const auto lognormal = std::make_shared<Lognormal>(-6.0, 0.8);
  const TransformTape tape = TransformTape::compile(lognormal);
  EXPECT_EQ(tape.generic_leaf_count(), 1u);
  expect_tape_bit_identical(lognormal);
  expect_tape_bit_identical(std::make_shared<Weibull>(1.7, 2.5e-3));
  expect_tape_bit_identical(std::make_shared<TruncatedNormal>(5e-3, 2e-3));
  expect_tape_bit_identical(std::make_shared<Pareto>(2.5, 1e-3));
}

TEST(TransformTape, QueueingNodesBitIdentical) {
  const auto service = std::make_shared<Gamma>(3.0, 900.0);
  const queueing::MG1 mg1(120.0, service);
  expect_tape_bit_identical(mg1.waiting_time());
  expect_tape_bit_identical(mg1.sojourn_time());

  const queueing::MM1K mm1k(300.0, 400.0, 4);
  expect_tape_bit_identical(mm1k.sojourn_time());

  const queueing::MG1K mg1k(300.0, service, 4);
  expect_tape_bit_identical(mg1k.sojourn_time());
}

TEST(TransformTape, CombinatorsBitIdentical) {
  const auto gamma = std::make_shared<Gamma>(2.8, 560.0);
  const auto expo = std::make_shared<Exponential>(220.0);
  const auto mix = atom_at_zero_mixture(0.35, gamma);
  const auto conv = std::make_shared<Convolution>(
      std::vector<DistPtr>{mix, expo, std::make_shared<Degenerate>(4e-4)});
  const auto compound =
      std::make_shared<CompoundPoissonConvolution>(conv, 0.8, mix);
  const auto scaled = std::make_shared<Scaled>(compound, 1.5);
  const auto shifted = std::make_shared<Shifted>(2e-4, scaled);
  expect_tape_bit_identical(mix);
  expect_tape_bit_identical(conv);
  expect_tape_bit_identical(compound);
  expect_tape_bit_identical(scaled);
  expect_tape_bit_identical(shifted);
}

TEST(TransformTape, TieredServiceBitIdentical) {
  // The tier mixture (tiering extension) compiles to its own kTierMix op
  // whose weights are the node's stored pair, so the tape reproduces the
  // tree walk's hit_ratio * hit + miss_ratio * miss exactly.
  const auto ssd = std::make_shared<Gamma>(4.0, 4000.0);
  const auto disk = std::make_shared<Gamma>(2.1, 55.0);
  const auto tiered = std::make_shared<TieredService>(0.73, ssd, disk);
  expect_tape_bit_identical(tiered);
  // Nested under the cache mixture and convolution, as BackendModel
  // composes it.
  const auto data = atom_at_zero_mixture(0.4, tiered);
  const auto conv = std::make_shared<Convolution>(
      std::vector<DistPtr>{data, std::make_shared<Exponential>(900.0)});
  expect_tape_bit_identical(conv);
}

TEST(TransformTape, TieredServiceFingerprintDistinctFromMixture) {
  // A tiered tree must not collide with the equivalent two-component
  // Mixture: regime fingerprints key the prediction cache by structure.
  const auto ssd = std::make_shared<Gamma>(4.0, 4000.0);
  const auto disk = std::make_shared<Gamma>(2.1, 55.0);
  const auto tiered =
      TransformTape::compile(std::make_shared<TieredService>(0.73, ssd, disk));
  const auto mixture = TransformTape::compile(std::make_shared<Mixture>(
      std::vector<Mixture::Component>{{0.73, ssd}, {0.27, disk}}));
  EXPECT_NE(tiered.fingerprint(), mixture.fingerprint());
  const auto twin =
      TransformTape::compile(std::make_shared<TieredService>(0.73, ssd, disk));
  EXPECT_EQ(tiered.fingerprint(), twin.fingerprint());
  const auto other =
      TransformTape::compile(std::make_shared<TieredService>(0.74, ssd, disk));
  EXPECT_NE(tiered.fingerprint(), other.fingerprint());
}

TEST(TransformTape, NestedScalingEvaluatesInnerAtProductArgument) {
  // Scaled(Scaled(X, a), b) must evaluate X at a * (b * s), exactly as
  // the nested scalar walk does.
  const auto inner = std::make_shared<Gamma>(3.1, 700.0);
  const auto once = std::make_shared<Scaled>(inner, 1.3);
  const auto twice = std::make_shared<Scaled>(once, 0.7);
  expect_tape_bit_identical(twice);
}

TEST(TransformTape, SharedSubtreeIsEvaluatedOnceViaSlot) {
  // The same Gamma object under two mixtures: CSE must emit one
  // evaluation + store, and load it for the second occurrence.
  const auto shared = std::make_shared<Gamma>(2.0, 300.0);
  const auto left = atom_at_zero_mixture(0.3, shared);
  const auto right = atom_at_zero_mixture(0.6, shared);
  const auto conv =
      std::make_shared<Convolution>(std::vector<DistPtr>{left, right});
  const TransformTape tape = TransformTape::compile(conv);
  EXPECT_GE(tape.slot_count(), 1u);
  expect_tape_bit_identical(conv);

  // The same object under DIFFERENT scale factors is NOT the same
  // subexpression; values must still match the scalar walk.
  const auto scaled_mix = std::make_shared<Mixture>(
      std::vector<Mixture::Component>{
          {0.5, std::make_shared<Scaled>(shared, 2.0)},
          {0.5, std::make_shared<Scaled>(shared, 3.0)}});
  expect_tape_bit_identical(scaled_mix);
}

TEST(TransformTape, FingerprintsDistinguishParametersAndMatchTwins) {
  const auto a = TransformTape::compile(std::make_shared<Gamma>(3.0, 500.0));
  const auto twin =
      TransformTape::compile(std::make_shared<Gamma>(3.0, 500.0));
  const auto other =
      TransformTape::compile(std::make_shared<Gamma>(3.0, 501.0));
  EXPECT_EQ(a.fingerprint(), twin.fingerprint());
  EXPECT_NE(a.fingerprint(), other.fingerprint());
}

TEST(TransformTape, CdfMatchesScalarInversionBitwise) {
  const auto service = std::make_shared<Gamma>(3.0, 900.0);
  const queueing::MG1 mg1(150.0, service);
  const DistPtr sojourn = mg1.sojourn_time();
  const TransformTape tape = TransformTape::compile(sojourn);
  const LaplaceFn lt = [&sojourn](Complex s) { return sojourn->laplace(s); };
  for (const double t : {1e-4, 2.3e-3, 8e-3, 2.5e-2, 0.4}) {
    EXPECT_EQ(tape.cdf(t), cdf_from_laplace(lt, t));
  }
  EXPECT_EQ(tape.cdf(0.0), 0.0);
  EXPECT_EQ(tape.cdf(-1.0), 0.0);
}

TEST(TransformTape, CdfManyMatchesPerPointBitwise) {
  const auto service = std::make_shared<Gamma>(2.5, 700.0);
  const queueing::MM1K disk(250.0, 350.0, 4);
  const auto response = std::make_shared<Convolution>(std::vector<DistPtr>{
      disk.sojourn_time(), service, std::make_shared<Degenerate>(5e-4)});
  const TransformTape tape = TransformTape::compile(response);
  const std::vector<double> ts = {-1.0, 0.0,  1e-4, 5e-3, 5e-3,
                                  2e-2, 0.11, 0.5,  2.0};
  const std::vector<double> batch = tape.cdf_many(ts);
  ASSERT_EQ(batch.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(batch[i], tape.cdf(ts[i])) << "t = " << ts[i];
  }
}

TEST(TransformTape, QuantileWarmStartAgreesWithCold) {
  const auto service = std::make_shared<Gamma>(3.0, 900.0);
  const queueing::MG1 mg1(150.0, service);
  const DistPtr sojourn = mg1.sojourn_time();
  const TransformTape tape = TransformTape::compile(sojourn);
  const double mean = sojourn->mean();
  QuantileWarmStart warm;
  for (const double p : {0.5, 0.9, 0.95, 0.99}) {
    const double cold = tape.quantile(p, mean);
    const double warmed = tape.quantile(p, mean, 1e9, &warm);
    // Warm starting changes the bracket, not the root: agreement is at
    // the Brent tolerance level (1e-10 * mean_hint), not bit-exact.
    EXPECT_NEAR(warmed, cold, 1e-7 * cold);
    EXPECT_EQ(warm.previous, warmed);
  }
}

TEST(LaplaceManyDefault, MatchesScalarLoop) {
  const Lognormal dist(-6.2, 0.9);
  const std::vector<Complex> s = probe_points();
  std::vector<Complex> out(s.size());
  dist.laplace_many(s, out);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(out[i], dist.laplace(s[i]));
  }
}

// ---------------------------- concurrency --------------------------------
//
// The workspace-leasing contract (transform_tape.cpp): evaluations lease
// buffers from a thread-local pool, so (a) steady state allocates
// NOTHING, and (b) concurrent or interleaved evaluations never share a
// live workspace.  The hammer drives mixed tape shapes and batch widths
// from {1, 2, 8} threads in both evaluator modes; any cross-lease
// aliasing would corrupt values against the single-threaded reference,
// and any per-evaluation allocation trips the counter.

struct HammerScenario {
  TransformTape tape;
  std::vector<Complex> points;
  std::vector<Complex> exact;  // single-threaded kExact reference
  std::vector<Complex> simd;   // single-threaded kSimd reference
};

std::vector<HammerScenario> build_hammer_scenarios() {
  const auto gamma = std::make_shared<Gamma>(2.8, 560.0);
  const auto service = std::make_shared<Gamma>(3.0, 900.0);
  const queueing::MM1K disk(250.0, 350.0, 4);
  const queueing::MG1 mg1(120.0, service);
  const auto shared = std::make_shared<Gamma>(2.0, 300.0);
  const std::vector<DistPtr> trees = {
      // Plain leaf: the smallest workspace.
      gamma,
      // Queueing convolution: deeper value stack, P-K guard branches.
      std::make_shared<Convolution>(std::vector<DistPtr>{
          disk.sojourn_time(), service, std::make_shared<Degenerate>(5e-4)}),
      // Shared subtree under scaling: CSE slots plus argument planes.
      std::make_shared<CompoundPoissonConvolution>(
          std::make_shared<Scaled>(
              std::make_shared<Convolution>(std::vector<DistPtr>{
                  atom_at_zero_mixture(0.3, shared), shared}),
              1.5),
          0.8, mg1.waiting_time()),
      // Tier mixture over hyperexponential branches.
      std::make_shared<TieredService>(
          0.73, std::make_shared<Gamma>(4.0, 4000.0),
          std::make_shared<HyperExponential>(
              std::vector<HyperExponential::Branch>{{0.3, 100.0},
                                                    {0.7, 900.0}})),
  };
  std::vector<HammerScenario> scenarios;
  const std::vector<Complex> all = probe_points();
  for (std::size_t i = 0; i < trees.size(); ++i) {
    HammerScenario s;
    s.tape = TransformTape::compile(trees[i]);
    // Varied batch widths, so leases are resized across scenarios rather
    // than always reusing an identically-sized buffer.
    const std::size_t width = 5 + 7 * i;
    s.points.assign(all.begin(), all.begin() + std::min(width, all.size()));
    s.exact.resize(s.points.size());
    s.simd.resize(s.points.size());
    s.tape.evaluate(s.points, s.exact, TapeEvalMode::kExact);
    s.tape.evaluate(s.points, s.simd, TapeEvalMode::kSimd);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

TEST(TransformTapeConcurrency, LeasedEvaluationIsAllocationFreeAndUnaliased) {
  const std::vector<HammerScenario> scenarios = build_hammer_scenarios();
  std::size_t max_batch = 0;
  for (const HammerScenario& s : scenarios) {
    max_batch = std::max(max_batch, s.points.size());
  }

  for (const int thread_count : {1, 2, 8}) {
    std::atomic<std::uint64_t> mismatches{0};
    std::uint64_t allocs_before = 0;
    std::uint64_t allocs_after = 0;
    // Completion hooks run once all threads arrive and before any are
    // released, bracketing exactly the steady-state window.
    std::barrier start(thread_count, [&]() noexcept {
      allocs_before = g_allocations.load(std::memory_order_relaxed);
    });
    std::barrier finish(thread_count, [&]() noexcept {
      allocs_after = g_allocations.load(std::memory_order_relaxed);
    });

    std::vector<std::thread> workers;
    for (int t = 0; t < thread_count; ++t) {
      workers.emplace_back([&] {
        std::vector<Complex> out(max_batch);
        // Warmup leases and sizes this thread's pooled workspace for
        // every tape shape and both modes.
        for (const HammerScenario& s : scenarios) {
          const std::span<Complex> window(out.data(), s.points.size());
          s.tape.evaluate(s.points, window, TapeEvalMode::kExact);
          s.tape.evaluate(s.points, window, TapeEvalMode::kSimd);
        }
        start.arrive_and_wait();
        for (int round = 0; round < 40; ++round) {
          for (const HammerScenario& s : scenarios) {
            const std::span<Complex> window(out.data(), s.points.size());
            s.tape.evaluate(s.points, window, TapeEvalMode::kExact);
            for (std::size_t i = 0; i < s.points.size(); ++i) {
              if (out[i].real() != s.exact[i].real() ||
                  out[i].imag() != s.exact[i].imag()) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
            s.tape.evaluate(s.points, window, TapeEvalMode::kSimd);
            for (std::size_t i = 0; i < s.points.size(); ++i) {
              if (out[i].real() != s.simd[i].real() ||
                  out[i].imag() != s.simd[i].imag()) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        }
        finish.arrive_and_wait();
      });
    }
    for (std::thread& worker : workers) worker.join();

    EXPECT_EQ(mismatches.load(), 0u)
        << thread_count << " threads: cross-lease aliasing or mode drift";
    EXPECT_EQ(allocs_after, allocs_before)
        << thread_count
        << " threads: steady-state evaluation touched the heap";
  }
}

// ------------------------------ fuzzing ---------------------------------

// Random tree generator: composes the full node algebra (leaves,
// mixtures, convolutions, compound Poisson, scaling, shifting, queueing
// sojourns) with deliberate subtree *sharing* so CSE paths are exercised.
class TreeFuzzer {
 public:
  explicit TreeFuzzer(std::uint64_t seed) : rng_(seed) {}

  DistPtr build(int depth) {
    // Reuse an existing subtree 25% of the time once some exist: shared
    // nodes are what CSE must get right.
    if (!pool_.empty() && pick(4) == 0) {
      return pool_[pick(pool_.size())];
    }
    DistPtr result = depth <= 0 ? leaf() : combinator(depth);
    pool_.push_back(result);
    return result;
  }

 private:
  DistPtr leaf() {
    switch (pick(6)) {
      case 0:
        return std::make_shared<Degenerate>(uniform(0.0, 2e-3));
      case 1:
        return std::make_shared<Exponential>(uniform(50.0, 2000.0));
      case 2:
        return std::make_shared<Gamma>(uniform(0.5, 6.0),
                                       uniform(100.0, 3000.0));
      case 3:
        return std::make_shared<Uniform>(1e-4, uniform(2e-4, 5e-3));
      case 4:
        return std::make_shared<Erlang>(1 + pick(5), uniform(200.0, 2000.0));
      default: {
        const double p = uniform(0.05, 0.95);
        return std::make_shared<HyperExponential>(
            std::vector<HyperExponential::Branch>{
                {p, uniform(100.0, 1000.0)},
                {1.0 - p, uniform(1000.0, 5000.0)}});
      }
    }
  }

  DistPtr combinator(int depth) {
    switch (pick(7)) {
      case 0: {
        const double w = uniform(0.05, 0.95);
        return std::make_shared<Mixture>(std::vector<Mixture::Component>{
            {w, build(depth - 1)}, {1.0 - w, build(depth - 1)}});
      }
      case 1: {
        std::vector<DistPtr> parts;
        const std::size_t n = 2 + pick(2);
        for (std::size_t i = 0; i < n; ++i) parts.push_back(build(depth - 1));
        return std::make_shared<Convolution>(std::move(parts));
      }
      case 2:
        return std::make_shared<CompoundPoissonConvolution>(
            build(depth - 1), uniform(0.0, 2.0), build(depth - 1));
      case 3:
        return std::make_shared<Scaled>(build(depth - 1), uniform(0.2, 3.0));
      case 4:
        return std::make_shared<Shifted>(uniform(0.0, 1e-3),
                                         build(depth - 1));
      case 5: {
        // M/M/1/K sojourn leaf with randomized load below saturation.
        const double v = uniform(500.0, 2000.0);
        const queueing::MM1K q(uniform(0.3, 0.9) * v, v, 2 + pick(6));
        return q.sojourn_time();
      }
      default: {
        // P-K waiting time over a random (finite-moment) service law.
        const auto service =
            std::make_shared<Gamma>(uniform(1.0, 5.0),
                                    uniform(2000.0, 8000.0));
        const double rho = uniform(0.2, 0.85);
        const queueing::MG1 q(rho / service->mean(), service);
        return q.waiting_time();
      }
    }
  }

  std::size_t pick(std::size_t n) {
    return static_cast<std::size_t>(rng_.uniform() * static_cast<double>(n)) %
           n;
  }
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * rng_.uniform();
  }

  cosm::Rng rng_;
  std::vector<DistPtr> pool_;
};

TEST(TransformTapeFuzz, RandomTreesBitIdenticalToScalarWalk) {
  const std::vector<Complex> s = probe_points();
  std::vector<Complex> batched(s.size());
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    TreeFuzzer fuzzer(seed);
    const DistPtr tree = fuzzer.build(4);
    const TransformTape tape = TransformTape::compile(tree);
    ASSERT_TRUE(tape.compiled()) << "seed " << seed;
    tape.evaluate(s, batched);
    for (std::size_t i = 0; i < s.size(); ++i) {
      const Complex scalar = tree->laplace(s[i]);
      ASSERT_EQ(scalar.real(), batched[i].real())
          << "seed " << seed << " at s = " << s[i];
      ASSERT_EQ(scalar.imag(), batched[i].imag())
          << "seed " << seed << " at s = " << s[i];
    }
  }
}

TEST(TransformTapeFuzz, RandomTreeCdfManyMatchesScalarCdf) {
  const std::vector<double> ts = {1e-4, 1e-3, 5e-3, 2e-2, 0.1};
  for (std::uint64_t seed = 101; seed <= 120; ++seed) {
    TreeFuzzer fuzzer(seed);
    const DistPtr tree = fuzzer.build(3);
    const TransformTape tape = TransformTape::compile(tree);
    const LaplaceFn lt = [&tree](Complex s) { return tree->laplace(s); };
    const std::vector<double> batch = tape.cdf_many(ts);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      ASSERT_EQ(batch[i], cdf_from_laplace(lt, ts[i]))
          << "seed " << seed << " t = " << ts[i];
    }
  }
}

}  // namespace
}  // namespace cosm::numerics
