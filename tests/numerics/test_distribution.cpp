// Cross-property tests for the concrete distributions: the Laplace
// transform, CDF, moments, and sampler of every distribution must agree
// with each other.  This matters because the model consumes the transforms
// while the simulator consumes the samplers — a mismatch between the two
// silently corrupts every experiment.
#include "numerics/distribution.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "numerics/special.hpp"

namespace cosm::numerics {
namespace {

// All distributions must satisfy L(0) = 1 and L'(0) = -mean; we check the
// derivative with a central difference on the real axis.
class DistributionContractTest
    : public ::testing::TestWithParam<DistPtr> {};

TEST_P(DistributionContractTest, LaplaceAtZeroIsOne) {
  const auto& d = *GetParam();
  const auto l0 = d.laplace({1e-12, 0.0});
  EXPECT_NEAR(l0.real(), 1.0, 1e-6) << d.name();
  EXPECT_NEAR(l0.imag(), 0.0, 1e-6) << d.name();
}

TEST_P(DistributionContractTest, LaplaceDerivativeAtZeroIsMinusMean) {
  const auto& d = *GetParam();
  const double h = 1e-6 / std::max(1.0, d.mean());
  const double lp = d.laplace({h, 0.0}).real();
  const double lm = d.laplace({-h, 0.0}).real();
  const double derivative = (lp - lm) / (2.0 * h);
  EXPECT_NEAR(-derivative, d.mean(), 2e-4 * std::max(1.0, d.mean()))
      << d.name();
}

TEST_P(DistributionContractTest, LaplaceModulusBoundedByOne) {
  const auto& d = *GetParam();
  for (double im : {-40.0, -3.0, 0.5, 7.0, 90.0}) {
    const auto v = d.laplace({0.3, im});
    EXPECT_LE(std::abs(v), 1.0 + 1e-9) << d.name() << " im=" << im;
  }
}

TEST_P(DistributionContractTest, CdfIsMonotoneFromZeroToOne) {
  const auto& d = *GetParam();
  const double scale = std::max(d.mean(), 1e-6);
  double prev = -1e-12;
  for (double frac : {0.01, 0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 20.0}) {
    const double c = d.cdf(frac * scale);
    EXPECT_GE(c, prev - 1e-9) << d.name() << " t=" << frac * scale;
    EXPECT_GE(c, -1e-12) << d.name();
    EXPECT_LE(c, 1.0 + 1e-12) << d.name();
    prev = c;
  }
  EXPECT_GT(d.cdf(50.0 * scale), 0.97) << d.name();
}

TEST_P(DistributionContractTest, SampleMomentsMatchAnalyticMoments) {
  const auto& d = *GetParam();
  Rng rng(20240704);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0) << d.name();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, d.mean(), 0.02 * std::max(d.mean(), 1e-9) + 1e-9)
      << d.name();
  const double m2 = sum_sq / kN;
  if (std::isfinite(d.second_moment())) {
    EXPECT_NEAR(m2, d.second_moment(),
                0.06 * std::max(d.second_moment(), 1e-9) + 1e-9)
        << d.name();
  }
}

TEST_P(DistributionContractTest, SampleQuantilesMatchCdf) {
  const auto& d = *GetParam();
  Rng rng(99);
  constexpr int kN = 100000;
  std::vector<double> samples(kN);
  for (auto& s : samples) s = d.sample(rng);
  std::sort(samples.begin(), samples.end());
  for (double p : {0.25, 0.5, 0.9, 0.99}) {
    const double q = samples[static_cast<std::size_t>(p * (kN - 1))];
    // Empirical p-quantile plugged into the CDF must return ~p.  Degenerate
    // distributions step straight through every level, so allow the jump.
    const double c = d.cdf(q);
    EXPECT_NEAR(c, p, 0.02 + (d.name() == "degenerate" ? 1.0 : 0.0))
        << d.name() << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConcrete, DistributionContractTest,
    ::testing::Values(
        std::make_shared<Degenerate>(0.8),
        std::make_shared<Exponential>(2.5),
        std::make_shared<Gamma>(0.7, 3.0),
        std::make_shared<Gamma>(4.0, 0.5),
        std::make_shared<Gamma>(30.0, 100.0),
        std::make_shared<Uniform>(0.2, 1.7),
        std::make_shared<TruncatedNormal>(5.0, 1.0),
        std::make_shared<TruncatedNormal>(1.0, 0.8),
        std::make_shared<Lognormal>(-0.5, 0.6),
        std::make_shared<Weibull>(1.6, 2.0),
        std::make_shared<Pareto>(3.5, 0.4)),
    [](const ::testing::TestParamInfo<DistPtr>& info) {
      return info.param->name() + "_" + std::to_string(info.index);
    });

TEST(Gamma, CdfMatchesRegularizedIncompleteGamma) {
  const Gamma g(2.5, 4.0);
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(g.cdf(t), gamma_p(2.5, 4.0 * t), 1e-13);
  }
}

TEST(Gamma, QuantileInvertsCdf) {
  const Gamma g(3.0, 1.5);
  for (double p : {0.05, 0.5, 0.95, 0.999}) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-9);
  }
}

TEST(Gamma, FromMeanShape) {
  const Gamma g = Gamma::from_mean_shape(0.02, 4.0);
  EXPECT_NEAR(g.mean(), 0.02, 1e-15);
  EXPECT_NEAR(g.shape(), 4.0, 1e-15);
}

TEST(Gamma, LaplaceClosedForm) {
  const Gamma g(2.0, 3.0);
  // (3 / (3 + s))^2 at s = 1 -> (3/4)^2.
  EXPECT_NEAR(g.laplace({1.0, 0.0}).real(), 0.5625, 1e-12);
}

TEST(Exponential, MemorylessCdf) {
  const Exponential e(4.0);
  EXPECT_NEAR(e.cdf(0.25), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_EQ(e.cdf(-1.0), 0.0);
}

TEST(Degenerate, StepCdf) {
  const Degenerate d(2.0);
  EXPECT_EQ(d.cdf(1.999), 0.0);
  EXPECT_EQ(d.cdf(2.0), 1.0);
  Rng rng(5);
  EXPECT_EQ(d.sample(rng), 2.0);
}

TEST(TruncatedNormal, MassBelowZeroIsRemoved) {
  const TruncatedNormal tn(0.5, 1.0);  // substantial truncation
  EXPECT_EQ(tn.cdf(0.0), 0.0);
  EXPECT_GT(tn.mean(), 0.5);  // truncation shifts the mean up
  EXPECT_NEAR(tn.cdf(1e9), 1.0, 1e-9);
}

TEST(TruncatedNormal, RejectsHopelessTruncation) {
  EXPECT_THROW(TruncatedNormal(-100.0, 1.0), std::invalid_argument);
}

TEST(Pareto, TailIsPolynomial) {
  const Pareto p(2.5, 1.0);
  EXPECT_NEAR(1.0 - p.cdf(10.0), std::pow(0.1, 2.5), 1e-12);
  EXPECT_EQ(p.cdf(0.5), 0.0);  // below the scale
}

TEST(Pareto, InfiniteMomentsSignalled) {
  EXPECT_TRUE(std::isinf(Pareto(0.9, 1.0).mean()));
  EXPECT_TRUE(std::isinf(Pareto(1.5, 1.0).second_moment()));
}

TEST(Distribution, InvalidParametersThrow) {
  EXPECT_THROW(Degenerate(-1.0), std::invalid_argument);
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Gamma(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Uniform(-0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(Lognormal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::numerics
