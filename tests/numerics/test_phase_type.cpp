// Phase-type distribution tests: moment identities, transform/CDF/sampler
// agreement, the balanced-means H2 fit, and a service-law sensitivity
// check through the M/G/1 model.
#include "numerics/phase_type.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "queueing/mg1.hpp"

namespace cosm::numerics {
namespace {

TEST(Erlang, MomentsAndCdf) {
  const Erlang e(4, 100.0);
  EXPECT_NEAR(e.mean(), 0.04, 1e-15);
  EXPECT_NEAR(e.second_moment(), 20.0 / 10000.0, 1e-12);
  // CV^2 = 1/k.
  EXPECT_NEAR(e.variance() / (e.mean() * e.mean()), 0.25, 1e-12);
  // Erlang(1) is exponential.
  const Erlang single(1, 5.0);
  const Exponential exponential(5.0);
  for (double t : {0.05, 0.2, 0.5}) {
    EXPECT_NEAR(single.cdf(t), exponential.cdf(t), 1e-12);
  }
}

TEST(Erlang, TransformMatchesGamma) {
  const Erlang e(3, 50.0);
  const Gamma g(3.0, 50.0);
  for (const auto s : {std::complex<double>(2.0, 0.0),
                       std::complex<double>(10.0, 25.0)}) {
    const auto diff = e.laplace(s) - g.laplace(s);
    EXPECT_LT(std::abs(diff), 1e-12);
  }
}

TEST(Erlang, SamplerMatchesMoments) {
  const Erlang e(5, 200.0);
  Rng rng(3);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = e.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, e.mean(), 0.01 * e.mean());
  EXPECT_NEAR(sum_sq / kN, e.second_moment(), 0.03 * e.second_moment());
}

TEST(HyperExponential, TwoMomentFitHitsTargets) {
  for (double cv2 : {1.5, 2.0, 4.0, 10.0}) {
    const HyperExponential h2 = HyperExponential::two_moment(0.02, cv2);
    EXPECT_NEAR(h2.mean(), 0.02, 1e-12) << cv2;
    EXPECT_NEAR(h2.variance() / (h2.mean() * h2.mean()), cv2, 1e-9) << cv2;
  }
  EXPECT_THROW(HyperExponential::two_moment(0.02, 0.8),
               std::invalid_argument);
}

TEST(HyperExponential, CdfTransformSamplerAgree) {
  const HyperExponential h2 = HyperExponential::two_moment(0.01, 3.0);
  // Transform derivative at 0 ~ -mean.
  const double h = 1e-7;
  const double derivative =
      (h2.laplace({h, 0.0}).real() - h2.laplace({-h, 0.0}).real()) /
      (2.0 * h);
  EXPECT_NEAR(-derivative, h2.mean(), 1e-8);
  // Sampler quantiles vs CDF.
  Rng rng(9);
  std::vector<double> samples(100000);
  for (auto& x : samples) x = h2.sample(rng);
  std::sort(samples.begin(), samples.end());
  for (double p : {0.5, 0.9, 0.99}) {
    const double q = samples[static_cast<std::size_t>(p * 99999)];
    EXPECT_NEAR(h2.cdf(q), p, 0.01) << p;
  }
}

TEST(HyperExponential, Validation) {
  EXPECT_THROW(HyperExponential({}), std::invalid_argument);
  EXPECT_THROW(HyperExponential({{0.5, 1.0}, {0.6, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(HyperExponential({{1.0, 0.0}}), std::invalid_argument);
}

TEST(Shifted, MomentsAndCdf) {
  const Shifted s(0.005, std::make_shared<Exponential>(100.0));
  EXPECT_NEAR(s.mean(), 0.015, 1e-15);
  // E[(d+X)^2] with d = 5 ms, X ~ Exp(100).
  EXPECT_NEAR(s.second_moment(),
              0.005 * 0.005 + 2 * 0.005 * 0.01 + 2.0 / 10000.0, 1e-12);
  EXPECT_EQ(s.cdf(0.004), 0.0);
  EXPECT_NEAR(s.cdf(0.015), 1.0 - std::exp(-1.0), 1e-12);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_GE(s.sample(rng), 0.005);
}

TEST(ServiceLawSensitivity, MatchedMomentsGiveMatchedPkWait) {
  // The P–K *mean* wait depends only on the first two moments, so Gamma,
  // Erlang-matched and H2-matched service laws must give identical mean
  // waits — while their waiting-time *distributions* differ.  This is
  // the core reason the paper needs distributions, not just moments.
  const double rate = 30.0;
  const double mean = 0.02;
  const Gamma gamma(4.0, 4.0 / mean);             // cv2 = 0.25
  const Erlang erlang(4, 4.0 / mean);             // same two moments
  const queueing::MG1 q_gamma(rate, std::make_shared<Gamma>(gamma));
  const queueing::MG1 q_erlang(rate, std::make_shared<Erlang>(erlang));
  EXPECT_NEAR(q_gamma.mean_waiting_time(), q_erlang.mean_waiting_time(),
              1e-12);
  // Same first two moments but heavier service law => different waiting
  // CDF in the tail for an H2 at cv2 = 4.
  const HyperExponential h2 = HyperExponential::two_moment(mean, 4.0);
  const queueing::MG1 q_h2(rate, std::make_shared<HyperExponential>(h2));
  EXPECT_GT(q_h2.mean_waiting_time(), q_gamma.mean_waiting_time());
  const auto w_gamma = q_gamma.waiting_time();
  const auto w_h2 = q_h2.waiting_time();
  EXPECT_LT(w_h2->cdf(0.1), w_gamma->cdf(0.1) + 1e-9);
}

}  // namespace
}  // namespace cosm::numerics
