// Tests for the grid-density cross-check path: discretization must
// preserve mass and moments, FFT grid convolution must agree with the
// closed-form convolution (Gamma + Gamma), and the grid CDF must agree
// with Laplace inversion on a model-like transform chain.
#include "numerics/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "numerics/compose.hpp"

namespace cosm::numerics {
namespace {

TEST(GridDensity, DiscretizationPreservesMassAndMean) {
  const Gamma g(2.8, 250.0);  // mean 0.0112
  const GridDensity grid = GridDensity::discretize(g, 1e-4, 0.3);
  EXPECT_NEAR(grid.total_mass(), 1.0, 1e-9);
  EXPECT_NEAR(grid.mean(), g.mean(), 2e-4);
}

TEST(GridDensity, CdfMatchesSourceDistribution) {
  const Gamma g(2.0, 100.0);
  const GridDensity grid = GridDensity::discretize(g, 5e-5, 0.5);
  for (double t : {0.005, 0.02, 0.05, 0.1}) {
    EXPECT_NEAR(grid.cdf(t), g.cdf(t), 2e-3) << t;
  }
  EXPECT_EQ(grid.cdf(-1.0), 0.0);
  EXPECT_NEAR(grid.cdf(10.0), 1.0, 1e-9);
}

TEST(GridDensity, AtomAtZeroLandsInFirstBin) {
  const DistPtr mix =
      atom_at_zero_mixture(0.25, std::make_shared<Gamma>(2.0, 50.0));
  const GridDensity grid = GridDensity::discretize(*mix, 1e-3, 1.0);
  EXPECT_GE(grid.mass()[0], 0.75);
}

TEST(GridDensity, QuantileInvertsCdf) {
  const Exponential e(10.0);
  const GridDensity grid = GridDensity::discretize(e, 1e-4, 3.0);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    const double q = grid.quantile(p);
    EXPECT_NEAR(e.cdf(q), p, 2e-3) << p;
  }
}

TEST(GridDensity, ConvolutionMatchesClosedForm) {
  // Gamma(a1,l) (*) Gamma(a2,l) = Gamma(a1+a2,l).
  const Gamma g1(1.5, 100.0);
  const Gamma g2(2.5, 100.0);
  const Gamma sum(4.0, 100.0);
  const double dt = 2e-4;
  const GridDensity grid1 = GridDensity::discretize(g1, dt, 1.0);
  const GridDensity grid2 = GridDensity::discretize(g2, dt, 1.0);
  const GridDensity conv = grid1.convolve_with(grid2, 10000);
  EXPECT_NEAR(conv.total_mass(), 1.0, 1e-8);
  for (double t : {0.02, 0.04, 0.08, 0.15}) {
    EXPECT_NEAR(conv.cdf(t), sum.cdf(t), 5e-3) << t;
  }
}

TEST(GridDensity, ConvolutionAgreesWithLaplaceInversion) {
  // The same union-operation-style chain evaluated through both prediction
  // paths must agree: (parse * index-mixture * data) CDF via grid
  // convolution vs via Euler inversion of the transform product.
  const auto parse = std::make_shared<Degenerate>(0.002);
  const auto index = atom_at_zero_mixture(0.4, std::make_shared<Gamma>(2.0, 150.0));
  const auto data = std::make_shared<Gamma>(1.8, 120.0);
  const Convolution chain({parse, index, data});

  const double dt = 1e-4;
  const GridDensity grid = GridDensity::discretize(*parse, dt, 0.8)
                               .convolve_with(GridDensity::discretize(
                                                  *index, dt, 0.8),
                                              16000)
                               .convolve_with(GridDensity::discretize(
                                                  *data, dt, 0.8),
                                              16000);
  for (double t : {0.01, 0.03, 0.06, 0.12}) {
    EXPECT_NEAR(grid.cdf(t), chain.cdf(t), 5e-3) << t;
  }
}

TEST(GridDensity, MixWeightsComponents) {
  const GridDensity a(0.1, {1.0, 0.0});
  const GridDensity b(0.1, {0.0, 0.0, 1.0});
  const GridDensity mix = a.mix_with(b, 0.25);
  EXPECT_EQ(mix.bins(), 3u);
  EXPECT_NEAR(mix.mass()[0], 0.25, 1e-15);
  EXPECT_NEAR(mix.mass()[2], 0.75, 1e-15);
  EXPECT_NEAR(mix.total_mass(), 1.0, 1e-15);
}

TEST(GridDensity, ConvolutionTruncationFoldsOverflow) {
  const GridDensity a(1.0, {0.5, 0.5});
  const GridDensity b(1.0, {0.5, 0.5});
  const GridDensity c = a.convolve_with(b, 2);
  EXPECT_EQ(c.bins(), 2u);
  EXPECT_NEAR(c.total_mass(), 1.0, 1e-12);
}

TEST(GridDensity, Validation) {
  EXPECT_THROW(GridDensity(0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(GridDensity(0.1, {}), std::invalid_argument);
  const GridDensity a(0.1, {1.0});
  const GridDensity b(0.2, {1.0});
  EXPECT_THROW(a.convolve_with(b, 10), std::invalid_argument);
  EXPECT_THROW(a.mix_with(b, 0.5), std::invalid_argument);
  EXPECT_THROW(a.quantile(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::numerics
