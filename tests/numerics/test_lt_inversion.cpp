// Validation of the three Laplace-transform inversion algorithms against
// distributions with closed-form CDFs, plus cross-algorithm agreement on a
// transform that only exists in LT space (an M/G/1-style rational form).
#include "numerics/lt_inversion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/distribution.hpp"
#include "numerics/special.hpp"

namespace cosm::numerics {
namespace {

// Known pair: f(t) = rate * e^{-rate t}, L[f](s) = rate / (rate + s).
TEST(EulerInversion, RecoversExponentialDensity) {
  const double rate = 3.0;
  const LaplaceFn lt = [rate](std::complex<double> s) {
    return rate / (rate + s);
  };
  for (double t : {0.05, 0.2, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(invert_euler(lt, t), rate * std::exp(-rate * t), 1e-8) << t;
  }
}

TEST(TalbotInversion, RecoversExponentialDensity) {
  const double rate = 3.0;
  const LaplaceFn lt = [rate](std::complex<double> s) {
    return rate / (rate + s);
  };
  for (double t : {0.05, 0.2, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(invert_talbot(lt, t), rate * std::exp(-rate * t), 1e-8) << t;
  }
}

TEST(GaverStehfest, RecoversExponentialDensity) {
  const double rate = 3.0;
  const RealLaplaceFn lt = [rate](double s) { return rate / (rate + s); };
  for (double t : {0.05, 0.2, 0.5, 1.0, 2.0}) {
    // Gaver–Stehfest in doubles gives ~5 digits; that is its job here.
    EXPECT_NEAR(invert_gaver_stehfest(lt, t), rate * std::exp(-rate * t),
                1e-4)
        << t;
  }
}

struct CdfCase {
  const char* label;
  DistPtr dist;
  // Smooth transforms invert to ~1e-8; densities with jumps (uniform) hit
  // the inherent Gibbs plateau of contour inversion near the kinks.
  double tol;
};

class CdfInversionTest : public ::testing::TestWithParam<CdfCase> {};

TEST_P(CdfInversionTest, MatchesClosedFormCdf) {
  const auto& dist = *GetParam().dist;
  const LaplaceFn lt = [&dist](std::complex<double> s) {
    return dist.laplace(s);
  };
  const double scale = dist.mean();
  for (double frac : {0.1, 0.25, 0.5, 1.0, 1.5, 2.5, 4.0, 6.0}) {
    const double t = frac * scale;
    EXPECT_NEAR(cdf_from_laplace(lt, t), dist.cdf(t), GetParam().tol)
        << GetParam().label << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClosedFormDistributions, CdfInversionTest,
    ::testing::Values(
        CdfCase{"exp_fast", std::make_shared<Exponential>(100.0), 2e-7},
        CdfCase{"exp_slow", std::make_shared<Exponential>(0.5), 2e-7},
        CdfCase{"gamma_skewed", std::make_shared<Gamma>(0.6, 50.0), 2e-7},
        CdfCase{"gamma_disklike", std::make_shared<Gamma>(2.8, 250.0), 2e-7},
        CdfCase{"gamma_sharp", std::make_shared<Gamma>(40.0, 2000.0), 2e-7},
        CdfCase{"uniform", std::make_shared<Uniform>(0.001, 0.009), 5e-4}),
    [](const ::testing::TestParamInfo<CdfCase>& info) {
      return info.param.label;
    });

TEST(CdfInversion, HandlesAtomAtZeroMixtures) {
  // Cache-hit atoms leave a jump at t = 0; for t > 0 the inversion must
  // still track the continuous part shifted by the atom mass.
  const double miss = 0.3;
  const Gamma disk(2.0, 100.0);
  const LaplaceFn lt = [&](std::complex<double> s) {
    return (1.0 - miss) + miss * disk.laplace(s);
  };
  for (double t : {0.005, 0.02, 0.05}) {
    const double expected = (1.0 - miss) + miss * disk.cdf(t);
    EXPECT_NEAR(cdf_from_laplace(lt, t), expected, 1e-6) << t;
  }
}

TEST(CdfInversion, NonPositiveTimeIsZero) {
  const Exponential e(1.0);
  const LaplaceFn lt = [&e](std::complex<double> s) { return e.laplace(s); };
  EXPECT_EQ(cdf_from_laplace(lt, 0.0), 0.0);
  EXPECT_EQ(cdf_from_laplace(lt, -1.0), 0.0);
}

TEST(CrossAlgorithm, AgreeOnMG1StyleTransform) {
  // W(s) = (1 - rho) s / (r L_B(s) + s - r): the P–K waiting-time CDF of an
  // M/G/1 queue with Gamma service.  No closed-form CDF exists — all three
  // algorithms must agree with each other.
  const double r = 30.0;
  const Gamma service(2.0, 100.0);  // mean 0.02, rho = 0.6
  const double rho = r * service.mean();
  const LaplaceFn w = [&](std::complex<double> s) {
    return (1.0 - rho) * s / (r * service.laplace(s) + s - r);
  };
  const LaplaceFn w_cdf = [&w](std::complex<double> s) { return w(s) / s; };
  const RealLaplaceFn w_cdf_real = [&w](double s) {
    return w({s, 0.0}).real() / s;
  };
  for (double t : {0.01, 0.03, 0.08, 0.2}) {
    const double euler = invert_euler(w_cdf, t);
    const double talbot = invert_talbot(w_cdf, t);
    const double gs = invert_gaver_stehfest(w_cdf_real, t);
    EXPECT_NEAR(euler, talbot, 1e-7) << t;
    EXPECT_NEAR(euler, gs, 5e-4) << t;
    EXPECT_GE(euler, 1.0 - rho - 1e-6) << t;  // atom at zero: P[W=0] = 1-rho
    EXPECT_LE(euler, 1.0 + 1e-9) << t;
  }
}

TEST(QuantileFromLaplace, InvertsExponentialQuantiles) {
  const Exponential e(2.0);
  const LaplaceFn lt = [&e](std::complex<double> s) { return e.laplace(s); };
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    const double expected = -std::log(1.0 - p) / 2.0;
    EXPECT_NEAR(quantile_from_laplace(lt, p, e.mean()), expected, 1e-6) << p;
  }
}

TEST(QuantileFromLaplace, RejectsBadLevels) {
  const Exponential e(1.0);
  const LaplaceFn lt = [&e](std::complex<double> s) { return e.laplace(s); };
  EXPECT_THROW(quantile_from_laplace(lt, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(quantile_from_laplace(lt, 1.0, 1.0), std::invalid_argument);
}

TEST(Inversion, ParameterValidation) {
  const LaplaceFn lt = [](std::complex<double> s) { return 1.0 / (1.0 + s); };
  EXPECT_THROW(invert_euler(lt, 0.0), std::invalid_argument);
  EXPECT_THROW(invert_euler(lt, 1.0, 50), std::invalid_argument);
  EXPECT_THROW(invert_talbot(lt, -1.0), std::invalid_argument);
  const RealLaplaceFn rlt = [](double s) { return 1.0 / (1.0 + s); };
  EXPECT_THROW(invert_gaver_stehfest(rlt, 1.0, 13), std::invalid_argument);
  EXPECT_THROW(invert_gaver_stehfest(rlt, 1.0, 20), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::numerics
