// Backend model tests (Sec. III-B): the union operation's moments, the
// N_be = 1 M/G/1 path, the N_be > 1 M/M/1/K substitution, and the ODOPR
// baseline rewrite.
#include "core/backend_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "queueing/mg1.hpp"

namespace cosm::core {
namespace {

using numerics::Degenerate;
using numerics::DistPtr;
using numerics::Gamma;

DeviceParams typical_params() {
  DeviceParams params;
  params.arrival_rate = 30.0;
  params.data_read_rate = 36.0;  // p = 0.2 extra reads per request
  params.index_miss_ratio = 0.3;
  params.meta_miss_ratio = 0.3;
  params.data_miss_ratio = 0.7;
  params.index_disk = std::make_shared<Gamma>(3.0, 300.0);    // 10 ms
  params.meta_disk = std::make_shared<Gamma>(2.5, 312.5);     //  8 ms
  params.data_disk = std::make_shared<Gamma>(2.8, 233.33);    // 12 ms
  params.backend_parse = std::make_shared<Degenerate>(0.0005);
  params.processes = 1;
  return params;
}

TEST(BackendModel, UnionServiceMeanMatchesPaperFormula) {
  const BackendModel model(typical_params());
  // B̄ = parse + m_i b_i + m_m b_m + (1 + p) m_d b_d.
  const double expected = 0.0005 + 0.3 * 0.010 + 0.3 * 0.008 +
                          1.2 * 0.7 * (2.8 / 233.33);
  EXPECT_NEAR(model.union_service()->mean(), expected, 1e-9);
  EXPECT_NEAR(model.extra_data_reads(), 0.2, 1e-12);
}

TEST(BackendModel, ResponseTimeIsEq1Convolution) {
  const BackendModel model(typical_params());
  // S̄_be = W̄ + parse + index + meta + data (single data read in Eq. 1).
  const double op_mean = 0.0005 + 0.3 * 0.010 + 0.3 * 0.008 +
                         0.7 * (2.8 / 233.33);
  EXPECT_NEAR(model.response_time()->mean(),
              model.waiting_time()->mean() + op_mean, 1e-9);
  // CDF is a proper distribution function at the SLA points.
  double prev = 0.0;
  for (double sla : {0.010, 0.050, 0.100, 0.400}) {
    const double c = model.response_time()->cdf(sla);
    EXPECT_GE(c, prev - 1e-9);
    EXPECT_LE(c, 1.0 + 1e-9);
    prev = c;
  }
  EXPECT_GT(model.response_time()->cdf(1.0), 0.999);
}

TEST(BackendModel, MatchesPlainMG1WhenNoExtraReads) {
  // With r_data = r the union operation is an ordinary convolution and
  // the model must coincide with queueing::MG1 on the same service chain.
  DeviceParams params = typical_params();
  params.data_read_rate = params.arrival_rate;
  const BackendModel model(params);
  const queueing::MG1 reference(
      params.arrival_rate, model.union_service());
  EXPECT_NEAR(model.waiting_time()->mean(),
              reference.mean_waiting_time(), 1e-12);
  for (double t : {0.01, 0.05, 0.1}) {
    EXPECT_NEAR(model.waiting_time()->cdf(t),
                reference.waiting_time()->cdf(t), 1e-9)
        << t;
  }
}

TEST(BackendModel, UtilizationGrowsWithLoadAndRejectsOverload) {
  DeviceParams params = typical_params();
  const BackendModel light(params);
  params.arrival_rate = 55.0;
  params.data_read_rate = 66.0;
  const BackendModel heavy(params);
  EXPECT_GT(heavy.utilization(), light.utilization());
  params.arrival_rate = 80.0;  // rho > 1 for this service mix
  params.data_read_rate = 96.0;
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
}

TEST(BackendModel, OdoprBaselineIsOptimistic) {
  const BackendModel full(typical_params());
  const BackendModel odopr(typical_params(), {.odopr = true});
  // ODOPR ignores index/meta/extra-read disk work entirely.
  EXPECT_LT(odopr.union_service()->mean(), full.union_service()->mean());
  EXPECT_NEAR(odopr.extra_data_reads(), 0.0, 1e-12);
  EXPECT_NEAR(odopr.effective_index()->mean(), 0.0, 1e-12);
  EXPECT_NEAR(odopr.effective_meta()->mean(), 0.0, 1e-12);
  // It therefore predicts more requests under any SLA.
  for (double sla : {0.010, 0.050, 0.100}) {
    EXPECT_GE(odopr.response_time()->cdf(sla),
              full.response_time()->cdf(sla) - 1e-9)
        << sla;
  }
}

TEST(BackendModel, MultiProcessUsesMM1KDiskSubstitution) {
  DeviceParams params = typical_params();
  params.arrival_rate = 50.0;
  params.data_read_rate = 60.0;
  params.processes = 16;
  const BackendModel model(params);
  // Disk arrival rate: (m_i + m_m) r + m_d r_data.
  EXPECT_NEAR(model.disk_arrival_rate(), 0.3 * 50 + 0.3 * 50 + 0.7 * 60,
              1e-9);
  // Aggregate mean service: rate-weighted mix of the three kinds.
  const double expected_mean =
      (0.3 * 50 * 0.010 + 0.3 * 50 * 0.008 + 0.7 * 60 * (2.8 / 233.33)) /
      model.disk_arrival_rate();
  EXPECT_NEAR(model.disk_mean_service(), expected_mean, 1e-9);
  // All three effective operation distributions collapse to the same
  // M/M/1/K sojourn mixture mean: m_k * S̄_diskN.
  const double sojourn_mean = model.effective_index()->mean() / 0.3;
  EXPECT_NEAR(model.effective_meta()->mean() / 0.3, sojourn_mean, 1e-9);
  EXPECT_NEAR(model.effective_data()->mean() / 0.7, sojourn_mean, 1e-9);
  // The M/M/1/K sojourn exceeds the raw mean service (queueing).
  EXPECT_GT(sojourn_mean, expected_mean);
  EXPECT_TRUE(model.stable());
  EXPECT_GT(model.response_time()->cdf(0.5), 0.99);
}

TEST(BackendModel, MultiProcessModelHasFiniteMoments) {
  // Regression: the M/M/1/K sojourn used to carry a NaN second moment,
  // which poisoned the P-K mean and every mean/quantile query for
  // N_be > 1 configurations.
  DeviceParams params = typical_params();
  params.arrival_rate = 40.0;
  params.data_read_rate = 48.0;
  params.processes = 16;
  const BackendModel model(params);
  EXPECT_TRUE(std::isfinite(model.union_service()->second_moment()));
  EXPECT_TRUE(std::isfinite(model.waiting_time()->mean()));
  EXPECT_TRUE(std::isfinite(model.response_time()->mean()));
  const BackendModel exact(
      params, {.disk_queue = core::ModelOptions::DiskQueue::kMG1K});
  EXPECT_TRUE(std::isfinite(exact.response_time()->mean()));
}

TEST(BackendModel, SixteenProcessesCarryMoreLoadThanOne) {
  // The S16 scenario exists because N_be = 16 keeps the device stable at
  // rates impossible for S1: the union-operation queue of a single process
  // saturates just above r = 63 for this service mix, while 16 processes
  // share the load (the disk itself is not yet saturated).
  DeviceParams params = typical_params();
  params.arrival_rate = 65.0;
  params.data_read_rate = 78.0;
  params.processes = 1;
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
  params.processes = 16;
  EXPECT_NO_THROW(BackendModel{params});
}

TEST(BackendModel, ExactDiskQueueVariantIsLessPessimistic) {
  // With Gamma (CV^2 < 1) disks, the M/M/1/K substitution overestimates
  // disk sojourns, so the kMG1K variant must predict a higher percentile
  // meeting any SLA; for N_be = 1 the option must be a no-op.
  DeviceParams params = typical_params();
  params.arrival_rate = 50.0;
  params.data_read_rate = 60.0;
  params.processes = 16;
  const BackendModel paper(params);
  const BackendModel exact(
      params, {.disk_queue = core::ModelOptions::DiskQueue::kMG1K});
  EXPECT_LT(exact.effective_data()->mean(), paper.effective_data()->mean());
  for (double sla : {0.050, 0.100}) {
    EXPECT_GE(exact.response_time()->cdf(sla),
              paper.response_time()->cdf(sla) - 1e-9)
        << sla;
  }
  // N_be = 1: no disk-queue substitution at all, options coincide.
  params.processes = 1;
  params.arrival_rate = 30.0;
  params.data_read_rate = 36.0;
  const BackendModel one_paper(params);
  const BackendModel one_exact(
      params, {.disk_queue = core::ModelOptions::DiskQueue::kMG1K});
  EXPECT_NEAR(one_paper.response_time()->cdf(0.05),
              one_exact.response_time()->cdf(0.05), 1e-12);
}

TEST(BackendModel, ParameterValidation) {
  DeviceParams params = typical_params();
  params.data_read_rate = 10.0;  // < arrival rate
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
  params = typical_params();
  params.index_miss_ratio = 1.5;
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
  params = typical_params();
  params.index_disk = nullptr;
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
  params = typical_params();
  params.processes = 0;
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
}

}  // namespace
}  // namespace cosm::core
