// Model side of the tiering extension: the TieredService composition in
// BackendModel, TierOptions validation, prediction-cache fingerprinting
// of tiered parameters, and the tier-capacity what-if sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/backend_model.hpp"
#include "core/system_model.hpp"
#include "core/whatif.hpp"

namespace cosm::core {
namespace {

using numerics::Degenerate;
using numerics::DistPtr;
using numerics::Gamma;

DeviceParams tiered_params(double hit_ratio) {
  DeviceParams params;
  params.arrival_rate = 30.0;
  params.data_read_rate = 36.0;
  params.index_miss_ratio = 0.3;
  params.meta_miss_ratio = 0.3;
  params.data_miss_ratio = 0.7;
  params.index_disk = std::make_shared<Gamma>(3.0, 300.0);
  params.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
  params.data_disk = std::make_shared<Gamma>(2.8, 233.33);
  params.backend_parse = std::make_shared<Degenerate>(0.0005);
  params.processes = 1;
  params.tier.enabled = true;
  params.tier.hit_ratio = hit_ratio;
  params.tier.read_service = std::make_shared<Gamma>(4.0, 4000.0);  // 1 ms
  params.tier.write_service = std::make_shared<Gamma>(3.0, 2000.0);
  return params;
}

SystemParams tiered_system(double hit_ratio, unsigned processes) {
  SystemParams params;
  params.frontend.arrival_rate = 30.0;
  params.frontend.processes = 2;
  params.frontend.frontend_parse = std::make_shared<Degenerate>(0.001);
  DeviceParams device = tiered_params(hit_ratio);
  device.processes = processes;
  params.devices.push_back(device);
  return params;
}

TEST(TierModel, ZeroHitRatioMatchesUntieredModel) {
  // h = 0 routes every data miss to the capacity disk: the tiered tree
  // must predict exactly what the untiered one does.
  DeviceParams untiered = tiered_params(0.0);
  untiered.tier = TierOptions{};
  const BackendModel baseline(untiered);
  const BackendModel tiered(tiered_params(0.0));
  EXPECT_DOUBLE_EQ(tiered.response_time()->mean(),
                   baseline.response_time()->mean());
  for (double sla : {0.020, 0.060, 0.150}) {
    EXPECT_DOUBLE_EQ(tiered.response_tape().cdf(sla),
                     baseline.response_tape().cdf(sla));
  }
}

TEST(TierModel, HigherHitRatioImprovesPercentiles) {
  double last = 0.0;
  for (double h : {0.0, 0.4, 0.8}) {
    const BackendModel model(tiered_params(h));
    const double percentile = model.response_tape().cdf(0.060);
    EXPECT_GT(percentile, last);
    last = percentile;
  }
}

TEST(TierModel, FullHitRatioReplacesDataReadsWithSsd) {
  // h = 1: the data branch mean is the SSD service mean (times the cache
  // miss ratio), independent of the capacity-disk data distribution.
  const BackendModel model(tiered_params(1.0));
  const double expected_op = 0.0005 + 0.3 * 0.010 + 0.3 * 0.008 +
                             1.2 * 0.7 * 0.001;
  EXPECT_NEAR(model.union_service()->mean(), expected_op, 1e-6);
}

TEST(TierModel, SharedSsdQueueKicksInWithMultipleProcesses) {
  // With N_be > 1 the SSD gets its own finite-queue substitution, so its
  // effective service is slower than the raw SSD law — but a busy tier
  // must still beat the untiered disk path at the same load.
  const SystemModel untiered(tiered_system(0.0, 4));
  const SystemModel tiered(tiered_system(0.7, 4));
  EXPECT_GT(tiered.predict_sla_percentile(0.060),
            untiered.predict_sla_percentile(0.060));
}

TEST(TierModel, FingerprintSeparatesTierParameters) {
  // The prediction cache must not serve a tiered build for an untiered
  // request (or for a different hit ratio).
  PredictionCache cache;
  const PredictOptions predict{1, &cache};
  const SystemModel a(tiered_system(0.5, 1), {}, predict);
  EXPECT_EQ(cache.backends.stats().misses, 1u);
  const SystemModel b(tiered_system(0.6, 1), {}, predict);
  EXPECT_EQ(cache.backends.stats().misses, 2u);  // new tier => new build
  SystemParams untiered = tiered_system(0.6, 1);
  untiered.devices[0].tier = TierOptions{};
  const SystemModel c(untiered, {}, predict);
  EXPECT_EQ(cache.backends.stats().misses, 3u);  // tier off => new build
  const SystemModel twin(tiered_system(0.6, 1), {}, predict);
  EXPECT_EQ(cache.backends.stats().misses, 3u);  // identical tier => hit
  EXPECT_DOUBLE_EQ(twin.predict_sla_percentile(0.060),
                   b.predict_sla_percentile(0.060));
}

TEST(TierModel, ValidationRejectsBadTierOptions) {
  DeviceParams params = tiered_params(0.5);
  params.tier.hit_ratio = 1.5;
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
  params = tiered_params(0.5);
  params.tier.read_service = nullptr;
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
  params = tiered_params(0.5);
  params.tier.write_service = nullptr;  // required with promote_on_read
  EXPECT_THROW(BackendModel{params}, std::invalid_argument);
  params.tier.promote_on_read = false;  // ...but only then
  EXPECT_NO_THROW(BackendModel{params});
}

TEST(TierWhatIf, SweepAndMinCapacityPickSmallestCompliantTier) {
  const TierFactory factory = [](const TierCandidate& candidate) {
    return tiered_system(candidate.hit_ratio, 1);
  };
  // Hit ratios as a capacity-planning curve (monotone in capacity, the
  // way calibration::predict_tier_hit_ratio produces them).
  const std::vector<TierCandidate> candidates = {
      {0, 0.0}, {1024, 0.35}, {4096, 0.65}, {16384, 0.9}};
  const SlaTarget target{0.060, 0.93};
  const auto points = tier_capacity_sweep(factory, candidates, target);
  ASSERT_EQ(points.size(), candidates.size());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].percentile, points[i - 1].percentile);
  }
  const auto best = min_tier_capacity_for(factory, candidates, target);
  ASSERT_TRUE(best.has_value());
  // The smallest compliant capacity, not merely the best percentile.
  for (const auto& point : points) {
    if (point.meets_target) {
      EXPECT_EQ(best->candidate.capacity_chunks,
                point.candidate.capacity_chunks);
      break;
    }
  }
  // An unreachable target reports nullopt.
  const SlaTarget impossible{0.0001, 0.999};
  EXPECT_FALSE(
      min_tier_capacity_for(factory, candidates, impossible).has_value());
}

}  // namespace
}  // namespace cosm::core
