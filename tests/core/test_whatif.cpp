// What-if analysis tests: the searches must agree with brute-force
// evaluation of the underlying model, and degrade gracefully at the
// overload boundary.
#include "core/whatif.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace cosm::core {
namespace {

using numerics::Degenerate;
using numerics::Gamma;

SystemParams even_cluster(double total_rate, unsigned devices) {
  SystemParams params;
  params.frontend.arrival_rate = total_rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse = std::make_shared<Degenerate>(0.8e-3);
  for (unsigned d = 0; d < devices; ++d) {
    DeviceParams device;
    device.arrival_rate = total_rate / devices;
    device.data_read_rate = device.arrival_rate * 1.2;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = std::make_shared<Gamma>(3.0, 300.0);
    device.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
    device.data_disk = std::make_shared<Gamma>(2.8, 233.33);
    device.backend_parse = std::make_shared<Degenerate>(0.5e-3);
    device.processes = 1;
    params.devices.push_back(device);
  }
  return params;
}

const ClusterFactory kFactory = [](double rate, unsigned devices) {
  return even_cluster(rate, devices);
};

TEST(SlaTarget, Validation) {
  EXPECT_THROW(SlaTarget({.sla = 0.0}).validate(), std::invalid_argument);
  EXPECT_THROW(SlaTarget({.sla = 0.1, .percentile = 1.0}).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(SlaTarget({.sla = 0.1, .percentile = 0.95}).validate());
}

TEST(MeetsTarget, OverloadCountsAsMiss) {
  const SlaTarget target{.sla = 0.1, .percentile = 0.9};
  EXPECT_TRUE(meets_target(even_cluster(80.0, 4), target));
  // 400 req/s over 4 devices saturates the union queue: no exception,
  // just "not met".
  EXPECT_FALSE(meets_target(even_cluster(400.0, 4), target));
}

TEST(MinDevicesFor, MatchesBruteForce) {
  const SlaTarget target{.sla = 0.1, .percentile = 0.95};
  const double rate = 300.0;
  const auto result = min_devices_for(kFactory, rate, target, 2, 24);
  ASSERT_TRUE(result.has_value());
  // Brute force cross-check.
  unsigned expected = 0;
  for (unsigned devices = 2; devices <= 24; ++devices) {
    if (meets_target(kFactory(rate, devices), target)) {
      expected = devices;
      break;
    }
  }
  EXPECT_EQ(*result, expected);
  // One fewer device must miss the target.
  EXPECT_FALSE(meets_target(kFactory(rate, *result - 1), target));
}

TEST(MinDevicesFor, ReturnsNulloptWhenImpossible) {
  const SlaTarget harsh{.sla = 0.001, .percentile = 0.99};
  EXPECT_FALSE(min_devices_for(kFactory, 300.0, harsh, 1, 16).has_value());
}

TEST(MaxAdmissionRate, BracketsTheComplianceBoundary) {
  const SlaTarget target{.sla = 0.05, .percentile = 0.9};
  const double threshold =
      max_admission_rate(kFactory, 4, target, 500.0, 0.25);
  ASSERT_GT(threshold, 0.0);
  ASSERT_LT(threshold, 500.0);
  EXPECT_TRUE(meets_target(kFactory(threshold - 0.5, 4), target));
  EXPECT_FALSE(meets_target(kFactory(threshold + 1.0, 4), target));
}

TEST(MaxAdmissionRate, ReturnsLimitWhenAlwaysCompliant) {
  const SlaTarget lax{.sla = 5.0, .percentile = 0.5};
  EXPECT_EQ(max_admission_rate(kFactory, 8, lax, 100.0), 100.0);
}

TEST(MaxAdmissionRate, ReturnsZeroWhenNeverCompliant) {
  const SlaTarget impossible{.sla = 1e-6, .percentile = 0.99};
  EXPECT_EQ(max_admission_rate(kFactory, 4, impossible, 100.0), 0.0);
}

TEST(ElasticSchedule, TracksTheLoadCurve) {
  const SlaTarget target{.sla = 0.1, .percentile = 0.95};
  const std::vector<double> curve = {60.0, 150.0, 300.0, 150.0};
  const auto schedule = elastic_schedule(kFactory, curve, target, 24);
  ASSERT_EQ(schedule.size(), 4u);
  for (const auto& entry : schedule) ASSERT_TRUE(entry.has_value());
  // More load never needs fewer devices; the symmetric curve gives a
  // symmetric schedule.
  EXPECT_LE(*schedule[0], *schedule[1]);
  EXPECT_LE(*schedule[1], *schedule[2]);
  EXPECT_EQ(*schedule[1], *schedule[3]);
}

TEST(SlaMissContributions, BlamesTheSlowAndHotDevices) {
  SystemParams params = even_cluster(120.0, 4);
  // Device 2 hot (double traffic), device 3 degraded (slow disk).
  params.devices[2].arrival_rate *= 2.0;
  params.devices[2].data_read_rate *= 2.0;
  params.frontend.arrival_rate += 30.0;
  params.devices[3].data_disk = std::make_shared<Gamma>(2.8, 116.7);
  const SystemModel model(params);
  const auto blame = sla_miss_contributions(model, 0.1);
  ASSERT_EQ(blame.size(), 4u);
  // Contributions sum to 1 and are descending.
  double total = 0.0;
  for (std::size_t i = 0; i < blame.size(); ++i) {
    total += blame[i].second;
    if (i > 0) {
      EXPECT_LE(blame[i].second, blame[i - 1].second);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The two culprits outrank the two healthy devices.
  EXPECT_TRUE(blame[0].first == 2 || blame[0].first == 3);
  EXPECT_TRUE(blame[1].first == 2 || blame[1].first == 3);
}

TEST(DegradedWhatIf, ScenarioValidation) {
  const SystemParams healthy = even_cluster(80.0, 4);
  DegradedScenario bad;
  bad.slow_device = 99;
  EXPECT_THROW(degrade(healthy, bad), std::invalid_argument);
  bad = {};
  bad.service_inflation = 0.5;  // < 1 is a speedup, not a degradation
  EXPECT_THROW(degrade(healthy, bad), std::invalid_argument);
  bad = {};
  bad.retry_rate_factor = std::nan("");
  EXPECT_THROW(degrade(healthy, bad), std::invalid_argument);
  bad = {};
  bad.slow_device = 1;
  bad.failed_device = 1;
  EXPECT_THROW(degrade(healthy, bad), std::invalid_argument);
}

TEST(DegradedWhatIf, SlowDeviceLowersOnlyItsCompliance) {
  const SystemParams healthy = even_cluster(80.0, 4);
  DegradedScenario scenario;
  scenario.slow_device = 2;
  scenario.service_inflation = 3.0;
  const SystemParams degraded = degrade(healthy, scenario);
  ASSERT_EQ(degraded.devices.size(), 4u);
  EXPECT_NEAR(degraded.devices[2].data_disk->mean(),
              3.0 * healthy.devices[2].data_disk->mean(), 1e-12);
  const SystemModel healthy_model(healthy);
  const SystemModel degraded_model(degraded);
  // System-wide compliance drops, driven by device 2 alone.
  EXPECT_LT(degraded_model.predict_sla_percentile(0.1),
            healthy_model.predict_sla_percentile(0.1));
  EXPECT_LT(degraded_model.predict_sla_percentile_device(2, 0.1),
            healthy_model.predict_sla_percentile_device(2, 0.1) - 0.05);
  EXPECT_NEAR(degraded_model.predict_sla_percentile_device(0, 0.1),
              healthy_model.predict_sla_percentile_device(0, 0.1), 1e-6);
}

TEST(DegradedWhatIf, FailedDeviceRedistributesItsTraffic) {
  const SystemParams healthy = even_cluster(80.0, 4);
  DegradedScenario scenario;
  scenario.failed_device = 1;
  const SystemParams degraded = degrade(healthy, scenario);
  ASSERT_EQ(degraded.devices.size(), 3u);
  double total_rate = 0.0;
  for (const auto& device : degraded.devices) {
    total_rate += device.arrival_rate;
    EXPECT_NEAR(device.arrival_rate, 80.0 / 3.0, 1e-9);
  }
  EXPECT_NEAR(total_rate, 80.0, 1e-9);  // no traffic lost
  // The survivors run hotter, so compliance falls.
  EXPECT_LT(SystemModel(degraded).predict_sla_percentile(0.1),
            SystemModel(healthy).predict_sla_percentile(0.1));
}

TEST(DegradedWhatIf, RetryInflationAndOverloadMapToZero) {
  EXPECT_EQ(retry_arrival_inflation(0.0, 3), 1.0);
  EXPECT_EQ(retry_arrival_inflation(0.5, 0), 1.0);
  // p = 0.5, R = 2: 1 + 0.5 + 0.25 attempts.
  EXPECT_NEAR(retry_arrival_inflation(0.5, 2), 1.75, 1e-12);
  EXPECT_THROW(retry_arrival_inflation(1.0, 2), std::invalid_argument);

  const SystemParams healthy = even_cluster(80.0, 4);
  DegradedScenario mild;
  mild.retry_rate_factor = 1.1;
  EXPECT_LT(degraded_sla_percentile(healthy, mild, 0.1),
            SystemModel(healthy).predict_sla_percentile(0.1));
  // Retry storm beyond saturation: reported as certainly-missing, not as
  // an exception.
  DegradedScenario storm;
  storm.retry_rate_factor = 20.0;
  EXPECT_EQ(degraded_sla_percentile(healthy, storm, 0.1), 0.0);
}

}  // namespace
}  // namespace cosm::core
