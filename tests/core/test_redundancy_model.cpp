// Redundancy-aware model surface (tail-tolerance extension): the
// order-statistic response wrap in DeviceModel, the arrival-inflation
// helpers, the self-consistent hedged percentile, and the policy search.
#include "core/whatif.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/system_model.hpp"

namespace cosm::core {
namespace {

using numerics::Degenerate;
using numerics::Gamma;

FrontendParams redundancy_frontend(double rate) {
  FrontendParams params;
  params.arrival_rate = rate;
  params.processes = 3;
  params.frontend_parse = std::make_shared<Degenerate>(0.0008);
  return params;
}

DeviceParams redundancy_device(double rate) {
  DeviceParams params;
  params.arrival_rate = rate;
  params.data_read_rate = rate * 1.2;
  params.index_miss_ratio = 0.3;
  params.meta_miss_ratio = 0.3;
  params.data_miss_ratio = 0.7;
  params.index_disk = std::make_shared<Gamma>(3.0, 300.0);
  params.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
  params.data_disk = std::make_shared<Gamma>(2.8, 233.33);
  params.backend_parse = std::make_shared<Degenerate>(0.0005);
  params.processes = 1;
  return params;
}

SystemParams redundancy_system(double per_device_rate, unsigned devices) {
  SystemParams params;
  params.frontend =
      redundancy_frontend(per_device_rate * static_cast<double>(devices));
  for (unsigned d = 0; d < devices; ++d) {
    params.devices.push_back(redundancy_device(per_device_rate));
  }
  return params;
}

TEST(RedundancyModel, MinOfNImprovesTailAtFixedLoad) {
  const SystemParams params = redundancy_system(40.0, 3);
  const SystemModel baseline(params);
  ModelOptions redundant;
  redundant.redundancy.mode = RedundancyOptions::Mode::kMinOfN;
  redundant.redundancy.n = 2;
  const SystemModel min_of_two(params, redundant);
  // At identical offered load (inflation applied separately) the min of
  // two attempts dominates the single attempt at every SLA point.
  for (const double sla : {0.02, 0.05, 0.1}) {
    EXPECT_GE(min_of_two.predict_sla_percentile(sla),
              baseline.predict_sla_percentile(sla) - 1e-9)
        << sla;
  }
  EXPECT_LT(min_of_two.mean_response_latency(),
            baseline.mean_response_latency());
}

TEST(RedundancyModel, HedgeHelpsOnlyPastTheDeadline) {
  const SystemParams params = redundancy_system(40.0, 2);
  const SystemModel baseline(params);
  ModelOptions hedged_options;
  hedged_options.redundancy.mode = RedundancyOptions::Mode::kHedge;
  hedged_options.redundancy.hedge_delay = 0.03;
  const SystemModel hedged(params, hedged_options);
  // Below the deadline the hedge cannot have fired: distributions agree
  // to grid accuracy.
  EXPECT_NEAR(hedged.predict_sla_percentile(0.01),
              baseline.predict_sla_percentile(0.01), 5e-3);
  // Past it the hedge must help (here: p at twice the deadline).
  EXPECT_GT(hedged.predict_sla_percentile(0.08),
            baseline.predict_sla_percentile(0.08));
}

TEST(RedundancyModel, ForkJoinCorrectionIsPessimisticVsIndependence) {
  const SystemParams params = redundancy_system(45.0, 3);
  ModelOptions independent;
  independent.redundancy.mode = RedundancyOptions::Mode::kMinOfN;
  independent.redundancy.n = 3;
  independent.redundancy.fork_join_correction = false;
  ModelOptions corrected = independent;
  corrected.redundancy.fork_join_correction = true;
  const SystemModel ind_model(params, independent);
  const SystemModel cor_model(params, corrected);
  for (const double sla : {0.02, 0.05, 0.1}) {
    EXPECT_LE(cor_model.predict_sla_percentile(sla),
              ind_model.predict_sla_percentile(sla) + 1e-9)
        << sla;
  }
}

TEST(RedundancyModel, FingerprintSeparatesRedundancyOptions) {
  const SystemParams params = redundancy_system(40.0, 1);
  ModelOptions a;
  ModelOptions b;
  b.redundancy.mode = RedundancyOptions::Mode::kMinOfN;
  b.redundancy.n = 2;
  ModelOptions c = b;
  c.redundancy.n = 3;
  const SystemModel ma(params, a);
  const SystemModel mb(params, b);
  const SystemModel mc(params, c);
  // The CDF cache keys on the device fingerprint: redundancy variants
  // must never share entries.
  EXPECT_NE(ma.devices()[0].fingerprint(), mb.devices()[0].fingerprint());
  EXPECT_NE(mb.devices()[0].fingerprint(), mc.devices()[0].fingerprint());
}

TEST(RedundancyWhatIf, InflationFactorsMatchTheArithmetic) {
  RedundancyOptions none;
  EXPECT_EQ(redundancy_arrival_inflation(none), 1.0);
  EXPECT_EQ(redundancy_data_inflation(none), 1.0);

  RedundancyOptions hedge;
  hedge.mode = RedundancyOptions::Mode::kHedge;
  hedge.hedge_delay = 0.02;
  EXPECT_EQ(redundancy_arrival_inflation(hedge, 0.0), 2.0);
  EXPECT_NEAR(redundancy_arrival_inflation(hedge, 0.75), 1.25, 1e-15);

  RedundancyOptions coded;
  coded.mode = RedundancyOptions::Mode::kKthOfN;
  coded.n = 3;
  coded.k = 2;
  EXPECT_EQ(redundancy_arrival_inflation(coded), 3.0);
  EXPECT_NEAR(redundancy_data_inflation(coded), 1.5, 1e-15);
}

TEST(RedundancyWhatIf, ApplyLoadInflatesEveryRate) {
  const SystemParams healthy = redundancy_system(40.0, 2);
  RedundancyOptions coded;
  coded.mode = RedundancyOptions::Mode::kKthOfN;
  coded.n = 3;
  coded.k = 2;
  const SystemParams inflated = apply_redundancy_load(healthy, coded);
  EXPECT_NEAR(inflated.frontend.arrival_rate,
              3.0 * healthy.frontend.arrival_rate, 1e-9);
  for (std::size_t d = 0; d < healthy.devices.size(); ++d) {
    EXPECT_NEAR(inflated.devices[d].arrival_rate,
                3.0 * healthy.devices[d].arrival_rate, 1e-9);
    EXPECT_NEAR(inflated.devices[d].data_read_rate,
                std::max(1.5 * healthy.devices[d].data_read_rate,
                         inflated.devices[d].arrival_rate),
                1e-9);
  }
}

TEST(RedundancyWhatIf, SaturatingRedundancyReturnsZero) {
  // The healthy system is stable, but tripling the arrivals overloads
  // it: the percentile must come back 0 (the "hurt" side), not throw.
  const SystemParams healthy = redundancy_system(50.0, 2);
  ModelOptions options;
  options.redundancy.mode = RedundancyOptions::Mode::kMinOfN;
  options.redundancy.n = 3;
  EXPECT_EQ(redundant_sla_percentile(healthy, 0.1, options), 0.0);
}

TEST(RedundancyWhatIf, HedgedFixedPointStaysBetweenBounds) {
  // Load low enough that even the factor-2 worst case stays stable, so
  // both bounding models build.
  const SystemParams healthy = redundancy_system(25.0, 2);
  ModelOptions options;
  options.redundancy.mode = RedundancyOptions::Mode::kHedge;
  options.redundancy.hedge_delay = 0.03;
  const double hedged = redundant_sla_percentile(healthy, 0.1, options);
  // Worst case: doubled arrivals with the hedged response.
  const SystemModel doubled(
      apply_redundancy_load(healthy, options.redundancy, 0.0), options);
  // Best case: healthy load with the hedged response.
  const SystemModel best(healthy, options);
  EXPECT_GE(hedged, doubled.predict_sla_percentile(0.1) - 1e-9);
  EXPECT_LE(hedged, best.predict_sla_percentile(0.1) + 1e-9);
}

TEST(RedundancyWhatIf, PolicySearchFindsAHelpfulPolicyAtLowLoad) {
  // 8 req/s per device leaves ample headroom: the attempt inflation is
  // cheap, so the order-statistic help wins (the "help" side of the
  // crossover the extension_redundancy bench sweeps).
  const SystemParams healthy = redundancy_system(8.0, 3);
  std::vector<RedundancyOptions> candidates;
  RedundancyOptions hedge;
  hedge.mode = RedundancyOptions::Mode::kHedge;
  hedge.hedge_delay = 0.03;
  candidates.push_back(hedge);
  RedundancyOptions min2;
  min2.mode = RedundancyOptions::Mode::kMinOfN;
  min2.n = 2;
  candidates.push_back(min2);
  RedundancyOptions coded;
  coded.mode = RedundancyOptions::Mode::kKthOfN;
  coded.n = 3;
  coded.k = 2;
  candidates.push_back(coded);

  const auto choices =
      evaluate_redundancy_policies(healthy, candidates, 0.05);
  ASSERT_EQ(choices.size(), candidates.size());
  const auto best = best_redundancy_policy(healthy, candidates, 0.05);
  // At 25 req/s per device there is ample headroom: at least one policy
  // must beat the single-attempt baseline.
  ASSERT_TRUE(best.has_value());
  for (const auto& choice : choices) {
    EXPECT_LE(choice.percentile, best->percentile + 1e-12);
  }
}

TEST(RedundancyWhatIf, PolicySearchRejectsNothingHelpfulWhenSaturated) {
  // Near saturation every redundant policy floods the cluster; the
  // search must return nullopt rather than a policy that "wins" at 0.
  const SystemParams healthy = redundancy_system(55.0, 2);
  RedundancyOptions min3;
  min3.mode = RedundancyOptions::Mode::kMinOfN;
  min3.n = 3;
  const auto best = best_redundancy_policy(healthy, {min3}, 0.1);
  EXPECT_FALSE(best.has_value());
}

}  // namespace
}  // namespace cosm::core
