// Frontend model, exact accept-wait refinement, and Eq. 2/Eq. 3 assembly.
#include "core/system_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

namespace cosm::core {
namespace {

using numerics::Degenerate;
using numerics::DistPtr;
using numerics::Exponential;
using numerics::Gamma;

FrontendParams typical_frontend(double rate) {
  FrontendParams params;
  params.arrival_rate = rate;
  params.processes = 3;
  params.frontend_parse = std::make_shared<Degenerate>(0.0008);
  return params;
}

DeviceParams typical_device(double rate) {
  DeviceParams params;
  params.arrival_rate = rate;
  params.data_read_rate = rate * 1.2;
  params.index_miss_ratio = 0.3;
  params.meta_miss_ratio = 0.3;
  params.data_miss_ratio = 0.7;
  params.index_disk = std::make_shared<Gamma>(3.0, 300.0);
  params.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
  params.data_disk = std::make_shared<Gamma>(2.8, 233.33);
  params.backend_parse = std::make_shared<Degenerate>(0.0005);
  params.processes = 1;
  return params;
}

TEST(FrontendModel, MG1SojournOnParsing) {
  const FrontendModel model(typical_frontend(600.0));
  EXPECT_NEAR(model.per_process_rate(), 200.0, 1e-12);
  EXPECT_NEAR(model.utilization(), 200.0 * 0.0008, 1e-12);
  // M/D/1 sojourn mean: b + rho b / (2(1 - rho)).
  const double rho = 0.16;
  const double expected = 0.0008 + rho * 0.0008 / (2.0 * (1.0 - rho));
  EXPECT_NEAR(model.queueing_latency()->mean(), expected, 1e-12);
}

TEST(FrontendModel, RejectsOverload) {
  FrontendParams params = typical_frontend(600.0);
  params.frontend_parse = std::make_shared<Degenerate>(0.01);  // rho = 2
  EXPECT_THROW(FrontendModel{params}, std::invalid_argument);
}

TEST(ExactWta, DegenerateLifetimeGivesUniformWait) {
  // If every accept lifetime is exactly x0, a connection arriving at a
  // uniformly random instant waits U(0, x0): CDF(t) = t / x0.
  const Degenerate lifetime(0.04);
  // The lifetime CDF has a jump at 0.04, which costs the fixed-panel
  // quadrature some accuracy; 5e-3 is ample for the ablation's purpose.
  for (double t : {0.005, 0.01, 0.02, 0.035}) {
    EXPECT_NEAR(exact_wta_cdf(lifetime, t), t / 0.04, 5e-3) << t;
  }
  EXPECT_NEAR(exact_wta_cdf(lifetime, 0.04), 1.0, 5e-3);
  EXPECT_EQ(exact_wta_cdf(lifetime, 0.0), 0.0);
}

TEST(ExactWta, ApproximationOverestimatesTheWait) {
  // The paper's W_a = A approximation assumes every connection waits the
  // full lifetime; the exact wait is stochastically smaller, so its CDF
  // dominates pointwise.
  const Exponential lifetime(50.0);  // mean 20 ms accept lifetimes
  for (double t : {0.002, 0.01, 0.03, 0.08}) {
    EXPECT_GE(exact_wta_cdf(lifetime, t), lifetime.cdf(t) - 1e-6) << t;
  }
}

TEST(ExactWta, IsAProperCdf) {
  const Gamma lifetime(2.0, 100.0);
  double prev = 0.0;
  for (double t : {0.001, 0.005, 0.02, 0.05, 0.2, 1.0}) {
    const double c = exact_wta_cdf(lifetime, t);
    EXPECT_GE(c, prev - 1e-9);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_GT(prev, 0.98);
}

TEST(FrontendModel, HeterogeneousGroupsMixByTrafficShare) {
  // Sec. III-C: heterogeneous frontends = homogeneous sets solved
  // separately.  A 2-group tier must equal the share-weighted mixture of
  // the corresponding homogeneous tiers.
  FrontendParams fast_params;
  fast_params.arrival_rate = 60.0;  // 0.6 share of 100
  fast_params.processes = 2;
  fast_params.frontend_parse = std::make_shared<Degenerate>(0.0005);
  FrontendParams slow_params;
  slow_params.arrival_rate = 40.0;  // 0.4 share of 100
  slow_params.processes = 1;
  slow_params.frontend_parse = std::make_shared<Degenerate>(0.002);

  FrontendParams hetero;
  hetero.arrival_rate = 100.0;
  hetero.groups = {
      {2, 0.6, std::make_shared<Degenerate>(0.0005)},
      {1, 0.4, std::make_shared<Degenerate>(0.002)},
  };
  const FrontendModel fast(fast_params);
  const FrontendModel slow(slow_params);
  const FrontendModel mixed(hetero);
  EXPECT_NEAR(mixed.queueing_latency()->mean(),
              0.6 * fast.queueing_latency()->mean() +
                  0.4 * slow.queueing_latency()->mean(),
              1e-12);
  for (double t : {0.001, 0.003, 0.01}) {
    EXPECT_NEAR(mixed.queueing_latency()->cdf(t),
                0.6 * fast.queueing_latency()->cdf(t) +
                    0.4 * slow.queueing_latency()->cdf(t),
                1e-6)
        << t;
  }
  // Utilization reports the busiest group.
  EXPECT_NEAR(mixed.utilization(),
              std::max(30.0 * 0.0005, 40.0 * 0.002), 1e-12);
}

TEST(FrontendModel, HeterogeneousValidation) {
  FrontendParams params;
  params.arrival_rate = 100.0;
  params.groups = {{1, 0.5, std::make_shared<Degenerate>(0.001)},
                   {1, 0.6, std::make_shared<Degenerate>(0.001)}};
  EXPECT_THROW(FrontendModel{params}, std::invalid_argument);  // sum != 1
  params.groups = {{1, 1.0, nullptr}};
  EXPECT_THROW(FrontendModel{params}, std::invalid_argument);
  params.groups = {{1, 1.0, std::make_shared<Degenerate>(0.02)}};
  // 100 req/s * 20 ms parse on one process: overloaded group.
  EXPECT_THROW(FrontendModel{params}, std::invalid_argument);
}

TEST(SystemModel, HeterogeneousFrontendFeedsEq2) {
  SystemParams params;
  params.frontend.arrival_rate = 40.0;
  params.frontend.groups = {
      {2, 0.7, std::make_shared<Degenerate>(0.0008)},
      {1, 0.3, std::make_shared<Degenerate>(0.0016)},
  };
  params.devices = {typical_device(40.0)};
  const SystemModel model(params);
  for (double sla : {0.010, 0.050, 0.100}) {
    const double p = model.predict_sla_percentile(sla);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_GT(model.predict_sla_percentile(0.5), 0.999);
}

TEST(SystemModel, Eq3IsRateWeightedMixture) {
  SystemParams params;
  params.frontend = typical_frontend(70.0);
  params.devices = {typical_device(30.0), typical_device(40.0)};
  // Make device 1 slower so the mixture weighting is visible.
  params.devices[1].data_miss_ratio = 1.0;
  const SystemModel model(params);
  for (double sla : {0.020, 0.050, 0.100}) {
    const double d0 = model.predict_sla_percentile_device(0, sla);
    const double d1 = model.predict_sla_percentile_device(1, sla);
    const double combined = model.predict_sla_percentile(sla);
    EXPECT_NEAR(combined, (30.0 * d0 + 40.0 * d1) / 70.0, 1e-9) << sla;
    EXPECT_GE(d0, d1) << "all-miss device must be slower";
  }
}

TEST(SystemModel, WtaMakesPredictionsMorePessimistic) {
  SystemParams params;
  params.frontend = typical_frontend(40.0);
  params.devices = {typical_device(40.0)};
  const SystemModel full(params);
  const SystemModel no_wta(params, {.include_wta = false});
  for (double sla : {0.010, 0.050, 0.100}) {
    EXPECT_LE(full.predict_sla_percentile(sla),
              no_wta.predict_sla_percentile(sla) + 1e-9)
        << sla;
  }
  // And the gap widens with load (longer queues -> longer accept waits).
  SystemParams heavy = params;
  heavy.frontend = typical_frontend(55.0);
  heavy.devices = {typical_device(55.0)};
  const SystemModel full_heavy(heavy);
  const SystemModel no_wta_heavy(heavy, {.include_wta = false});
  const double gap_light = no_wta.predict_sla_percentile(0.05) -
                           full.predict_sla_percentile(0.05);
  const double gap_heavy = no_wta_heavy.predict_sla_percentile(0.05) -
                           full_heavy.predict_sla_percentile(0.05);
  EXPECT_GT(gap_heavy, gap_light);
}

TEST(SystemModel, LatencyQuantileInvertsPercentile) {
  SystemParams params;
  params.frontend = typical_frontend(40.0);
  params.devices = {typical_device(40.0)};
  const SystemModel model(params);
  for (double p : {0.5, 0.9, 0.95}) {
    const double t = model.latency_quantile(p);
    EXPECT_NEAR(model.predict_sla_percentile(t), p, 1e-6) << p;
  }
}

TEST(SystemModel, PercentileMonotoneInSlaAndLoad) {
  SystemParams params;
  params.frontend = typical_frontend(30.0);
  params.devices = {typical_device(30.0)};
  const SystemModel light(params);
  EXPECT_LE(light.predict_sla_percentile(0.01),
            light.predict_sla_percentile(0.05));
  EXPECT_LE(light.predict_sla_percentile(0.05),
            light.predict_sla_percentile(0.10));

  SystemParams heavier = params;
  heavier.frontend = typical_frontend(50.0);
  heavier.devices = {typical_device(50.0)};
  const SystemModel heavy(heavier);
  for (double sla : {0.010, 0.050, 0.100}) {
    EXPECT_LE(heavy.predict_sla_percentile(sla),
              light.predict_sla_percentile(sla) + 1e-9)
        << sla;
  }
}

TEST(SystemModel, ValidatesRateConsistency) {
  SystemParams params;
  params.frontend = typical_frontend(100.0);
  params.devices = {typical_device(30.0)};  // 30 != 100
  EXPECT_THROW(SystemModel{params}, std::invalid_argument);
  SystemParams empty;
  empty.frontend = typical_frontend(10.0);
  EXPECT_THROW(SystemModel{empty}, std::invalid_argument);
}

}  // namespace
}  // namespace cosm::core
