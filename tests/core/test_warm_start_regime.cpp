// Warm-start regime guard: a quantile root carried across models must be
// discarded when the underlying curve family changes (degraded vs
// healthy cluster), yet survive plain rate sweeps.  The historical bug:
// whatif::latency_quantile_trend carried a degraded-regime bracket into
// the healthy model after an overload gap, which could seed the search
// on the wrong side of the root.  These tests pin the fingerprint
// rejection, the trend's reset-on-overload, and recovery from a
// poisoned seed.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/whatif.hpp"
#include "numerics/distribution.hpp"
#include "obs/obs.hpp"

namespace cosm::core {
namespace {

using numerics::Degenerate;
using numerics::Gamma;

struct ObsGuard {
  ObsGuard() {
    obs::reset();
    obs::set_enabled(true);
  }
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset();
  }
};

SystemParams even_cluster(double total_rate, unsigned devices) {
  SystemParams params;
  params.frontend.arrival_rate = total_rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse = std::make_shared<Degenerate>(0.8e-3);
  for (unsigned d = 0; d < devices; ++d) {
    DeviceParams device;
    device.arrival_rate = total_rate / devices;
    device.data_read_rate = device.arrival_rate * 1.2;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = std::make_shared<Gamma>(3.0, 300.0);
    device.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
    device.data_disk = std::make_shared<Gamma>(2.8, 233.33);
    device.backend_parse = std::make_shared<Degenerate>(0.5e-3);
    device.processes = 1;
    params.devices.push_back(device);
  }
  return params;
}

const ClusterFactory kFactory = [](double rate, unsigned devices) {
  return even_cluster(rate, devices);
};

TEST(RegimeFingerprint, InvariantAcrossRateSweeps) {
  // Rates are parameters, not structure: the whole point of the warm
  // start is surviving a rate sweep, so the fingerprint must not move.
  const SystemModel slow_day(even_cluster(60.0, 4));
  const SystemModel busy_day(even_cluster(140.0, 4));
  EXPECT_EQ(slow_day.regime_fingerprint(), busy_day.regime_fingerprint());
  EXPECT_NE(slow_day.regime_fingerprint(), 0u);
}

TEST(RegimeFingerprint, ChangesWhenTheCurveFamilyChanges) {
  const SystemModel healthy(even_cluster(80.0, 4));

  // A failed device changes the device count.
  DegradedScenario outage;
  outage.failed_device = 1;
  const SystemModel after_outage(degrade(even_cluster(80.0, 4), outage));
  EXPECT_NE(healthy.regime_fingerprint(), after_outage.regime_fingerprint());

  // A slowed device wraps its disks in Scaled: same count, new tape
  // shape.
  DegradedScenario slowdown;
  slowdown.slow_device = 2;
  slowdown.service_inflation = 3.0;
  const SystemModel degraded(degrade(even_cluster(80.0, 4), slowdown));
  EXPECT_NE(healthy.regime_fingerprint(), degraded.regime_fingerprint());
}

TEST(WarmStartRegime, DegradedSeedIsRejectedOnTheHealthyModel) {
  ObsGuard guard;
  DegradedScenario slowdown;
  slowdown.slow_device = 2;
  slowdown.service_inflation = 3.0;
  const SystemModel degraded(degrade(even_cluster(80.0, 4), slowdown));
  const SystemModel healthy(even_cluster(80.0, 4));
  const double cold = healthy.latency_quantile(0.95);

  numerics::QuantileWarmStart warm;
  const double on_degraded = degraded.latency_quantile(0.95, &warm);
  EXPECT_GT(on_degraded, cold);  // degradation pushes the p95 up
  EXPECT_GT(warm.previous, 0.0);

  // Crossing into the healthy model must drop the carried root (the
  // fingerprints differ) and still land on the cold answer.
  const double crossed = healthy.latency_quantile(0.95, &warm);
  EXPECT_NEAR(crossed, cold, 1e-6 * cold);
  EXPECT_GE(obs::counter_value(obs::Counter::kQuantileWarmRejectRegime), 1u);
}

TEST(WarmStartRegime, RateSweepKeepsTheSeedWarm) {
  ObsGuard guard;
  numerics::QuantileWarmStart warm;
  const std::vector<double> rates = {60.0, 80.0, 100.0, 120.0};
  for (const double rate : rates) {
    const SystemModel model(even_cluster(rate, 4));
    const double with_warm = model.latency_quantile(0.95, &warm);
    const double cold = model.latency_quantile(0.95);
    EXPECT_NEAR(with_warm, cold, 1e-6 * cold) << "rate " << rate;
  }
  // First call is cold; every later sweep step accepts the carried seed.
  EXPECT_EQ(obs::counter_value(obs::Counter::kQuantileWarmAccept),
            static_cast<std::uint64_t>(rates.size()) - 1);
  EXPECT_EQ(obs::counter_value(obs::Counter::kQuantileWarmRejectRegime), 0u);
}

TEST(WarmStartRegime, TrendResetsAcrossAnOverloadGap) {
  ObsGuard guard;
  // 400 req/s over 4 devices saturates: the middle period is overloaded
  // and must come back NaN, and the recovery period must match the
  // pre-gap answer instead of inheriting a bracket from the overload
  // boundary.
  const std::vector<double> rates = {80.0, 400.0, 80.0};
  const std::vector<double> trend =
      latency_quantile_trend(kFactory, rates, 0.95, 4);
  ASSERT_EQ(trend.size(), 3u);
  EXPECT_TRUE(std::isfinite(trend[0]));
  EXPECT_TRUE(std::isnan(trend[1]));
  EXPECT_TRUE(std::isfinite(trend[2]));
  EXPECT_NEAR(trend[2], trend[0], 1e-6 * trend[0]);

  // The post-gap period restarts cold (warm.reset() on overload), so at
  // least two cold starts happen across the trend.
  EXPECT_GE(obs::counter_value(obs::Counter::kQuantileColdStart), 2u);
}

TEST(WarmStartRegime, PoisonedSeedStillRecoversTheColdRoot) {
  const SystemModel model(even_cluster(80.0, 4));
  const double cold = model.latency_quantile(0.95);

  // A wildly stale seed (six decades high) must be absorbed by the
  // shrink ladder — same root, no exception.
  numerics::QuantileWarmStart poisoned;
  poisoned.regime = model.regime_fingerprint();
  poisoned.previous = 1e6 * cold;
  const double recovered = model.latency_quantile(0.95, &poisoned);
  EXPECT_NEAR(recovered, cold, 1e-6 * cold);
}

}  // namespace
}  // namespace cosm::core
