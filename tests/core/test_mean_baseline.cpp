#include "core/mean_value_baseline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace cosm::core {
namespace {

using numerics::Degenerate;
using numerics::Gamma;

SystemParams simple_params(double rate) {
  SystemParams params;
  params.frontend.arrival_rate = rate;
  params.frontend.processes = 2;
  params.frontend.frontend_parse = std::make_shared<Degenerate>(0.001);
  DeviceParams device;
  device.arrival_rate = rate;
  device.data_read_rate = rate * 1.5;
  device.index_miss_ratio = 0.2;
  device.meta_miss_ratio = 0.1;
  device.data_miss_ratio = 0.5;
  device.index_disk = std::make_shared<Gamma>(3.0, 300.0);
  device.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
  device.data_disk = std::make_shared<Gamma>(2.8, 233.33);
  device.backend_parse = std::make_shared<Degenerate>(0.0005);
  device.processes = 1;
  params.devices.push_back(std::move(device));
  return params;
}

TEST(MeanValueBaseline, HandComputedMean) {
  const double rate = 40.0;
  const MeanValueBaseline baseline(simple_params(rate));
  // Frontend M/M/1: lambda = 20/s, mu = 1000/s -> 1/980 s.
  const double frontend = 1.0 / (1000.0 - 20.0);
  // Union mean: 0.0005 + 0.2*0.010 + 0.1*0.008 + 1.5*0.5*0.012.
  const double union_mean =
      0.0005 + 0.2 * 0.010 + 0.1 * 0.008 + 1.5 * 0.5 * (2.8 / 233.33);
  const double backend = 1.0 / (1.0 / union_mean - rate);
  EXPECT_NEAR(baseline.mean_response_latency(), frontend + backend, 1e-12);
  EXPECT_NEAR(baseline.mean_response_latency_device(0), frontend + backend,
              1e-12);
}

TEST(MeanValueBaseline, ExponentialTailPercentile) {
  const MeanValueBaseline baseline(simple_params(40.0));
  const double mean = baseline.mean_response_latency();
  for (double sla : {0.01, 0.05, 0.2}) {
    EXPECT_NEAR(baseline.predict_sla_percentile(sla),
                1.0 - std::exp(-sla / mean), 1e-12)
        << sla;
  }
  EXPECT_THROW(baseline.predict_sla_percentile(0.0), std::invalid_argument);
}

TEST(MeanValueBaseline, PercentileMonotoneInLoad) {
  const MeanValueBaseline light(simple_params(20.0));
  const MeanValueBaseline heavy(simple_params(60.0));
  for (double sla : {0.02, 0.1}) {
    EXPECT_LT(heavy.predict_sla_percentile(sla),
              light.predict_sla_percentile(sla))
        << sla;
  }
}

TEST(MeanValueBaseline, RejectsOverloadedStations) {
  // Backend saturates near 1/union_mean ~ 81/s for this mix.
  EXPECT_THROW(MeanValueBaseline{simple_params(90.0)},
               std::invalid_argument);
}

TEST(MeanValueBaseline, MixesDevicesByRate) {
  SystemParams params = simple_params(40.0);
  DeviceParams second = params.devices[0];
  second.arrival_rate = 20.0;
  second.data_read_rate = 30.0;
  second.data_miss_ratio = 1.0;  // slower device
  params.devices.push_back(second);
  params.frontend.arrival_rate = 60.0;
  const MeanValueBaseline baseline(params);
  const double d0 = baseline.mean_response_latency_device(0);
  const double d1 = baseline.mean_response_latency_device(1);
  EXPECT_GT(d1, d0);
  EXPECT_NEAR(baseline.mean_response_latency(),
              (40.0 * d0 + 20.0 * d1) / 60.0, 1e-12);
}

}  // namespace
}  // namespace cosm::core
