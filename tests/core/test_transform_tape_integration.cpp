// Core-layer guarantees of the transform tape: the compiled tape is what
// every prediction query evaluates, its CDF is bit-identical to the
// scalar tree walk, and its fingerprint keys the PredictionCache so
// identically configured devices share entries.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/system_model.hpp"
#include "core/whatif.hpp"
#include "numerics/lt_inversion.hpp"

namespace cosm::core {
namespace {

using numerics::Degenerate;
using numerics::DistPtr;
using numerics::Gamma;

FrontendParams tape_frontend(double rate) {
  FrontendParams params;
  params.arrival_rate = rate;
  params.processes = 3;
  params.frontend_parse = std::make_shared<Degenerate>(0.0008);
  return params;
}

DeviceParams tape_device(double rate) {
  DeviceParams params;
  params.arrival_rate = rate;
  params.data_read_rate = rate * 1.2;
  params.index_miss_ratio = 0.3;
  params.meta_miss_ratio = 0.3;
  params.data_miss_ratio = 0.7;
  params.index_disk = std::make_shared<Gamma>(3.0, 300.0);
  params.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
  params.data_disk = std::make_shared<Gamma>(2.8, 233.33);
  params.backend_parse = std::make_shared<Degenerate>(0.0005);
  params.processes = 1;
  return params;
}

SystemParams tape_system(double total_rate, unsigned devices) {
  SystemParams params;
  params.frontend = tape_frontend(total_rate);
  for (unsigned d = 0; d < devices; ++d) {
    params.devices.push_back(tape_device(total_rate / devices));
  }
  return params;
}

TEST(TapeIntegration, DeviceTapeCdfBitIdenticalToScalarTreeWalk) {
  const SystemModel model(tape_system(80.0, 2));
  for (const auto& device : model.devices()) {
    const DistPtr response = device.response_time();
    const numerics::LaplaceFn lt = [&response](std::complex<double> s) {
      return response->laplace(s);
    };
    for (const double sla : {0.005, 0.02, 0.05, 0.15}) {
      EXPECT_EQ(device.response_tape().cdf(sla),
                numerics::cdf_from_laplace(lt, sla));
    }
  }
}

TEST(TapeIntegration, PredictionMatchesManualTapeWeightedSum) {
  const SystemModel model(tape_system(90.0, 3));
  const double sla = 0.03;
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& device : model.devices()) {
    weighted += device.arrival_rate() * device.response_tape().cdf(sla);
    total += device.arrival_rate();
  }
  EXPECT_EQ(model.predict_sla_percentile(sla), weighted / total);
}

TEST(TapeIntegration, IdenticalDevicesShareTapeFingerprint) {
  const SystemModel model(tape_system(96.0, 3));
  const std::uint64_t fp = model.devices()[0].fingerprint();
  EXPECT_EQ(fp, model.devices()[0].response_tape().fingerprint());
  for (const auto& device : model.devices()) {
    EXPECT_EQ(device.fingerprint(), fp);
  }
  // A different parameter set must not collide with the healthy one.
  SystemParams other = tape_system(96.0, 3);
  other.devices[0].data_miss_ratio = 0.8;
  const SystemModel changed(other);
  EXPECT_NE(changed.devices()[0].fingerprint(), fp);
  EXPECT_EQ(changed.devices()[1].fingerprint(), fp);
}

TEST(TapeIntegration, CachedAndUncachedPredictionsBitIdentical) {
  PredictionCache cache;
  const SystemParams params = tape_system(84.0, 2);
  const SystemModel uncached(params);
  const SystemModel cached(params, {}, PredictOptions{1, &cache});
  const std::vector<double> slas = {0.004, 0.01, 0.03, 0.08, 0.2};
  EXPECT_EQ(uncached.predict_sla_percentiles(slas),
            cached.predict_sla_percentiles(slas));
  // Second pass is served from the cache and must reproduce the values.
  EXPECT_EQ(uncached.predict_sla_percentiles(slas),
            cached.predict_sla_percentiles(slas));
}

TEST(TapeIntegration, LatencyQuantilesWarmChainAgreesWithColdCalls) {
  const SystemModel model(tape_system(70.0, 2));
  const std::vector<double> percentiles = {0.5, 0.9, 0.95, 0.99};
  const std::vector<double> chained = model.latency_quantiles(percentiles);
  ASSERT_EQ(chained.size(), percentiles.size());
  for (std::size_t i = 0; i < percentiles.size(); ++i) {
    const double cold = model.latency_quantile(percentiles[i]);
    EXPECT_NEAR(chained[i], cold, 1e-6 * cold);
    // Each bound must actually deliver its percentile.
    EXPECT_NEAR(model.predict_sla_percentile(chained[i]), percentiles[i],
                1e-6);
  }
  EXPECT_TRUE(std::is_sorted(chained.begin(), chained.end()));
}

TEST(TapeIntegration, QuantileTrendMatchesPerPeriodQuantiles) {
  const ClusterFactory factory = [](double rate, unsigned devices) {
    return tape_system(rate, devices);
  };
  const std::vector<double> rates = {60.0, 72.0, 84.0, 96.0, 88.0, 66.0};
  const std::vector<double> trend =
      latency_quantile_trend(factory, rates, 0.95, 2);
  ASSERT_EQ(trend.size(), rates.size());
  for (std::size_t p = 0; p < rates.size(); ++p) {
    const SystemModel model(factory(rates[p], 2));
    const double cold = model.latency_quantile(0.95);
    EXPECT_NEAR(trend[p], cold, 1e-6 * cold) << "period " << p;
  }
}

TEST(TapeIntegration, QuantileTrendMarksOverloadedPeriodsNaN) {
  const ClusterFactory factory = [](double rate, unsigned devices) {
    return tape_system(rate, devices);
  };
  // The middle rate saturates the per-device M/G/1 stages; its entry must
  // be NaN while the neighbors stay finite (warm state survives the gap).
  const std::vector<double> rates = {60.0, 5e5, 64.0};
  const std::vector<double> trend =
      latency_quantile_trend(factory, rates, 0.9, 2);
  ASSERT_EQ(trend.size(), 3u);
  EXPECT_TRUE(std::isfinite(trend[0]));
  EXPECT_TRUE(std::isnan(trend[1]));
  EXPECT_TRUE(std::isfinite(trend[2]));
}

}  // namespace
}  // namespace cosm::core
