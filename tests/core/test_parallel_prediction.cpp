// The pipeline's determinism contract: predictions are bit-identical
// across thread counts {1, 2, 8} and with/without a PredictionCache
// attached — parallel workers fill disjoint slots reduced in fixed
// order, and cached values are deterministic functions of their keys.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/system_model.hpp"
#include "core/whatif.hpp"
#include "numerics/distribution.hpp"

namespace {

using cosm::core::DegradedScenario;
using cosm::core::DeviceParams;
using cosm::core::ModelOptions;
using cosm::core::PredictionCache;
using cosm::core::PredictOptions;
using cosm::core::SlaTarget;
using cosm::core::SystemModel;
using cosm::core::SystemParams;

DeviceParams make_device(double arrival_rate, unsigned processes = 2) {
  using cosm::numerics::Degenerate;
  using cosm::numerics::Gamma;
  DeviceParams device;
  device.arrival_rate = arrival_rate;
  device.data_read_rate = arrival_rate * 1.2;
  device.index_miss_ratio = 0.3;
  device.meta_miss_ratio = 0.3;
  device.data_miss_ratio = 0.7;
  device.index_disk = std::make_shared<Gamma>(3.0, 300.0);
  device.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
  device.data_disk = std::make_shared<Gamma>(2.8, 233.33);
  device.backend_parse = std::make_shared<Degenerate>(0.5e-3);
  device.processes = processes;
  return device;
}

SystemParams make_cluster(double system_rate, unsigned devices) {
  SystemParams params;
  params.frontend.arrival_rate = system_rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse =
      std::make_shared<cosm::numerics::Degenerate>(0.8e-3);
  for (unsigned d = 0; d < devices; ++d) {
    params.devices.push_back(
        make_device(system_rate / static_cast<double>(devices)));
  }
  return params;
}

const std::vector<double> kSlas = {0.04, 0.08, 0.12, 0.2};

TEST(ParallelPrediction, BitIdenticalAcrossThreadCountsAndCache) {
  const SystemParams params = make_cluster(140.0, 4);
  const SystemModel reference(params, {}, PredictOptions{1, nullptr});
  const std::vector<double> expected =
      reference.predict_sla_percentiles(kSlas);

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const bool with_cache : {false, true}) {
      PredictionCache cache;
      const PredictOptions predict{threads, with_cache ? &cache : nullptr};
      const SystemModel model(params, {}, predict);
      const std::vector<double> got = model.predict_sla_percentiles(kSlas);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        // Exact doubles: determinism means bit-identical, not "close".
        EXPECT_EQ(got[i], expected[i])
            << "threads=" << threads << " cache=" << with_cache
            << " sla=" << kSlas[i];
      }
      EXPECT_EQ(model.latency_quantile(0.95), reference.latency_quantile(0.95))
          << "threads=" << threads << " cache=" << with_cache;
    }
  }
}

TEST(ParallelPrediction, BatchMatchesScalarQueries) {
  PredictionCache cache;
  const SystemModel model(make_cluster(120.0, 3), {},
                          PredictOptions{8, &cache});
  const std::vector<double> batch = model.predict_sla_percentiles(kSlas);
  ASSERT_EQ(batch.size(), kSlas.size());
  for (std::size_t i = 0; i < kSlas.size(); ++i) {
    EXPECT_EQ(batch[i], model.predict_sla_percentile(kSlas[i]));
  }
  EXPECT_TRUE(model.predict_sla_percentiles({}).empty());
}

TEST(ParallelPrediction, IdenticalDevicesShareOneBackendBuild) {
  PredictionCache cache;
  const SystemModel model(make_cluster(140.0, 4), {},
                          PredictOptions{1, &cache});
  const auto backend_stats = cache.backends.stats();
  EXPECT_EQ(backend_stats.misses, 1u);  // built once...
  EXPECT_EQ(backend_stats.hits, 3u);    // ...shared by the other 3 devices
  // The shared build really is shared, not copied.
  EXPECT_EQ(&model.devices()[0].backend(), &model.devices()[3].backend());

  // A second identical model reuses everything.
  const SystemModel again(make_cluster(140.0, 4), {},
                          PredictOptions{1, &cache});
  EXPECT_EQ(cache.backends.stats().misses, 1u);
  EXPECT_EQ(cache.backends.stats().hits, 7u);

  // Identical devices also collapse to one CDF inversion per SLA point.
  const std::vector<double> first = model.predict_sla_percentiles(kSlas);
  const auto cdf_stats = cache.cdf.stats();
  EXPECT_EQ(cdf_stats.misses, kSlas.size());
  EXPECT_EQ(cdf_stats.hits, 3 * kSlas.size());
  EXPECT_EQ(first, again.predict_sla_percentiles(kSlas));
}

TEST(ParallelPrediction, ModelVariantsKeyedSeparately) {
  PredictionCache cache;
  const SystemParams params = make_cluster(140.0, 2);
  ModelOptions no_wta;
  no_wta.include_wta = false;
  const SystemModel full(params, {}, PredictOptions{1, &cache});
  const SystemModel baseline(params, no_wta, PredictOptions{1, &cache});
  // include_wta does not change the backend build (same backend key)...
  EXPECT_EQ(cache.backends.stats().misses, 1u);
  // ...but it does change the response distribution, so CDF points must
  // not be shared between the variants.
  const double a = full.predict_sla_percentile(0.08);
  const double b = baseline.predict_sla_percentile(0.08);
  EXPECT_NE(a, b);
  const SystemModel uncached_baseline(params, no_wta);
  EXPECT_EQ(b, uncached_baseline.predict_sla_percentile(0.08));
}

TEST(ParallelPrediction, ElasticScheduleParallelMatchesSerial) {
  const auto factory = [](double rate, unsigned devices) {
    return make_cluster(rate, devices);
  };
  const std::vector<double> rates = {60.0, 120.0, 180.0, 240.0, 90.0};
  const SlaTarget target{0.12, 0.9};
  const auto serial =
      cosm::core::elastic_schedule(factory, rates, target, 8);
  PredictionCache cache;
  const auto parallel = cosm::core::elastic_schedule(
      factory, rates, target, 8, {}, PredictOptions{8, &cache});
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(cache.combined_stats().hits, 0u);
}

TEST(ParallelPrediction, DegradedSweepParallelMatchesSerial) {
  const SystemParams healthy = make_cluster(140.0, 4);
  std::vector<DegradedScenario> scenarios(4);
  scenarios[0].slow_device = 0;
  scenarios[0].service_inflation = 2.0;
  scenarios[1].failed_device = 2;
  scenarios[2].retry_rate_factor = 1.15;
  scenarios[3].slow_device = 1;
  scenarios[3].service_inflation = 1.5;
  scenarios[3].retry_rate_factor = 1.05;

  const auto serial =
      cosm::core::degraded_sla_percentiles(healthy, scenarios, 0.12);
  PredictionCache cache;
  const auto parallel = cosm::core::degraded_sla_percentiles(
      healthy, scenarios, 0.12, {}, PredictOptions{8, &cache});
  ASSERT_EQ(serial.size(), scenarios.size());
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(serial[i],
              cosm::core::degraded_sla_percentile(healthy, scenarios[i], 0.12));
  }
}

TEST(ParallelPrediction, OverloadBehaviorUnchangedUnderParallel) {
  // Way past saturation for this device profile.
  const SystemParams overloaded = make_cluster(4000.0, 4);
  PredictionCache cache;
  EXPECT_THROW(SystemModel(overloaded, {}, PredictOptions{8, &cache}),
               cosm::core::OverloadError);
  EXPECT_FALSE(cosm::core::meets_target(overloaded, SlaTarget{0.12, 0.9}, {},
                                        PredictOptions{8, &cache}));
}

}  // namespace
