// WhatIfService protocol round-trips: registration, every query op, the
// error paths (which must produce {"ok": false} lines, never throw), id
// correlation, determinism, and the kSimd == kExact byte-identity the
// service inherits from the tape contract.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "core/params.hpp"

namespace cosm::service {
namespace {

using common::json_parse;
using common::JsonValue;

JsonValue parse_response(const std::string& line) {
  const auto result = json_parse(line);
  EXPECT_TRUE(result.ok) << line << ": " << result.error;
  EXPECT_TRUE(result.value.is_object()) << line;
  return result.value;
}

constexpr const char* kRegisterA =
    R"({"op":"register","cluster":"a","rate":400,"devices":8})";

TEST(WhatIfService, RegisterThenSlaRoundTrip) {
  WhatIfService service;
  const JsonValue reg = parse_response(service.handle_line(kRegisterA));
  EXPECT_TRUE(reg.bool_or("ok", false));
  EXPECT_EQ(reg.string_or("cluster", ""), "a");

  const JsonValue sla = parse_response(
      service.handle_line(R"({"op":"sla","cluster":"a","sla":0.1})"));
  ASSERT_TRUE(sla.bool_or("ok", false));
  const double p = sla.number_or("percentile", -1.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  // A looser bound is met by at least as many requests.
  const JsonValue looser = parse_response(
      service.handle_line(R"({"op":"sla","cluster":"a","sla":0.5})"));
  EXPECT_GE(looser.number_or("percentile", -1.0), p);
}

TEST(WhatIfService, SlaLadderMatchesSingleProbes) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  const JsonValue ladder = parse_response(service.handle_line(
      R"({"op":"sla","cluster":"a","slas":[0.05,0.1,0.25]})"));
  ASSERT_TRUE(ladder.bool_or("ok", false));
  const JsonValue* percentiles = ladder.find("percentiles");
  ASSERT_NE(percentiles, nullptr);
  ASSERT_EQ(percentiles->items().size(), 3u);
  const std::vector<double> slas = {0.05, 0.1, 0.25};
  for (std::size_t i = 0; i < slas.size(); ++i) {
    const JsonValue single = parse_response(service.handle_line(
        R"({"op":"sla","cluster":"a","sla":)" + std::to_string(slas[i]) +
        "}"));
    EXPECT_EQ(single.number_or("percentile", -1.0),
              percentiles->items()[i].as_number())
        << "sla " << slas[i];
  }
}

TEST(WhatIfService, QuantileInvertsSla) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  const JsonValue quant = parse_response(
      service.handle_line(R"({"op":"quantile","cluster":"a","p":0.95})"));
  ASSERT_TRUE(quant.bool_or("ok", false));
  const double t95 = quant.number_or("latency", -1.0);
  ASSERT_GT(t95, 0.0);
  // The p-quantile's SLA probe must come back at (or just above) p.
  const JsonValue back = parse_response(service.handle_line(
      R"({"op":"sla","cluster":"a","sla":)" + std::to_string(t95) + "}"));
  EXPECT_NEAR(back.number_or("percentile", -1.0), 0.95, 5e-3);
}

TEST(WhatIfService, DevicesAndCapacityPlanning) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  const JsonValue devices = parse_response(service.handle_line(
      R"({"op":"devices","cluster":"a","sla":0.1,"percentile":0.9})"));
  ASSERT_TRUE(devices.bool_or("ok", false));
  const double need = devices.number_or("devices", -1.0);
  EXPECT_GE(need, 1.0);

  const JsonValue capacity = parse_response(service.handle_line(
      R"({"op":"capacity","cluster":"a","sla":0.1,"percentile":0.5})"));
  ASSERT_TRUE(capacity.bool_or("ok", false));
  EXPECT_GT(capacity.number_or("max_rate", -1.0), 0.0);
}

TEST(WhatIfService, TierSizeFindsSmallestSufficientTier) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  // Base cluster sits near p52 at 100 ms; a relaxed 60th-percentile
  // target is reachable with a modest SSD tier.
  const JsonValue tier = parse_response(service.handle_line(
      R"({"op":"tier_size","cluster":"a","sla":0.1,"percentile":0.6,)"
      R"("capacities":[0,1024,4096,16384]})"));
  ASSERT_TRUE(tier.bool_or("ok", false));
  ASSERT_TRUE(tier.bool_or("found", false));
  EXPECT_GT(tier.number_or("capacity_chunks", -1.0), 0.0);
  EXPECT_GT(tier.number_or("hit_ratio", -1.0), 0.0);
  EXPECT_GE(tier.number_or("percentile", -1.0), 0.6);
}

TEST(WhatIfService, ListAndStatsReflectRegistry) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  service.handle_line(
      R"({"op":"register","cluster":"b","rate":300,"devices":6})");
  const JsonValue list = parse_response(service.handle_line(R"({"op":"list"})"));
  ASSERT_TRUE(list.bool_or("ok", false));
  const JsonValue* clusters = list.find("clusters");
  ASSERT_NE(clusters, nullptr);
  ASSERT_EQ(clusters->items().size(), 2u);
  // Sorted, so list output does not depend on hash-map iteration order.
  EXPECT_EQ(clusters->items()[0].as_string(), "a");
  EXPECT_EQ(clusters->items()[1].as_string(), "b");

  service.handle_line(R"({"op":"sla","cluster":"a","sla":0.1})");
  const JsonValue response = parse_response(
      service.handle_line(R"({"op":"stats"})"));
  ASSERT_TRUE(response.bool_or("ok", false));
  const JsonValue* stats = response.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->number_or("clusters", -1.0), 2.0);
  const JsonValue* backend = stats->find("backend_cache");
  ASSERT_NE(backend, nullptr);
  EXPECT_GT(backend->number_or("shards", 0.0), 1.0);
}

TEST(WhatIfService, IdIsEchoedVerbatim) {
  WhatIfService service;
  const JsonValue reg = parse_response(service.handle_line(
      R"({"op":"register","cluster":"a","rate":400,"devices":8,"id":"req-17"})"));
  EXPECT_EQ(reg.string_or("id", ""), "req-17");
  // Echoed on errors too — correlation must survive failure.
  const JsonValue err = parse_response(
      service.handle_line(R"({"op":"nope","id":"req-18"})"));
  EXPECT_FALSE(err.bool_or("ok", true));
  EXPECT_EQ(err.string_or("id", ""), "req-18");
}

TEST(WhatIfService, ErrorPathsNeverThrow) {
  WhatIfService service;
  const std::vector<std::string> bad = {
      "not json at all",
      "{\"no_op\":1}",
      R"({"op":"unknown_op"})",
      R"({"op":"sla","cluster":"ghost","sla":0.1})",
      R"({"op":"sla","cluster":"a"})",  // registered below, missing sla
      R"({"op":"register","cluster":"a","rate":-5,"devices":8})",
      R"({"op":"register","cluster":"a","rate":400,"devices":0})",
  };
  service.handle_line(kRegisterA);
  for (const std::string& line : bad) {
    const JsonValue response = parse_response(service.handle_line(line));
    EXPECT_FALSE(response.bool_or("ok", true)) << line;
    EXPECT_FALSE(response.string_or("error", "").empty()) << line;
  }
  // The service survives all of it and still answers.
  const JsonValue ok = parse_response(
      service.handle_line(R"({"op":"sla","cluster":"a","sla":0.1})"));
  EXPECT_TRUE(ok.bool_or("ok", false));
}

TEST(WhatIfService, OverloadIsAResultNotAnError) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  // 50x the registered rate saturates the cluster: the what-if convention
  // reports percentile 0 with an overloaded marker, not an error.
  const JsonValue response = parse_response(service.handle_line(
      R"({"op":"sla","cluster":"a","sla":0.1,"rate":20000})"));
  ASSERT_TRUE(response.bool_or("ok", false));
  EXPECT_TRUE(response.bool_or("overloaded", false));
  EXPECT_EQ(response.number_or("percentile", -1.0), 0.0);
}

TEST(WhatIfService, RepeatedQueriesAreByteIdentical) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  const std::string query = R"({"op":"sla","cluster":"a","slas":[0.05,0.1]})";
  const std::string first = service.handle_line(query);
  // Second time is served from the shared cache; bytes must not change.
  EXPECT_EQ(service.handle_line(query), first);
  EXPECT_EQ(service.handle_line(query), first);
}

TEST(WhatIfService, SimdModeByteIdenticalToExactMode) {
  ServiceConfig exact_config;
  exact_config.tape_mode = numerics::TapeEvalMode::kExact;
  WhatIfService exact(exact_config);
  WhatIfService simd;  // default mode is kSimd
  const std::vector<std::string> script = {
      kRegisterA,
      R"({"op":"sla","cluster":"a","slas":[0.05,0.1,0.15,0.25]})",
      R"({"op":"quantile","cluster":"a","p":0.95})",
      R"({"op":"devices","cluster":"a","sla":0.1,"percentile":0.9})",
  };
  for (const std::string& line : script) {
    EXPECT_EQ(simd.handle_line(line), exact.handle_line(line)) << line;
  }
}

TEST(WhatIfService, ConcurrentMixedTenantsStayConsistent) {
  WhatIfService service;
  for (int t = 0; t < 4; ++t) {
    const std::string reg = R"({"op":"register","cluster":"t)" +
                            std::to_string(t) + R"(","rate":)" +
                            std::to_string(300 + 50 * t) + R"(,"devices":8})";
    ASSERT_TRUE(parse_response(service.handle_line(reg)).bool_or("ok", false));
  }
  // One reference response per tenant, computed single-threaded.
  std::vector<std::string> queries;
  std::vector<std::string> expected;
  for (int t = 0; t < 4; ++t) {
    queries.push_back(R"({"op":"sla","cluster":"t)" + std::to_string(t) +
                      R"(","slas":[0.05,0.1]})");
    expected.push_back(service.handle_line(queries.back()));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 20; ++round) {
        const std::size_t t = static_cast<std::size_t>((w + round) % 4);
        if (service.handle_line(queries[t]) != expected[t]) ++mismatches;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---- online calibration ops (calibrate / drift_status) ----

bool alarms_contain(const JsonValue& response, const std::string& name) {
  const JsonValue* alarms = response.find("alarms");
  if (alarms == nullptr) return false;
  for (const JsonValue& alarm : alarms->items()) {
    if (alarm.is_string() && alarm.as_string() == name) return true;
  }
  return false;
}

std::string calibrate_line(double rate, double mean_service_ms,
                           bool first = false) {
  std::string line = R"({"op":"calibrate","cluster":"a","rate":)" +
                     std::to_string(rate) + R"(,"mean_service_ms":)" +
                     std::to_string(mean_service_ms);
  if (first) {
    // Latch tight knobs at the first call so the test stays short.
    line += R"(,"warmup_windows":2,"confirm_windows":2,"cooldown_windows":1)";
  }
  return line + "}";
}

TEST(WhatIfServiceDrift, CalibrateRefitsSpecOnConfirmedShift) {
  WhatIfService service;
  service.handle_line(kRegisterA);

  // Before any calibrate call the loop is idle.
  const JsonValue idle = parse_response(
      service.handle_line(R"({"op":"drift_status","cluster":"a"})"));
  ASSERT_TRUE(idle.bool_or("ok", false));
  EXPECT_EQ(idle.string_or("verdict", ""), "idle");

  // Stationary stream: warmup, then stable — never a re-fit.
  JsonValue response =
      parse_response(service.handle_line(calibrate_line(400, 5, true)));
  EXPECT_EQ(response.string_or("verdict", ""), "warmup");
  response = parse_response(service.handle_line(calibrate_line(400, 5)));
  EXPECT_EQ(response.string_or("verdict", ""), "warmup");
  response = parse_response(service.handle_line(calibrate_line(400, 5)));
  EXPECT_EQ(response.string_or("verdict", ""), "stable");
  EXPECT_FALSE(response.bool_or("refit", true));

  // 2x rate shift: alarm, then confirmed drift with an in-place re-fit.
  response = parse_response(service.handle_line(calibrate_line(800, 5)));
  EXPECT_EQ(response.string_or("verdict", ""), "alarm");
  EXPECT_TRUE(alarms_contain(response, "arrival_rate"));
  response = parse_response(service.handle_line(calibrate_line(800, 5)));
  ASSERT_TRUE(response.bool_or("ok", false));
  EXPECT_EQ(response.string_or("verdict", ""), "drift");
  EXPECT_TRUE(response.bool_or("refit", false));
  EXPECT_DOUBLE_EQ(response.number_or("rate", 0.0), 800.0);

  // The registered family now answers what-ifs at the drifted rate.
  const JsonValue status = parse_response(
      service.handle_line(R"({"op":"drift_status","cluster":"a"})"));
  EXPECT_DOUBLE_EQ(status.number_or("rate", 0.0), 800.0);
  EXPECT_DOUBLE_EQ(status.number_or("refits", 0.0), 1.0);
  EXPECT_EQ(status.string_or("verdict", ""), "drift");
  EXPECT_DOUBLE_EQ(status.number_or("windows", 0.0), 5.0);
  const JsonValue sla = parse_response(
      service.handle_line(R"({"op":"sla","cluster":"a","sla":0.5})"));
  EXPECT_TRUE(sla.bool_or("ok", false));
}

TEST(WhatIfServiceDrift, InsufficientWindowIsSkippedNotScored) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  const JsonValue thin = parse_response(service.handle_line(
      R"({"op":"calibrate","cluster":"a","rate":400,"mean_service_ms":5,)"
      R"("samples":5,"min_samples":50})"));
  ASSERT_TRUE(thin.bool_or("ok", false));
  EXPECT_EQ(thin.string_or("verdict", ""), "insufficient");
  EXPECT_FALSE(thin.bool_or("refit", true));
  const JsonValue status = parse_response(
      service.handle_line(R"({"op":"drift_status","cluster":"a"})"));
  EXPECT_DOUBLE_EQ(status.number_or("windows", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(status.number_or("insufficient", 0.0), 1.0);
}

TEST(WhatIfServiceDrift, CalibrateErrorPaths) {
  WhatIfService service;
  service.handle_line(kRegisterA);
  // Unknown cluster, bad rate, and the r_d >= r identity all come back
  // as error lines, never throws.
  JsonValue response = parse_response(service.handle_line(
      R"({"op":"calibrate","cluster":"nope","rate":400,"mean_service_ms":5})"));
  EXPECT_FALSE(response.bool_or("ok", true));
  response = parse_response(service.handle_line(
      R"({"op":"calibrate","cluster":"a","rate":0,"mean_service_ms":5})"));
  EXPECT_FALSE(response.bool_or("ok", true));
  response = parse_response(service.handle_line(
      R"({"op":"calibrate","cluster":"a","rate":400,"mean_service_ms":5,)"
      R"("data_read_rate":100})"));
  EXPECT_FALSE(response.bool_or("ok", true));
  response = parse_response(
      service.handle_line(R"({"op":"drift_status","cluster":"nope"})"));
  EXPECT_FALSE(response.bool_or("ok", true));
}

TEST(ClusterSpec, BuildValidatesAndSplitsTrafficEvenly) {
  const ClusterSpec spec;
  const core::SystemParams params = spec.build(400.0, 8);
  params.validate();
  EXPECT_EQ(params.devices.size(), 8u);
  const core::SystemParams wider = spec.build(400.0, 16);
  EXPECT_EQ(wider.devices.size(), 16u);
}

}  // namespace
}  // namespace cosm::service
