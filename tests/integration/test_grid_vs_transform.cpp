// Integration: two independent numerical paths through the full model.
//
// The model's response CDF (Eq. 2: S_q * W_a * S_be) is evaluated (a)
// through Laplace transforms + Euler inversion (the production path) and
// (b) by discretizing each component and convolving grids via FFT.  The
// two pipelines share no numerical machinery beyond the component
// definitions, so agreement across loads and SLAs is strong evidence both
// are computing Eq. 2 correctly.
#include <gtest/gtest.h>

#include <memory>

#include "core/system_model.hpp"
#include "numerics/grid.hpp"

namespace cosm {
namespace {

using numerics::GridDensity;

core::SystemParams one_device(double rate, unsigned processes) {
  core::SystemParams params;
  params.frontend.arrival_rate = rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse =
      std::make_shared<numerics::Degenerate>(0.8e-3);
  core::DeviceParams device;
  device.arrival_rate = rate;
  device.data_read_rate = rate * 1.2;
  device.index_miss_ratio = 0.3;
  device.meta_miss_ratio = 0.3;
  device.data_miss_ratio = 0.7;
  device.index_disk = std::make_shared<numerics::Gamma>(3.0, 300.0);
  device.meta_disk = std::make_shared<numerics::Gamma>(2.5, 312.5);
  device.data_disk = std::make_shared<numerics::Gamma>(2.8, 233.33);
  device.backend_parse = std::make_shared<numerics::Degenerate>(0.5e-3);
  device.processes = processes;
  params.devices.push_back(std::move(device));
  return params;
}

class GridVsTransform
    : public ::testing::TestWithParam<std::tuple<double, unsigned>> {};

TEST_P(GridVsTransform, Eq2CdfAgreesAcrossPipelines) {
  const double rate = std::get<0>(GetParam());
  const unsigned processes = std::get<1>(GetParam());
  const core::SystemModel model(one_device(rate, processes));
  const auto& device = model.devices().front();
  const auto& backend = device.backend();

  // Grid convolution biases mass ~half a bin early per convolution (bin
  // masses convolve by start index), so the bin width directly bounds the
  // achievable agreement; 0.1 ms keeps the bias within the tolerance.
  constexpr double kDt = 1e-4;
  constexpr double kHorizon = 1.2;
  const auto max_bins = static_cast<std::size_t>(kHorizon / kDt) * 2;
  const GridDensity s_q = GridDensity::discretize(
      *model.frontend().queueing_latency(), kDt, kHorizon);
  const GridDensity w_a =
      GridDensity::discretize(*backend.waiting_time(), kDt, kHorizon);
  const GridDensity s_be =
      GridDensity::discretize(*backend.response_time(), kDt, kHorizon);
  const GridDensity response =
      s_q.convolve_with(w_a, max_bins).convolve_with(s_be, max_bins);

  for (double sla : {0.010, 0.030, 0.050, 0.100, 0.200}) {
    const double via_transform = device.response_time()->cdf(sla);
    const double via_grid = response.cdf(sla);
    EXPECT_NEAR(via_grid, via_transform, 1e-2)
        << "rate=" << rate << " N_be=" << processes << " sla=" << sla;
  }
}

INSTANTIATE_TEST_SUITE_P(LoadAndProcesses, GridVsTransform,
                         ::testing::Values(std::make_tuple(20.0, 1u),
                                           std::make_tuple(45.0, 1u),
                                           std::make_tuple(55.0, 1u),
                                           std::make_tuple(55.0, 16u)));

}  // namespace
}  // namespace cosm
