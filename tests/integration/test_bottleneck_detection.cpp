// End-to-end bottleneck-identification story (paper Sec. I application 2):
// a disk degrades mid-run; per-interval SLA accounting shows the
// regression; the model, rebuilt from post-degradation online metrics,
// pins the blame on the right device via Eq. 3's decomposition.
#include <gtest/gtest.h>

#include <memory>

#include "calibration/online_metrics.hpp"
#include "core/system_model.hpp"
#include "core/whatif.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/sla.hpp"

namespace cosm {
namespace {

TEST(BottleneckDetection, DegradedDiskIsIdentifiedByTheModel) {
  constexpr double kRate = 100.0;
  constexpr std::uint32_t kBadDevice = 2;
  constexpr double kDegradeAt = 150.0;

  sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = 909;
  sim::Cluster cluster(config);

  workload::CatalogConfig cat_config;
  cat_config.object_count = 10000;
  cat_config.size_distribution = workload::default_size_distribution();
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement(
      {.partition_count = 1024, .replica_count = 3, .device_count = 4});
  workload::PhasePlan plan;
  plan.warmup_duration = 0.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = kRate;
  plan.benchmark_end_rate = kRate;
  plan.benchmark_step_duration = 300.0;
  sim::OpenLoopSource source(cluster, catalog, placement, plan,
                             cosm::Rng(11));
  source.start();

  // Degrade device 2's disk by 2.5x mid-run.
  cluster.engine().schedule_at(kDegradeAt, [&cluster] {
    cluster.device(kBadDevice).disk().set_degradation(2.5);
  });
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  // Per-interval SLA accounting shows the regression.
  stats::SlaCounter counter({0.100}, 30.0);
  for (const auto& sample : cluster.metrics().requests()) {
    counter.record(sample.frontend_arrival, sample.response_latency);
  }
  const double before = counter.fraction_met_over(0, 1, 5);    // 30..150 s
  const double after = counter.fraction_met_over(
      0, 6, counter.interval_count());                         // 180 s ...
  EXPECT_GT(before, after + 0.05)
      << "degradation must visibly hurt SLA compliance";

  // Rebuild the model from post-degradation observations: rates and miss
  // ratios from counters, per-device disk means from the measured busy
  // time (an operator's iostat view picks up the slowdown per device).
  core::SystemParams params;
  params.frontend.processes = config.frontend_processes;
  params.frontend.frontend_parse = cluster.config().frontend_parse;
  double total_rate = 0.0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    const auto obs = calibration::observe_device(cluster.metrics(), d,
                                                 source.horizon());
    core::DeviceParams device;
    device.arrival_rate = obs.request_rate;
    device.data_read_rate = obs.data_read_rate;
    device.index_miss_ratio = obs.index_miss_ratio;
    device.meta_miss_ratio = obs.meta_miss_ratio;
    device.data_miss_ratio = obs.data_miss_ratio;
    // Rescale the profile dists to the measured per-kind means (which
    // embed the degradation on the bad device).
    const auto profile = cluster.config().disk;
    const auto rescale = [&](const numerics::DistPtr& dist,
                             sim::AccessKind kind) -> numerics::DistPtr {
      const double measured =
          cluster.metrics().mean_disk_service(d, kind);
      if (measured <= 0) return dist;
      const auto* gamma =
          dynamic_cast<const numerics::Gamma*>(dist.get());
      return std::make_shared<numerics::Gamma>(
          gamma->shape(), gamma->shape() / measured);
    };
    device.index_disk =
        rescale(profile.index_service, sim::AccessKind::kIndex);
    device.meta_disk = rescale(profile.meta_service, sim::AccessKind::kMeta);
    device.data_disk = rescale(profile.data_service, sim::AccessKind::kData);
    device.backend_parse = cluster.config().backend_parse;
    device.processes = 1;
    total_rate += obs.request_rate;
    params.devices.push_back(std::move(device));
  }
  params.frontend.arrival_rate = total_rate;

  const core::SystemModel model(params);
  const auto blame = core::sla_miss_contributions(model, 0.100);
  // The degraded device tops the ranking with a dominant share.
  EXPECT_EQ(blame.front().first, kBadDevice);
  EXPECT_GT(blame.front().second, 0.4);
}

TEST(BottleneckDetection, HealthyClusterBlamesNobodyInParticular) {
  // Without degradation, contributions should be roughly even (hash
  // imbalance only).
  sim::ClusterConfig config;
  config.device_count = 4;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = 4;
  sim::Cluster cluster(config);
  core::SystemParams params;
  params.frontend.processes = 3;
  params.frontend.frontend_parse = cluster.config().frontend_parse;
  for (int d = 0; d < 4; ++d) {
    core::DeviceParams device;
    device.arrival_rate = 25.0;
    device.data_read_rate = 30.0;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = cluster.config().disk.index_service;
    device.meta_disk = cluster.config().disk.meta_service;
    device.data_disk = cluster.config().disk.data_service;
    device.backend_parse = cluster.config().backend_parse;
    device.processes = 1;
    params.devices.push_back(std::move(device));
  }
  params.frontend.arrival_rate = 100.0;
  const core::SystemModel model(params);
  const auto blame = core::sla_miss_contributions(model, 0.100);
  for (const auto& [device, share] : blame) {
    EXPECT_NEAR(share, 0.25, 0.02) << device;
  }
}

}  // namespace
}  // namespace cosm
