// The headline integration test: the full paper model (Eq. 1–3) against
// the full mechanism simulator — a single-rate-point slice of Fig. 6.
//
// Probabilistic caches make the miss-ratio inputs exact, ground-truth
// distributions are fed to the model directly (isolating queueing-model
// error from calibration error), and predicted percentiles are compared
// to observed percentiles at the paper's SLAs.  The paper reports ~3–4%
// mean error for S1 with a worst case of ~15%; the assertions allow 9
// percentage points at moderate load.
#include <gtest/gtest.h>

#include <memory>

#include "calibration/online_metrics.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace cosm {
namespace {

using numerics::Degenerate;
using numerics::Gamma;

struct MiniExperiment {
  double observed[3];   // fraction meeting 10/50/100 ms
  double predicted[3];
};

MiniExperiment run_point(double rate, std::uint32_t processes_per_device,
                         std::uint64_t seed) {
  sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = processes_per_device;
  config.frontend_parse = std::make_shared<Degenerate>(0.0008);
  config.backend_parse = std::make_shared<Degenerate>(0.0005);
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = seed;
  sim::Cluster cluster(config);

  workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = workload::default_size_distribution();
  cat_config.seed = seed + 1;
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement({.partition_count = 1024,
                                       .replica_count = 3,
                                       .device_count = 4,
                                       .seed = seed + 2});
  workload::PhasePlan plan;
  plan.warmup_rate = rate;
  plan.warmup_duration = 30.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = rate;
  plan.benchmark_end_rate = rate;
  plan.benchmark_step_duration = 300.0;

  sim::OpenLoopSource source(cluster, catalog, placement, plan,
                             cosm::Rng(seed + 3));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  // Observed percentiles.
  stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
  }
  MiniExperiment result{};
  const double slas[3] = {0.010, 0.050, 0.100};
  for (int i = 0; i < 3; ++i) {
    result.observed[i] = latencies.fraction_below(slas[i]);
  }

  // Model inputs from online observation + ground-truth distributions.
  core::SystemParams params;
  params.frontend.processes = config.frontend_processes;
  params.frontend.frontend_parse = config.frontend_parse;
  double total_rate = 0.0;
  const double window = source.horizon();
  for (std::uint32_t d = 0; d < 4; ++d) {
    const auto obs =
        calibration::observe_device(cluster.metrics(), d, window);
    core::DeviceParams device;
    device.arrival_rate = obs.request_rate;
    device.data_read_rate = obs.data_read_rate;
    device.index_miss_ratio = obs.index_miss_ratio;
    device.meta_miss_ratio = obs.meta_miss_ratio;
    device.data_miss_ratio = obs.data_miss_ratio;
    device.index_disk = cluster.config().disk.index_service;
    device.meta_disk = cluster.config().disk.meta_service;
    device.data_disk = cluster.config().disk.data_service;
    device.backend_parse = config.backend_parse;
    device.processes = processes_per_device;
    total_rate += obs.request_rate;
    params.devices.push_back(std::move(device));
  }
  params.frontend.arrival_rate = total_rate;

  const core::SystemModel model(params);
  for (int i = 0; i < 3; ++i) {
    result.predicted[i] = model.predict_sla_percentile(slas[i]);
  }
  return result;
}

class ModelVsSim
    : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(ModelVsSim, PredictionErrorWithinPaperRange) {
  const double rate = std::get<0>(GetParam());
  const std::uint32_t n_be = std::get<1>(GetParam());
  const MiniExperiment result = run_point(rate, n_be, 97);
  for (int i = 0; i < 3; ++i) {
    // Tolerance matches the paper's own worst cases (Table I: up to
    // 15.04% at S1/50ms, 16.61% at S16/10ms), which stem from the W_a
    // overestimation and M/M/1/K substitution the paper concedes.
    EXPECT_NEAR(result.predicted[i], result.observed[i], 0.17)
        << "rate=" << rate << " n_be=" << n_be << " sla#" << i;
  }
}

// Rates chosen around 35–60% device utilization for S1 and the same
// per-device load served by 16 processes for S16.
INSTANTIATE_TEST_SUITE_P(
    Scenarios, ModelVsSim,
    ::testing::Values(std::make_tuple(60.0, 1u), std::make_tuple(120.0, 1u),
                      std::make_tuple(120.0, 16u)));

TEST(ModelVsSim, ModelTracksLoadDirection) {
  // As load rises, both observed and predicted percentiles fall, and they
  // fall together.
  const MiniExperiment light = run_point(60.0, 1, 11);
  const MiniExperiment heavy = run_point(150.0, 1, 11);
  for (int i = 1; i < 3; ++i) {
    EXPECT_LT(heavy.observed[i], light.observed[i] + 0.02) << i;
    EXPECT_LT(heavy.predicted[i], light.predicted[i] + 0.02) << i;
  }
}

}  // namespace
}  // namespace cosm
