// Integration: the discrete-event simulator against queueing theory.
//
// With a single backend process, all-miss caches, single-chunk objects and
// zero network/accept costs, the backend is a work-conserving single
// server over the per-request operation chain parse * index * meta * data,
// i.e. *exactly* an M/G/1 queue.  The total backend delay measured from
// connection-pool entry to response start must match the M/G/1 sojourn
// time W * B computed by the queueing library through Laplace transforms.
// (The split of W between pool wait and op-queue wait is an artifact of
// batch accept; their sum is the virtual waiting time.)  This
// cross-validates both artifacts: the simulator's FCFS/blocking mechanics
// and the P–K transform/inversion pipeline — and it also demonstrates the
// overestimation the paper concedes for its W_a = W_be approximation:
// the model adds a full extra W_a on top of the queue wait, while in the
// mechanism pool wait and queue wait share one W.
#include <gtest/gtest.h>

#include <memory>

#include "numerics/compose.hpp"
#include "queueing/mg1.hpp"
#include "sim/cluster.hpp"
#include "stats/summary.hpp"

namespace cosm {
namespace {

using numerics::Convolution;
using numerics::Degenerate;
using numerics::DistPtr;
using numerics::Gamma;

struct SimObservation {
  // pool entry -> response start: the M/G/1 sojourn of the backend.
  stats::SampleSet backend_total;
  // op-queue entry -> response start (excludes the pool share of W).
  stats::SampleSet backend_latency;
  stats::SampleSet response_latency;
  stats::SampleSet accept_wait;
};

SimObservation run_single_device(double arrival_rate, double duration,
                                 std::uint64_t seed) {
  sim::ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<Degenerate>(0.0002);
  config.backend_parse = std::make_shared<Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0;
  config.network_bandwidth_bytes_per_sec = 1e12;  // transfers ~ instant
  // Batch drain keeps the backend a single work-conserving queue (the
  // accept pass adds no extra queue traversal), which is what makes the
  // pool-to-response delay exactly the M/G/1 sojourn this test asserts.
  // The default accept-one strategy deliberately adds a second queue pass
  // (the paper's W_a) and is exercised by the model-vs-sim tests instead.
  config.accept_strategy = sim::AcceptStrategy::kBatchDrain;
  config.defer_accepts = false;
  config.chunk_bytes = 65536;
  config.disk = {std::make_shared<Gamma>(3.0, 300.0),
                 std::make_shared<Gamma>(2.5, 312.5),
                 std::make_shared<Gamma>(2.8, 233.33), nullptr, nullptr};
  config.cache.index_miss_ratio = 1.0;
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  config.seed = seed;
  sim::Cluster cluster(config);

  // Single-chunk objects: every request is parse+index+meta+data.
  cosm::Rng arrivals(seed * 7919 + 1);
  double t = 0.0;
  while (true) {
    t += arrivals.exponential(arrival_rate);
    if (t >= duration) break;
    cluster.engine().schedule_at(t, [&cluster] {
      cluster.submit_request(/*object_id=*/1, /*size_bytes=*/1000, 0);
    });
  }
  cluster.engine().run_all();

  SimObservation obs;
  for (const auto& sample : cluster.metrics().requests()) {
    // Skip the cold start: the first 10% of the run.
    if (sample.frontend_arrival < 0.1 * duration) continue;
    // Two network hops sit between accept and op-queue entry; they are
    // zero in this configuration, so accept_wait + backend_latency is the
    // pool-to-response delay.
    obs.backend_total.add(sample.accept_wait + sample.backend_latency);
    obs.backend_latency.add(sample.backend_latency);
    obs.response_latency.add(sample.response_latency);
    obs.accept_wait.add(sample.accept_wait);
  }
  return obs;
}

DistPtr operation_chain() {
  return std::make_shared<Convolution>(std::vector<DistPtr>{
      std::make_shared<Degenerate>(0.0005),
      std::make_shared<Gamma>(3.0, 300.0),
      std::make_shared<Gamma>(2.5, 312.5),
      std::make_shared<Gamma>(2.8, 233.33)});
}

class SimVsMG1 : public ::testing::TestWithParam<double> {};

TEST_P(SimVsMG1, BackendLatencyDistributionMatchesEq1) {
  const double rho = GetParam();
  const DistPtr service = operation_chain();  // mean 30.5 ms
  const double rate = rho / service->mean();
  const SimObservation obs = run_single_device(rate, 600.0, 20240704);
  ASSERT_GT(obs.backend_total.count(), 3000u);

  const queueing::MG1 model(rate, service);
  const DistPtr sojourn = model.sojourn_time();

  // Means agree within Monte-Carlo noise.
  EXPECT_NEAR(obs.backend_total.mean(), sojourn->mean(),
              0.08 * sojourn->mean())
      << "rho=" << rho;
  // CDF agreement at the paper's SLA points and around the body.
  for (double sla : {0.010, 0.050, 0.100, 0.200}) {
    const double simulated = obs.backend_total.fraction_below(sla);
    const double predicted = sojourn->cdf(sla);
    EXPECT_NEAR(simulated, predicted, 0.03)
        << "rho=" << rho << " sla=" << sla;
  }
}

INSTANTIATE_TEST_SUITE_P(Load, SimVsMG1, ::testing::Values(0.3, 0.5, 0.7));

TEST(SimVsMG1, AcceptWaitTracksMG1WaitingTimeUnderLoad) {
  // The paper's WTA model: accept-wait distribution ~ the M/G/1 waiting
  // time of the op queue (PASTA + batch-accept approximation).  At
  // moderate load the simulated mean accept wait should be the same order
  // as the P–K mean wait; the approximation overestimates slightly at
  // higher loads (Sec. V-C), so assert order-of-magnitude agreement, not
  // equality.
  const DistPtr service = operation_chain();
  const double rho = 0.5;
  const double rate = rho / service->mean();
  const SimObservation obs = run_single_device(rate, 600.0, 99);
  const queueing::MG1 model(rate, service);
  const double pk_wait = model.mean_waiting_time();
  const double simulated = obs.accept_wait.mean();
  EXPECT_GT(simulated, 0.2 * pk_wait);
  EXPECT_LT(simulated, 1.8 * pk_wait);
}

TEST(SimVsMG1, ResponseLatencyIncludesFrontendAndAcceptComponents) {
  const DistPtr service = operation_chain();
  const double rate = 0.5 / service->mean();
  const SimObservation obs = run_single_device(rate, 300.0, 7);
  // Response latency strictly dominates backend latency (it adds frontend
  // parse and accept wait).
  EXPECT_GT(obs.response_latency.mean(), obs.backend_latency.mean());
  EXPECT_GE(obs.response_latency.quantile(0.5),
            obs.backend_latency.quantile(0.5));
}

}  // namespace
}  // namespace cosm
