// Randomized invariant tests ("fuzz") over the simulator and the model.
//
// Each seed generates a random-but-valid configuration and workload; the
// assertions are structural invariants that must hold for EVERY such
// configuration, so a failure pinpoints a real bug rather than a
// tolerance choice:
//   simulator — every arrival completes exactly once, latencies exceed
//               the irreducible path minimum, cache/disk accounting is
//               conserved (read disk ops == read misses);
//   model     — CDFs are monotone proper distributions, percentiles fall
//               with load, the union-operation mean matches the paper's
//               closed form.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"

namespace cosm {
namespace {

class SimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzz, ConservationInvariantsHoldForRandomConfigs) {
  cosm::Rng meta_rng(GetParam());
  sim::ClusterConfig config;
  config.frontend_processes = 1 + meta_rng.uniform_index(4);
  config.device_count = 1 + meta_rng.uniform_index(4);
  config.processes_per_device =
      meta_rng.bernoulli(0.5) ? 1 : 1 + meta_rng.uniform_index(8);
  config.cache.index_miss_ratio = meta_rng.uniform();
  config.cache.meta_miss_ratio = meta_rng.uniform();
  config.cache.data_miss_ratio = meta_rng.uniform();
  config.accept_strategy = meta_rng.bernoulli(0.5)
                               ? sim::AcceptStrategy::kAcceptOne
                               : sim::AcceptStrategy::kBatchDrain;
  config.defer_accepts = meta_rng.bernoulli(0.5);
  config.service_order = meta_rng.bernoulli(0.5)
                             ? sim::ClusterConfig::ServiceOrder::kFifo
                             : sim::ClusterConfig::ServiceOrder::kSiro;
  config.seed = meta_rng.next_u64();
  sim::Cluster cluster(config);

  workload::CatalogConfig cat_config;
  cat_config.object_count = 500 + meta_rng.uniform_index(3000);
  cat_config.zipf_skew = meta_rng.uniform(0.0, 1.2);
  cat_config.size_distribution = workload::default_size_distribution();
  cat_config.seed = meta_rng.next_u64();
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement(
      {.partition_count = 64,
       .replica_count = 1,
       .device_count = config.device_count,
       .seed = meta_rng.next_u64()});

  // Light load so even unlucky configurations drain quickly.
  workload::PhasePlan plan;
  plan.warmup_duration = 0.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate =
      5.0 * config.device_count * (1.0 + meta_rng.uniform());
  plan.benchmark_end_rate = plan.benchmark_start_rate;
  plan.benchmark_step_duration = 60.0;
  const double write_fraction =
      meta_rng.bernoulli(0.3) ? meta_rng.uniform(0.0, 0.2) : 0.0;
  sim::OpenLoopSource source(cluster, catalog, placement, plan,
                             cosm::Rng(meta_rng.next_u64()),
                             write_fraction);
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  // 1. Every arrival completes exactly once.
  EXPECT_EQ(cluster.metrics().completed_requests(), source.arrivals());
  EXPECT_EQ(cluster.metrics().requests().size(), source.arrivals());

  // 2. Latencies exceed the irreducible path minimum (parse costs + 4
  //    network hops) and are finite.
  const double floor = cluster.config().frontend_parse->mean() +
                       cluster.config().backend_parse->mean() +
                       3.0 * cluster.config().network_latency;
  for (const auto& sample : cluster.metrics().requests()) {
    ASSERT_GT(sample.response_latency, floor * 0.99);
    ASSERT_LT(sample.response_latency, 3600.0);
    ASSERT_GE(sample.accept_wait, 0.0);
  }

  // 3. Accounting conservation per device: read-path disk ops == read
  //    misses, and accesses >= misses.
  for (std::uint32_t d = 0; d < config.device_count; ++d) {
    const auto& counters = cluster.metrics().device(d);
    for (const auto kind : {sim::AccessKind::kIndex, sim::AccessKind::kMeta,
                            sim::AccessKind::kData}) {
      const auto k = static_cast<int>(kind);
      EXPECT_EQ(counters.disk_ops[k], counters.misses[k])
          << "device " << d << " kind " << k;
      EXPECT_GE(counters.accesses[k], counters.misses[k]);
    }
    // One index + one meta access per read request handled here.
    EXPECT_EQ(counters.accesses[0], counters.accesses[1]);
    // Data reads >= read requests (chunking only adds).
    EXPECT_GE(counters.data_reads + 1, counters.accesses[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

class ModelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelFuzz, ModelOutputsAreProperForRandomParameters) {
  cosm::Rng rng(GetParam() * 7919);
  core::DeviceParams device;
  device.index_miss_ratio = rng.uniform();
  device.meta_miss_ratio = rng.uniform();
  device.data_miss_ratio = rng.uniform(0.05, 1.0);
  device.index_disk =
      std::make_shared<numerics::Gamma>(rng.uniform(0.5, 6.0),
                                        rng.uniform(100.0, 600.0));
  device.meta_disk =
      std::make_shared<numerics::Gamma>(rng.uniform(0.5, 6.0),
                                        rng.uniform(100.0, 600.0));
  device.data_disk =
      std::make_shared<numerics::Gamma>(rng.uniform(0.5, 6.0),
                                        rng.uniform(100.0, 600.0));
  device.backend_parse =
      std::make_shared<numerics::Degenerate>(rng.uniform(1e-4, 2e-3));
  device.processes = rng.bernoulli(0.5) ? 1 : 1 + rng.uniform_index(16);

  // Pick a rate safely inside the stability region.  Two bounds matter:
  // the per-process union queue (scales with N_be) and the shared disk
  // (does not scale with N_be) — and for N_be > 1 the M/M/1/K sojourn
  // inflates the union mean well beyond the raw service times, so stay
  // conservative.
  const double disk_work =
      device.index_miss_ratio * device.index_disk->mean() +
      device.meta_miss_ratio * device.meta_disk->mean() +
      1.3 * device.data_miss_ratio * device.data_disk->mean();
  const double probe_mean = device.backend_parse->mean() + disk_work;
  const double capacity =
      std::min(static_cast<double>(device.processes) / probe_mean,
               1.0 / disk_work);
  device.arrival_rate = rng.uniform(0.1, 0.4) * capacity;
  device.data_read_rate = device.arrival_rate * rng.uniform(1.0, 1.3);

  core::SystemParams params;
  params.frontend.arrival_rate = device.arrival_rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse =
      std::make_shared<numerics::Degenerate>(0.8e-3);
  params.devices.push_back(device);

  const core::SystemModel model(params);
  // Union-operation mean matches the paper's closed form.
  const auto& backend = model.devices().front().backend();
  if (device.processes == 1) {
    const double p = (device.data_read_rate - device.arrival_rate) /
                     device.arrival_rate;
    const double expected =
        device.backend_parse->mean() +
        device.index_miss_ratio * device.index_disk->mean() +
        device.meta_miss_ratio * device.meta_disk->mean() +
        (1.0 + p) * device.data_miss_ratio * device.data_disk->mean();
    EXPECT_NEAR(backend.union_service()->mean(), expected, 1e-9);
  }
  // The percentile curve is a proper monotone CDF.
  double prev = 0.0;
  for (double sla : {0.005, 0.02, 0.05, 0.1, 0.3, 1.0, 4.0, 10.0}) {
    const double c = model.predict_sla_percentile(sla);
    ASSERT_GE(c, prev - 1e-7) << "sla=" << sla;
    ASSERT_GE(c, -1e-9);
    ASSERT_LE(c, 1.0 + 1e-9);
    prev = c;
  }
  EXPECT_GT(prev, 0.97);
  // More load, lower percentile.
  core::SystemParams heavier = params;
  heavier.devices[0].arrival_rate *= 1.4;
  heavier.devices[0].data_read_rate *= 1.4;
  heavier.frontend.arrival_rate *= 1.4;
  const core::SystemModel heavy(heavier);
  EXPECT_LE(heavy.predict_sla_percentile(0.05),
            model.predict_sla_percentile(0.05) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace cosm
