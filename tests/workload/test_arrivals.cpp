#include "workload/arrivals.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace cosm::workload {
namespace {

// Index of dispersion of counts over windows — 1 for Poisson, 0 for
// deterministic, > 1 for bursty processes.
double dispersion(ArrivalProcess& process, double rate, double window,
                  int windows, std::uint64_t seed) {
  cosm::Rng rng(seed);
  std::vector<double> counts(windows, 0.0);
  double t = 0.0;
  const double horizon = window * windows;
  while (true) {
    t += process.next_gap(rate, rng);
    if (t >= horizon) break;
    ++counts[static_cast<std::size_t>(t / window)];
  }
  double mean = 0.0;
  for (const double c : counts) mean += c;
  mean /= windows;
  double var = 0.0;
  for (const double c : counts) var += (c - mean) * (c - mean);
  var /= windows - 1;
  return var / mean;
}

double mean_rate(ArrivalProcess& process, double rate, double duration,
                 std::uint64_t seed) {
  cosm::Rng rng(seed);
  double t = 0.0;
  std::uint64_t n = 0;
  while (t < duration) {
    t += process.next_gap(rate, rng);
    ++n;
  }
  return static_cast<double>(n) / duration;
}

TEST(PoissonArrivals, UnitDispersionAndCorrectRate) {
  PoissonArrivals poisson;
  EXPECT_NEAR(mean_rate(poisson, 200.0, 500.0, 3), 200.0, 4.0);
  EXPECT_NEAR(dispersion(poisson, 200.0, 1.0, 400, 5), 1.0, 0.25);
}

TEST(DeterministicArrivals, ZeroDispersionExactRate) {
  DeterministicArrivals fixed;
  EXPECT_NEAR(mean_rate(fixed, 100.0, 100.0, 1), 100.0, 0.2);
  EXPECT_LT(dispersion(fixed, 100.0, 1.0, 100, 1), 0.05);
}

TEST(MmppArrivals, PreservesMeanRateAndAddsBurstiness) {
  MmppArrivals bursty(0.8, 2.0);
  EXPECT_NEAR(mean_rate(bursty, 200.0, 1000.0, 7), 200.0, 6.0);
  // Dispersion well above Poisson's 1 at window ~ dwell scale.
  EXPECT_GT(dispersion(bursty, 200.0, 2.0, 400, 9), 2.0);
}

TEST(MmppArrivals, ZeroAmplitudeIsPoissonLike) {
  MmppArrivals calm(0.0, 1.0);
  EXPECT_NEAR(dispersion(calm, 200.0, 1.0, 400, 11), 1.0, 0.25);
}

TEST(MmppArrivals, Validation) {
  EXPECT_THROW(MmppArrivals(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MmppArrivals(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(MmppArrivals(0.5, 0.0), std::invalid_argument);
  PoissonArrivals poisson;
  cosm::Rng rng(1);
  EXPECT_THROW(poisson.next_gap(0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::workload
