// Workload substrate tests: catalog statistics, Swift-style placement
// invariants, trace generation phase structure, and CSV round-tripping.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "workload/catalog.hpp"
#include "workload/placement.hpp"
#include "workload/trace.hpp"

namespace cosm::workload {
namespace {

CatalogConfig small_catalog_config() {
  CatalogConfig config;
  config.object_count = 5000;
  config.zipf_skew = 0.9;
  config.size_distribution = default_size_distribution();
  config.seed = 11;
  return config;
}

TEST(ObjectCatalog, MeanSizeNearConfiguredMean) {
  CatalogConfig config = small_catalog_config();
  config.object_count = 50000;
  const ObjectCatalog catalog(config);
  // Lognormal mean 32KB; the max-size clamp trims the far tail slightly.
  EXPECT_NEAR(catalog.mean_object_size(), 32.0 * 1024, 4000.0);
}

TEST(ObjectCatalog, SizesAreStableAndBounded) {
  const ObjectCatalog catalog(small_catalog_config());
  for (ObjectId id = 0; id < 100; ++id) {
    const auto size = catalog.size_of(id);
    EXPECT_GE(size, 256u);
    EXPECT_LE(size, 64ull << 20);
    EXPECT_EQ(size, catalog.size_of(id));  // deterministic per object
  }
  EXPECT_THROW(catalog.size_of(catalog.object_count()),
               std::invalid_argument);
}

TEST(ObjectCatalog, PopularObjectsDominateSamples) {
  const ObjectCatalog catalog(small_catalog_config());
  cosm::Rng rng(2);
  std::uint64_t top_decile = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (catalog.sample_object(rng) < catalog.object_count() / 10) {
      ++top_decile;
    }
  }
  // With skew 0.9 over 5000 objects the top 10% of ranks draw well over
  // half the traffic — the long-tail property the paper relies on.
  EXPECT_GT(static_cast<double>(top_decile) / kN, 0.5);
}

TEST(ObjectCatalog, ExpectedChunksMatchesDirectComputation) {
  const ObjectCatalog catalog(small_catalog_config());
  const std::uint64_t chunk = 65536;
  double direct = 0.0;
  for (ObjectId id = 0; id < catalog.object_count(); ++id) {
    direct += catalog.popularity(id) *
              std::ceil(static_cast<double>(catalog.size_of(id)) /
                        static_cast<double>(chunk));
  }
  EXPECT_NEAR(catalog.expected_chunks_per_request(chunk), direct, 1e-12);
  // Chunks per request are at least 1 and grow as chunks shrink.
  EXPECT_GE(catalog.expected_chunks_per_request(chunk), 1.0);
  EXPECT_GT(catalog.expected_chunks_per_request(4096),
            catalog.expected_chunks_per_request(chunk));
}

TEST(Placement, ReplicasAreDistinctDevices) {
  Placement placement({.partition_count = 1024,
                       .replica_count = 3,
                       .device_count = 4,
                       .seed = 5});
  for (std::uint32_t p = 0; p < placement.partition_count(); ++p) {
    const auto& replicas = placement.replicas_of_partition(p);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_NE(replicas[0], replicas[1]);
    EXPECT_NE(replicas[1], replicas[2]);
    EXPECT_NE(replicas[0], replicas[2]);
    for (const DeviceId d : replicas) EXPECT_LT(d, 4u);
  }
}

TEST(Placement, PartitionAssignmentIsDeterministicAndUniform) {
  Placement placement({.partition_count = 64,
                       .replica_count = 1,
                       .device_count = 4,
                       .seed = 5});
  std::vector<int> counts(64, 0);
  for (ObjectId id = 0; id < 64000; ++id) {
    const auto p = placement.partition_of(id);
    EXPECT_EQ(p, placement.partition_of(id));
    ++counts[p];
  }
  for (const int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(Placement, TrafficShareSumsToOneAndIsBalanced) {
  const ObjectCatalog catalog(small_catalog_config());
  Placement placement({.partition_count = 1024,
                       .replica_count = 3,
                       .device_count = 4,
                       .seed = 5});
  const auto share = placement.traffic_share(catalog);
  ASSERT_EQ(share.size(), 4u);
  double total = 0.0;
  for (const double s : share) {
    total += s;
    // Even distribution over 4 devices => ~0.25 each; hashing noise and
    // Zipf head objects leave a few percent of imbalance.
    EXPECT_NEAR(s, 0.25, 0.08);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Placement, ChooseReplicaCoversAllReplicas) {
  Placement placement({.partition_count = 16,
                       .replica_count = 3,
                       .device_count = 5,
                       .seed = 1});
  cosm::Rng rng(3);
  const ObjectId id = 7;
  const auto replicas = placement.replicas_of(id);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 3000; ++i) ++seen[placement.choose_replica(id, rng)];
  for (const DeviceId d : replicas) EXPECT_GT(seen[d], 800);
}

TEST(Placement, Validation) {
  EXPECT_THROW(Placement({.partition_count = 0}), std::invalid_argument);
  EXPECT_THROW(Placement({.partition_count = 8,
                          .replica_count = 5,
                          .device_count = 4}),
               std::invalid_argument);
}

TEST(ExpandPhases, PaperStructure) {
  PhasePlan plan;  // paper defaults: 3h warmup, 1h transition, 10..350 by 5
  const auto segments = expand_phases(plan);
  ASSERT_GE(segments.size(), 3u);
  EXPECT_FALSE(segments[0].is_benchmark);
  EXPECT_EQ(segments[0].rate, 300.0);
  EXPECT_EQ(segments[0].duration, 10800.0);
  EXPECT_FALSE(segments[1].is_benchmark);
  EXPECT_EQ(segments[1].rate, 10.0);
  // Benchmark segments: rates 10, 15, ..., 350 => 69 segments.
  std::size_t benchmark_count = 0;
  for (const auto& s : segments) benchmark_count += s.is_benchmark ? 1 : 0;
  EXPECT_EQ(benchmark_count, 69u);
  EXPECT_EQ(segments.back().rate, 350.0);
  // Segments tile the timeline with no gaps.
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_NEAR(segments[i].start_time,
                segments[i - 1].start_time + segments[i - 1].duration,
                1e-9);
  }
}

TEST(GenerateTrace, RatesMatchPlan) {
  PhasePlan plan;
  plan.warmup_rate = 100.0;
  plan.warmup_duration = 50.0;
  plan.transition_rate = 10.0;
  plan.transition_duration = 20.0;
  plan.benchmark_start_rate = 50.0;
  plan.benchmark_end_rate = 50.0;
  plan.benchmark_rate_step = 5.0;
  plan.benchmark_step_duration = 40.0;
  const ObjectCatalog catalog(small_catalog_config());
  cosm::Rng rng(17);
  const auto trace = generate_trace_vector(plan, catalog, rng);
  // Expected 100*50 + 10*20 + 50*40 = 7200 requests.
  EXPECT_NEAR(static_cast<double>(trace.size()), 7200.0, 300.0);
  // Timestamps are sorted and within the plan horizon.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].timestamp, trace[i].timestamp);
  }
  EXPECT_LT(trace.back().timestamp, 110.0);
  // Count arrivals inside the warmup window only.
  std::size_t warmup_arrivals = 0;
  for (const auto& rec : trace) {
    if (rec.timestamp < 50.0) ++warmup_arrivals;
  }
  EXPECT_NEAR(static_cast<double>(warmup_arrivals), 5000.0, 250.0);
}

TEST(GenerateTrace, RecordsCarryCatalogSizes) {
  PhasePlan plan;
  plan.warmup_duration = 0.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = 20.0;
  plan.benchmark_end_rate = 20.0;
  plan.benchmark_step_duration = 10.0;
  const ObjectCatalog catalog(small_catalog_config());
  cosm::Rng rng(23);
  const auto trace = generate_trace_vector(plan, catalog, rng);
  ASSERT_FALSE(trace.empty());
  for (const auto& rec : trace) {
    EXPECT_EQ(rec.size_bytes, catalog.size_of(rec.object_id));
  }
}

TEST(TraceCsv, RoundTrips) {
  const std::vector<TraceRecord> trace = {
      {0.5, 42, 1024}, {1.25, 7, 65536}, {2.0, 42, 1024}};
  std::stringstream buffer;
  write_trace_csv(buffer, trace);
  const auto parsed = read_trace_csv(buffer);
  ASSERT_EQ(parsed.size(), 3u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].timestamp, trace[i].timestamp);
    EXPECT_EQ(parsed[i].object_id, trace[i].object_id);
    EXPECT_EQ(parsed[i].size_bytes, trace[i].size_bytes);
  }
}

TEST(TraceCsv, RejectsGarbage) {
  std::istringstream bad_header("time,oid\n1,2,3\n");
  EXPECT_THROW(read_trace_csv(bad_header), std::invalid_argument);
  std::istringstream bad_line(
      "timestamp,object_id,size_bytes\nnot,a,number\n");
  EXPECT_THROW(read_trace_csv(bad_line), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::workload
