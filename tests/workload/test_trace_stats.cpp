#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cosm::workload {
namespace {

CatalogConfig catalog_config(double skew) {
  CatalogConfig config;
  config.object_count = 20000;
  config.zipf_skew = skew;
  config.size_distribution = default_size_distribution();
  config.seed = 19;
  return config;
}

std::vector<TraceRecord> synthesize(double skew, double rate,
                                    double duration) {
  const ObjectCatalog catalog(catalog_config(skew));
  PhasePlan plan;
  plan.warmup_duration = 0.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = rate;
  plan.benchmark_end_rate = rate;
  plan.benchmark_step_duration = duration;
  cosm::Rng rng(23);
  return generate_trace_vector(plan, catalog, rng);
}

TEST(TraceSummary, RecoversRateAndSizes) {
  const auto trace = synthesize(0.9, 200.0, 300.0);
  const TraceSummary summary = summarize_trace(trace);
  EXPECT_EQ(summary.requests, trace.size());
  EXPECT_NEAR(summary.mean_rate, 200.0, 10.0);
  // Lognormal sizes: mean ~32KB, median well below the mean, p95 above.
  EXPECT_NEAR(summary.mean_size, 32.0 * 1024, 5000.0);
  EXPECT_LT(summary.median_size, summary.mean_size);
  EXPECT_GT(summary.p95_size, summary.mean_size);
  EXPECT_GT(summary.distinct_objects, 1000u);
  EXPECT_LE(summary.distinct_objects, 20000u);
}

TEST(TraceSummary, LongTailShowsInTopPercentShare) {
  const auto skewed = summarize_trace(synthesize(1.1, 150.0, 300.0));
  const auto uniform = summarize_trace(synthesize(0.0, 150.0, 300.0));
  EXPECT_GT(skewed.top_percent_share, 0.25);
  EXPECT_LT(uniform.top_percent_share, 0.10);
}

TEST(TraceSummary, RejectsEmptyTrace) {
  EXPECT_THROW(summarize_trace(std::vector<TraceRecord>{}),
               std::invalid_argument);
}

class ZipfSkewRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewRecovery, EstimateTracksGroundTruth) {
  const double skew = GetParam();
  const auto trace = synthesize(skew, 400.0, 600.0);
  const double estimated = estimate_zipf_skew(trace);
  // Rank-regression on finite samples is biased low for mild skews (the
  // sampled tail flattens); a loose band still separates the regimes.
  EXPECT_NEAR(estimated, skew, 0.2) << "skew=" << skew;
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewRecovery,
                         ::testing::Values(0.7, 0.9, 1.1));

TEST(ZipfSkew, UniformTrafficEstimatesNearZero) {
  // Rank regression on observed counts is biased upward by sampling noise
  // (sorting Poisson counts manufactures a slope); with ~45 hits per
  // object the residual bias is small.
  const auto trace = synthesize(0.0, 600.0, 1500.0);
  EXPECT_LT(estimate_zipf_skew(trace), 0.2);
}

TEST(ZipfSkew, RequiresEnoughHeadObjects) {
  // Tiny trace: nothing reaches min_count.
  const auto trace = synthesize(0.5, 5.0, 5.0);
  EXPECT_THROW(estimate_zipf_skew(trace, 50), std::invalid_argument);
}

TEST(EmpiricalCatalog, ReproducesTraceStatistics) {
  const auto trace = synthesize(0.9, 150.0, 400.0);
  const EmpiricalCatalog empirical = catalog_from_trace(trace);
  const auto counts = object_counts(trace);
  EXPECT_EQ(empirical.catalog.object_count(), counts.size());
  // Ranks are popularity-ordered and sizes survive the mapping.
  for (const auto& record : trace) {
    const ObjectId rank = empirical.rank_of.at(record.object_id);
    EXPECT_EQ(empirical.catalog.size_of(rank), record.size_bytes);
  }
  // Rank 0's popularity equals the hottest object's observed share.
  std::uint64_t hottest = 0;
  for (const auto& [id, count] : counts) hottest = std::max(hottest, count);
  EXPECT_NEAR(empirical.catalog.popularity(0),
              static_cast<double>(hottest) /
                  static_cast<double>(trace.size()),
              1e-12);
  // Sampling from the empirical catalog reproduces the head share.
  cosm::Rng rng(5);
  std::uint64_t head_hits = 0;
  constexpr int kN = 100000;
  const auto head = empirical.catalog.object_count() / 100;
  for (int i = 0; i < kN; ++i) {
    if (empirical.catalog.sample_object(rng) < head) ++head_hits;
  }
  const TraceSummary summary = summarize_trace(trace);
  EXPECT_NEAR(static_cast<double>(head_hits) / kN,
              summary.top_percent_share, 0.03);
}

TEST(EmpiricalCatalog, RejectsEmptyTrace) {
  EXPECT_THROW(catalog_from_trace(std::vector<TraceRecord>{}),
               std::invalid_argument);
}

TEST(ObjectCounts, SumsToTraceSize) {
  const auto trace = synthesize(0.9, 100.0, 100.0);
  const auto counts = object_counts(trace);
  std::uint64_t total = 0;
  for (const auto& [id, count] : counts) total += count;
  EXPECT_EQ(total, trace.size());
}

}  // namespace
}  // namespace cosm::workload
