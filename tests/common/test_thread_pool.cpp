#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cosm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_for_index(kN, [&](std::size_t i) {
    touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_index(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_index(
                   100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("index 37");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, SingleThreadPoolStillCompletesWork) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for_index(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ManyTasksCompleteBeforeDestruction) {
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i) {
      futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(done.load(), 500);
}

}  // namespace
}  // namespace cosm
