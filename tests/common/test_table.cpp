#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace cosm {
namespace {

TEST(Table, PrintsAlignedColumnsWithTitle) {
  Table table({"rate", "observed", "predicted"});
  table.add_row({"10", "0.95", "0.94"});
  table.add_row({"350", "0.41", "0.45"});
  std::ostringstream os;
  table.print(os, "Fig. 6 (a)");
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig. 6 (a)"), std::string::npos);
  EXPECT_NE(out.find("rate"), std::string::npos);
  EXPECT_NE(out.find("0.45"), std::string::npos);
  // Header precedes data rows.
  EXPECT_LT(out.find("observed"), out.find("0.95"));
}

TEST(Table, PadsShortRows) {
  Table table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_EQ(table.rows(), 1u);
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(Table, RejectsOversizedRows) {
  Table table({"a"});
  EXPECT_THROW(table.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"name", "value"});
  table.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(0.0444, 4), "0.0444");
  EXPECT_EQ(Table::percent(0.0444), "4.44%");
  EXPECT_EQ(Table::num(std::nan(""), 3), "nan");
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

}  // namespace
}  // namespace cosm
