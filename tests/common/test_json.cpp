// common/json.hpp: the minimal JSON value/parser/serializer behind the
// what-if service protocol and the bench readback gates.  Round-trip
// fidelity (parse(dump(x)) == x structurally, shortest-round-trip
// doubles), deterministic member order, and loud rejection of malformed
// documents are the contracts under test.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using cosm::common::json_parse;
using cosm::common::JsonParseResult;
using cosm::common::JsonValue;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").value.is_null());
  EXPECT_EQ(json_parse("true").value.as_bool(), true);
  EXPECT_EQ(json_parse("false").value.as_bool(), false);
  EXPECT_DOUBLE_EQ(json_parse("-12.5e2").value.as_number(), -1250.0);
  EXPECT_EQ(json_parse("\"hi\\nthere\"").value.as_string(), "hi\nthere");
}

TEST(Json, ParsesNestedStructures) {
  const JsonParseResult result = json_parse(
      R"({"op":"sla","slas":[0.05,0.1],"nested":{"deep":[true,null]}})");
  ASSERT_TRUE(result.ok) << result.error;
  const JsonValue& root = result.value;
  EXPECT_EQ(root.string_or("op", ""), "sla");
  const JsonValue* slas = root.find("slas");
  ASSERT_NE(slas, nullptr);
  ASSERT_EQ(slas->items().size(), 2u);
  EXPECT_DOUBLE_EQ(slas->items()[1].as_number(), 0.1);
  const JsonValue* nested = root.find("nested");
  ASSERT_NE(nested, nullptr);
  const JsonValue* deep = nested->find("deep");
  ASSERT_NE(deep, nullptr);
  EXPECT_TRUE(deep->items()[0].as_bool());
  EXPECT_TRUE(deep->items()[1].is_null());
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), R"({"zeta":1,"alpha":2,"mid":3})");
  // set() on an existing key replaces in place, preserving position.
  obj.set("alpha", 9);
  EXPECT_EQ(obj.dump(), R"({"zeta":1,"alpha":9,"mid":3})");
}

TEST(Json, DumpRoundTripsDoublesExactly) {
  // Shortest-round-trip serialization: parse(dump(x)) must restore the
  // exact bit pattern — the property the service's determinism gate and
  // the bench artifacts rely on.
  for (const double x : {0.1, 1.0 / 3.0, 2.39e-11, 1e300, -0.0,
                         0.5238218799529069}) {
    JsonValue v(x);
    const JsonParseResult back = json_parse(v.dump());
    ASSERT_TRUE(back.ok) << v.dump() << ": " << back.error;
    EXPECT_EQ(back.value.as_number(), x) << v.dump();
  }
}

TEST(Json, StringsEscapeControlCharacters) {
  JsonValue v(std::string("a\"b\\c\n\t\x01"));
  const std::string dumped = v.dump();
  const JsonParseResult back = json_parse(dumped);
  ASSERT_TRUE(back.ok) << dumped << ": " << back.error;
  EXPECT_EQ(back.value.as_string(), v.as_string());
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "nul", "1 2", "{\"a\" 1}",
        "\"unterminated", "{\"dup\"::1}", "[1,]", "tru"}) {
    EXPECT_FALSE(json_parse(bad).ok) << bad;
  }
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_FALSE(json_parse("{} extra").ok);
  EXPECT_TRUE(json_parse("  {}  ").ok);  // whitespace is fine
}

TEST(Json, TypedAccessorsFallBack) {
  const JsonValue root =
      json_parse(R"({"rate":400,"name":"a","flag":true})").value;
  EXPECT_DOUBLE_EQ(root.number_or("rate", 1.0), 400.0);
  EXPECT_DOUBLE_EQ(root.number_or("missing", 7.5), 7.5);
  EXPECT_DOUBLE_EQ(root.number_or("name", 7.5), 7.5);  // wrong type
  EXPECT_EQ(root.string_or("name", "x"), "a");
  EXPECT_EQ(root.string_or("rate", "x"), "x");
  EXPECT_TRUE(root.bool_or("flag", false));
  EXPECT_FALSE(root.bool_or("missing", false));
}

TEST(Json, DepthLimitStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(json_parse(deep).ok);
}

}  // namespace
