// common/ulp.hpp: the ULP-distance comparison helper the SIMD gates and
// numerics tests share.  The properties under test are the ones callers
// lean on: exact symmetry, monotonicity with actual spacing, saturation
// on sign changes and NaN, and the complex overload taking the worse
// component.
#include "common/ulp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>

namespace {

using cosm::common::ulp_close;
using cosm::common::ulp_distance;

TEST(Ulp, IdenticalValuesAreZeroApart) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0);
  EXPECT_EQ(ulp_distance(0.0, 0.0), 0);
  EXPECT_EQ(ulp_distance(-3.5e300, -3.5e300), 0);
  // +0.0 and -0.0 are bitwise distinct but numerically equal; the helper
  // treats them as coincident (callers needing sign-of-zero identity
  // compare representations directly, as the tape bit-identity gates do).
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0);
}

TEST(Ulp, AdjacentDoublesAreOneApart) {
  const double x = 1.0;
  const double up = std::nextafter(x, 2.0);
  const double down = std::nextafter(x, 0.0);
  EXPECT_EQ(ulp_distance(x, up), 1);
  EXPECT_EQ(ulp_distance(up, x), 1);  // symmetric
  EXPECT_EQ(ulp_distance(x, down), 1);
  EXPECT_EQ(ulp_distance(down, up), 2);
}

TEST(Ulp, CountsStepsAcrossMagnitudes) {
  double x = 1e-7;
  for (int steps = 0; steps < 10; ++steps) {
    EXPECT_EQ(ulp_distance(1e-7, x), steps);
    x = std::nextafter(x, 1.0);
  }
}

TEST(Ulp, SignCrossingsCountThroughZero) {
  // The mapping is monotone across zero, so a small sign straddle is a
  // short, exact distance...
  const double denorm = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(ulp_distance(denorm, -denorm), 2);
  EXPECT_EQ(ulp_distance(-denorm, denorm), 2);
  // ...while a distance too large for int64 saturates instead of wrapping.
  const double huge = std::numeric_limits<double>::max();
  EXPECT_EQ(ulp_distance(huge, -huge),
            std::numeric_limits<std::int64_t>::max());
}

TEST(Ulp, NanIsMaximallyFar) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ulp_distance(nan, 1.0), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(ulp_distance(1.0, nan), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(ulp_distance(nan, nan), std::numeric_limits<std::int64_t>::max());
}

TEST(Ulp, ZeroToSmallestDenormalIsOneStep) {
  EXPECT_EQ(ulp_distance(0.0, std::numeric_limits<double>::denorm_min()), 1);
}

TEST(Ulp, ComplexTakesWorseComponent) {
  const std::complex<double> a(1.0, 2.0);
  const std::complex<double> b(std::nextafter(1.0, 2.0),
                               std::nextafter(std::nextafter(2.0, 3.0), 3.0));
  EXPECT_EQ(ulp_distance(a, a), 0);
  EXPECT_EQ(ulp_distance(a, b), 2);  // imag is 2 ulp off, re only 1
}

TEST(Ulp, UlpCloseMatchesDistance) {
  const double x = 1.0;
  double y = x;
  for (int steps = 0; steps < 4; ++steps) y = std::nextafter(y, 2.0);
  EXPECT_TRUE(ulp_close(x, y, 4));
  EXPECT_FALSE(ulp_close(x, y, 3));
  EXPECT_TRUE(ulp_close(x, x, 0));
}

}  // namespace
