// Statistical and determinism tests for the RNG substrate.  Moment checks
// use wide-but-meaningful tolerances (3–5 standard errors at the chosen
// sample sizes) so they are sensitive to real transform bugs without being
// flaky.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <functional>
#include <numbers>
#include <string>
#include <vector>

namespace cosm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork();
  // The fork must not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRangeAndMean) {
  Rng rng(3);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / static_cast<double>(kBuckets), 500);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

struct MomentCase {
  const char* label;
  double expected_mean;
  double expected_var;
  std::function<double(Rng&)> draw;
};

class RngMomentTest : public ::testing::TestWithParam<MomentCase> {};

TEST_P(RngMomentTest, MatchesAnalyticMoments) {
  const MomentCase& c = GetParam();
  Rng rng(12345);
  constexpr int kN = 400000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = c.draw(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  // 5 standard errors of the mean; variance tolerance is looser.
  const double se = std::sqrt(c.expected_var / kN);
  EXPECT_NEAR(mean, c.expected_mean, 5.0 * se + 1e-12) << c.label;
  EXPECT_NEAR(var, c.expected_var, 0.05 * c.expected_var + 1e-12) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Variates, RngMomentTest,
    ::testing::Values(
        MomentCase{"exponential(2)", 0.5, 0.25,
                   [](Rng& r) { return r.exponential(2.0); }},
        MomentCase{"exponential(0.1)", 10.0, 100.0,
                   [](Rng& r) { return r.exponential(0.1); }},
        MomentCase{"normal(3,2)", 3.0, 4.0,
                   [](Rng& r) { return r.normal(3.0, 2.0); }},
        MomentCase{"gamma(0.5,1)", 0.5, 0.5,
                   [](Rng& r) { return r.gamma(0.5, 1.0); }},
        MomentCase{"gamma(3,2)", 1.5, 0.75,
                   [](Rng& r) { return r.gamma(3.0, 2.0); }},
        MomentCase{"gamma(20,4)", 5.0, 1.25,
                   [](Rng& r) { return r.gamma(20.0, 4.0); }},
        MomentCase{"lognormal(0,0.5)", std::exp(0.125),
                   (std::exp(0.25) - 1.0) * std::exp(0.25),
                   [](Rng& r) { return r.lognormal(0.0, 0.5); }},
        MomentCase{"weibull(2,1)", std::sqrt(std::numbers::pi) / 2.0,
                   1.0 - std::numbers::pi / 4.0,
                   [](Rng& r) { return r.weibull(2.0, 1.0); }},
        MomentCase{"poisson(4)", 4.0, 4.0,
                   [](Rng& r) { return static_cast<double>(r.poisson(4.0)); }},
        MomentCase{"poisson(80)", 80.0, 80.0,
                   [](Rng& r) {
                     return static_cast<double>(r.poisson(80.0));
                   }}),
    [](const ::testing::TestParamInfo<MomentCase>& info) {
      std::string name = info.param.label;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(Rng, ParameterValidation) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(ZipfSampler, MatchesAnalyticFrequencies) {
  constexpr std::size_t kRanks = 50;
  ZipfSampler zipf(kRanks, 0.9);
  Rng rng(77);
  std::vector<int> counts(kRanks, 0);
  constexpr int kN = 500000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t rank : {std::size_t{0}, std::size_t{1}, std::size_t{9},
                           std::size_t{49}}) {
    const double expected = zipf.probability(rank) * kN;
    EXPECT_NEAR(counts[rank], expected, 5.0 * std::sqrt(expected) + 5.0)
        << "rank " << rank;
  }
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  ZipfSampler zipf(1000, 1.2);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, SkewZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.probability(i), 0.1, 1e-12);
  }
}

TEST(ZipfSampler, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace cosm
