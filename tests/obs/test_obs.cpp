// Observability subsystem tests: counter atomicity, span nesting across
// pool threads, zero-cost-when-disabled (no allocations, no result
// drift), and the trace export shape.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "numerics/distribution.hpp"
#include "numerics/lt_inversion.hpp"

// Allocation counter: every operator new in this binary bumps it, so a
// test can assert a window performed zero heap allocations.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cosm::obs {
namespace {

// Each gtest case runs in its own process (gtest_discover_tests), but
// keep the global state tidy anyway so cases also pass under a plain
// ./test_obs run.
struct ObsGuard {
  explicit ObsGuard(bool on) {
    reset();
    set_enabled(on);
  }
  ~ObsGuard() {
    set_enabled(false);
    reset();
  }
};

TEST(ObsCounters, DisabledAddsAreDropped) {
  ObsGuard guard(false);
  add(Counter::kSimEvents, 123);
  record_max(Counter::kPoolMaxQueueDepth, 99);
  EXPECT_EQ(counter_value(Counter::kSimEvents), 0u);
  EXPECT_EQ(counter_value(Counter::kPoolMaxQueueDepth), 0u);
}

TEST(ObsCounters, ConcurrentAddsAreExact) {
  ObsGuard guard(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        add(Counter::kInversionCalls);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter_value(Counter::kInversionCalls), kThreads * kPerThread);
}

TEST(ObsCounters, RecordMaxKeepsHighWaterMark) {
  ObsGuard guard(true);
  record_max(Counter::kPoolMaxQueueDepth, 5);
  record_max(Counter::kPoolMaxQueueDepth, 17);
  record_max(Counter::kPoolMaxQueueDepth, 3);
  EXPECT_EQ(counter_value(Counter::kPoolMaxQueueDepth), 17u);
}

TEST(ObsCounters, NamesCoverTheRegistry) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string_view name = counter_name(static_cast<Counter>(i));
    EXPECT_FALSE(name.empty()) << "counter " << i << " has no name";
  }
  // Spot checks that the schema's names stay stable.
  EXPECT_EQ(counter_name(Counter::kInversionClamped), "inversion.clamped");
  EXPECT_EQ(counter_name(Counter::kQuantileWarmRejectRegime),
            "quantile.warm_reject_regime");
  EXPECT_EQ(counter_name(Counter::kHistQuantileClamped),
            "hist.quantile_clamped");
}

TEST(ObsSpans, NestingDepthIsPerThread) {
  ObsGuard guard(true);
  {
    Span outer("test.outer");
    // Pool workers start at depth 0 even while the main thread is inside
    // `outer`; the main thread's own lambda runs nested at depth 1.
    cosm::parallel_for(16, 4, [&](std::size_t) {
      Span inner("test.inner");
    });
  }
  const std::vector<SpanRecord> spans = snapshot_spans();
  std::uint64_t outer_count = 0;
  std::uint64_t inner_count = 0;
  std::uint32_t main_thread = 0;
  for (const SpanRecord& span : spans) {
    if (std::string_view(span.name) == "test.outer") {
      ++outer_count;
      main_thread = span.thread;
      EXPECT_EQ(span.depth, 0u);
    }
  }
  for (const SpanRecord& span : spans) {
    if (std::string_view(span.name) == "test.inner") {
      ++inner_count;
      if (span.thread == main_thread) {
        EXPECT_EQ(span.depth, 1u);  // nested inside test.outer
      } else {
        EXPECT_EQ(span.depth, 0u);  // pool worker, nothing enclosing
      }
      EXPECT_GE(span.dur_us, 0.0);
    }
  }
  EXPECT_EQ(outer_count, 1u);
  EXPECT_EQ(inner_count, 16u);
}

TEST(ObsSpans, TraceStatsCountRecorded) {
  ObsGuard guard(true);
  { Span a("test.a"); }
  { Span b("test.b"); }
  const TraceStats stats = trace_stats();
  EXPECT_EQ(stats.recorded, 2u);
  EXPECT_EQ(stats.retained, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.capacity, 0u);
}

TEST(ObsDisabled, InstrumentationPointsAllocateNothing) {
  ObsGuard guard(false);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    Span span("test.disabled");
    add(Counter::kSimEvents);
    record_max(Counter::kPoolMaxQueueDepth, 7);
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "disabled instrumentation must not touch the heap";
}

TEST(ObsDisabled, EnablingDoesNotChangeNumericResults) {
  // The instrumented inversion path must produce bit-identical doubles
  // whether or not anyone is watching.
  const numerics::Gamma gamma(3.0, 300.0);
  const numerics::LaplaceFn lt = [&](std::complex<double> s) {
    return gamma.laplace(s);
  };
  std::vector<double> off;
  {
    ObsGuard guard(false);
    for (const double t : {0.001, 0.01, 0.05}) {
      off.push_back(numerics::cdf_from_laplace(lt, t));
    }
  }
  std::vector<double> on;
  {
    ObsGuard guard(true);
    for (const double t : {0.001, 0.01, 0.05}) {
      on.push_back(numerics::cdf_from_laplace(lt, t));
    }
  }
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], on[i]);  // exact doubles, not a tolerance
  }
}

TEST(ObsExport, JsonCarriesSchemaCountersAndSpans) {
  ObsGuard guard(true);
  add(Counter::kInversionConverged, 3);
  { Span span("test.export"); }
  std::ostringstream out;
  export_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"cosm-obs-trace\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"inversion.converged\", \"value\": 3"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"span_total\": 1"), std::string::npos);
  // Every registered counter appears, zero or not.
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string_view name = counter_name(static_cast<Counter>(i));
    EXPECT_NE(json.find(std::string(name)), std::string::npos)
        << "counter " << name << " missing from export";
  }
}

TEST(ObsExport, CsvHasOneLinePerCounterAndSpan) {
  ObsGuard guard(true);
  { Span span("test.csv"); }
  std::ostringstream out;
  export_csv(out);
  std::istringstream in(out.str());
  std::string line;
  std::size_t counter_lines = 0;
  std::size_t span_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("counter,", 0) == 0) ++counter_lines;
    if (line.rfind("span,", 0) == 0) ++span_lines;
  }
  EXPECT_EQ(counter_lines, kCounterCount);
  EXPECT_EQ(span_lines, 1u);
}

TEST(ObsReset, ClearsCountersAndTrace) {
  ObsGuard guard(true);
  add(Counter::kSimEvents, 5);
  { Span span("test.reset"); }
  reset();
  EXPECT_EQ(counter_value(Counter::kSimEvents), 0u);
  EXPECT_EQ(trace_stats().recorded, 0u);
  EXPECT_TRUE(snapshot_spans().empty());
}

}  // namespace
}  // namespace cosm::obs
