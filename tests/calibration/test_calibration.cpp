// Calibration pipeline tests (Sec. IV): the disk and parse benchmarks
// must recover the ground-truth parameters they were generated from, and
// the online estimators must reproduce the known configuration of a
// simulated run.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "calibration/disk_benchmark.hpp"
#include "calibration/online_metrics.hpp"
#include "calibration/parse_benchmark.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"

namespace cosm::calibration {
namespace {

using numerics::Degenerate;
using numerics::Gamma;

sim::DiskProfile ground_truth_profile() {
  return {std::make_shared<Gamma>(3.0, 300.0),
          std::make_shared<Gamma>(2.5, 312.5),
          std::make_shared<Gamma>(2.8, 233.33), nullptr, nullptr};
}

TEST(DiskBenchmark, GammaWinsAndParametersRecovered) {
  DiskBenchmarkConfig config;
  config.objects = 20000;
  const DiskCalibration calibration =
      benchmark_disk(ground_truth_profile(), config);
  ASSERT_EQ(calibration.index.samples.size(), 20000u);
  // Fig. 5's selection: Gamma fits disk service times best.
  EXPECT_EQ(calibration.index.selection.best().name, "gamma");
  EXPECT_EQ(calibration.meta.selection.best().name, "gamma");
  EXPECT_EQ(calibration.data.selection.best().name, "gamma");
  // Fitted means close to the profile means.
  EXPECT_NEAR(calibration.index.mean, 0.010, 0.0004);
  EXPECT_NEAR(calibration.meta.mean, 0.008, 0.0004);
  EXPECT_NEAR(calibration.data.mean, 2.8 / 233.33, 0.0005);
  // Fitted Gamma shape near ground truth.
  const auto* fitted = dynamic_cast<const Gamma*>(
      calibration.index.selection.best().dist.get());
  ASSERT_NE(fitted, nullptr);
  EXPECT_NEAR(fitted->shape(), 3.0, 0.15);
}

TEST(DiskBenchmark, ProportionsSumToOneAndOrderCorrectly) {
  const DiskCalibration calibration =
      benchmark_disk(ground_truth_profile(), {.objects = 5000, .seed = 3});
  const double total = calibration.index_proportion() +
                       calibration.meta_proportion() +
                       calibration.data_proportion();
  EXPECT_NEAR(total, 1.0, 1e-12);
  // data (12 ms) > index (10 ms) > meta (8 ms).
  EXPECT_GT(calibration.data_proportion(), calibration.index_proportion());
  EXPECT_GT(calibration.index_proportion(), calibration.meta_proportion());
}

TEST(DiskBenchmark, RejectsTinySampleCounts) {
  EXPECT_THROW(benchmark_disk(ground_truth_profile(), {.objects = 5}),
               std::invalid_argument);
}

TEST(ParseBenchmark, RecoversDegenerateParseCosts) {
  sim::ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<Degenerate>(0.0008);
  config.backend_parse = std::make_shared<Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0;
  const ParseCalibration calibration =
      benchmark_parse(config, {.requests = 500});
  ASSERT_EQ(calibration.backend_samples.size(), 500u);
  // Backend parse recovered exactly (D_bp is pure parse here).
  EXPECT_EQ(calibration.backend_fit.best().name, "degenerate");
  EXPECT_NEAR(calibration.backend_fit.best().dist->mean(), 0.0005, 1e-9);
  // Frontend parse = D_fp - D_bp - D_net: with zero network latency the
  // estimate is exact up to the (tiny) D_net subtraction.
  EXPECT_NEAR(calibration.frontend_fit.best().dist->mean(), 0.0008, 5e-5);
}

TEST(ParseBenchmark, NetworkHopsBiasTheFrontendEstimate) {
  // With real network latency the calibration inherits the paper's own
  // bias: the accept/connect hops are attributed to frontend parsing.
  sim::ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.frontend_parse = std::make_shared<Degenerate>(0.0008);
  config.backend_parse = std::make_shared<Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0002;
  const ParseCalibration calibration =
      benchmark_parse(config, {.requests = 200});
  // 4 one-way hops land in the frontend estimate.
  EXPECT_NEAR(calibration.frontend_fit.best().dist->mean(),
              0.0008 + 4 * 0.0002, 5e-5);
}

TEST(EstimateMissRatio, ThresholdSeparatesHitsFromMisses) {
  std::vector<double> latencies;
  for (int i = 0; i < 700; ++i) latencies.push_back(0.0);      // hits
  for (int i = 0; i < 300; ++i) latencies.push_back(0.008);    // disk
  EXPECT_NEAR(estimate_miss_ratio(latencies), 0.3, 1e-12);
  EXPECT_THROW(estimate_miss_ratio({}), std::invalid_argument);
  EXPECT_THROW(estimate_miss_ratio(latencies, 0.0), std::invalid_argument);
}

TEST(SplitDiskService, RecoversPerKindMeans) {
  // Ground truth: b_i = 10, b_m = 8, b_d = 12 ms with the paper's
  // proportion assumption p_k ∝ b_k.
  const double bi = 0.010;
  const double bm = 0.008;
  const double bd = 0.012;
  const double sum = bi + bm + bd;
  const double mi = 0.3;
  const double mm = 0.2;
  const double md = 0.7;
  const double r = 50.0;
  const double rd = 65.0;
  const double disk_rate = mi * r + mm * r + md * rd;
  const double aggregate =
      (mi * r * bi + mm * r * bm + md * rd * bd) / disk_rate;
  const ServiceSplit split =
      split_disk_service(aggregate, bi / sum, bm / sum, bd / sum, mi, mm,
                         md, r, rd);
  EXPECT_NEAR(split.index_mean, bi, 1e-12);
  EXPECT_NEAR(split.meta_mean, bm, 1e-12);
  EXPECT_NEAR(split.data_mean, bd, 1e-12);
}

TEST(SplitDiskService, Validation) {
  EXPECT_THROW(split_disk_service(0.0, 0.3, 0.3, 0.4, 0.1, 0.1, 0.1, 1, 1),
               std::invalid_argument);
  EXPECT_THROW(
      split_disk_service(0.01, 0.0, 0.5, 0.5, 0.1, 0.1, 0.1, 1, 1),
      std::invalid_argument);
  // All-zero miss ratios leave nothing to split.
  EXPECT_THROW(
      split_disk_service(0.01, 0.3, 0.3, 0.4, 0.0, 0.0, 0.0, 1, 1),
      std::invalid_argument);
}

TEST(ObserveDevice, ReadsRatesAndMissRatiosFromSimulation) {
  sim::ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.25;
  config.cache.meta_miss_ratio = 0.35;
  config.cache.data_miss_ratio = 0.6;
  config.seed = 21;
  sim::Cluster cluster(config);

  workload::CatalogConfig cat_config;
  cat_config.object_count = 3000;
  cat_config.size_distribution = workload::default_size_distribution();
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement({.partition_count = 64,
                                       .replica_count = 1,
                                       .device_count = 1,
                                       .seed = 2});
  workload::PhasePlan plan;
  plan.warmup_duration = 0.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = 20.0;
  plan.benchmark_end_rate = 20.0;
  plan.benchmark_step_duration = 120.0;
  sim::OpenLoopSource source(cluster, catalog, placement, plan,
                             cosm::Rng(4));
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  const DeviceObservation obs =
      observe_device(cluster.metrics(), 0, source.horizon());
  EXPECT_NEAR(obs.request_rate, 20.0, 2.0);
  EXPECT_GE(obs.data_read_rate, obs.request_rate);
  EXPECT_NEAR(obs.index_miss_ratio, 0.25, 0.03);
  EXPECT_NEAR(obs.meta_miss_ratio, 0.35, 0.03);
  EXPECT_NEAR(obs.data_miss_ratio, 0.6, 0.03);
}

TEST(BuildDeviceParams, AssemblesValidModelInputs) {
  const DiskCalibration calibration =
      benchmark_disk(ground_truth_profile(), {.objects = 5000, .seed = 5});
  DeviceObservation obs;
  obs.request_rate = 30.0;
  obs.data_read_rate = 36.0;
  obs.index_miss_ratio = 0.3;
  obs.meta_miss_ratio = 0.3;
  obs.data_miss_ratio = 0.7;
  // Aggregate disk service consistent with the ground truth means.
  const double disk_rate = 0.3 * 30 + 0.3 * 30 + 0.7 * 36;
  const double aggregate = (0.3 * 30 * 0.010 + 0.3 * 30 * 0.008 +
                            0.7 * 36 * (2.8 / 233.33)) /
                           disk_rate;
  const core::DeviceParams params = build_device_params(
      obs, calibration, std::make_shared<Degenerate>(0.0005), 1, aggregate);
  EXPECT_NO_THROW(params.validate());
  // Rescaled means should land near the ground truth per-kind means.
  EXPECT_NEAR(params.index_disk->mean(), 0.010, 0.0005);
  EXPECT_NEAR(params.meta_disk->mean(), 0.008, 0.0005);
  EXPECT_NEAR(params.data_disk->mean(), 2.8 / 233.33, 0.0006);
  // The rescaling preserves the fitted Gamma shape.
  const auto* gamma =
      dynamic_cast<const Gamma*>(params.index_disk.get());
  ASSERT_NE(gamma, nullptr);
  EXPECT_NEAR(gamma->shape(), 3.0, 0.3);
}

}  // namespace
}  // namespace cosm::calibration
