// Calibration-loop tests: drift detection (stability, latency,
// hysteresis), the windowed observer's insufficiency/skew outcomes, the
// hardened characteristic-time bracket, the Degenerate rescale route,
// and the closed loop converging on a stepped-rate regime shift.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>
#include <optional>
#include <vector>

#include "calibration/disk_benchmark.hpp"
#include "calibration/drift.hpp"
#include "calibration/lru_prediction.hpp"
#include "calibration/online_metrics.hpp"
#include "calibration/recalibrate.hpp"
#include "core/system_model.hpp"
#include "obs/obs.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"

namespace cosm::calibration {
namespace {

using numerics::Degenerate;
using numerics::Gamma;

DriftSignals stationary_signals(double jitter = 0.0) {
  DriftSignals s;
  s.arrival_rate = 20.0 * (1.0 + jitter);
  s.data_read_rate = 24.0 * (1.0 + jitter);
  s.index_miss_ratio = 0.3 + 0.3 * jitter;
  s.meta_miss_ratio = 0.3 - 0.3 * jitter;
  s.data_miss_ratio = 0.7 + 0.3 * jitter;
  s.mean_disk_service = 0.010 * (1.0 - jitter);
  return s;
}

// Deterministic pseudo-noise in [-amp, amp] (no RNG needed).
double wobble(int i, double amp) {
  return amp * std::sin(0.7 * static_cast<double>(i) + 0.3);
}

TEST(DriftDetector, StationaryNoisyStreamNeverAlarms) {
  DriftDetector detector;  // default config
  for (int i = 0; i < 200; ++i) {
    const DriftDecision d = detector.offer(stationary_signals(
        wobble(i, 0.02)));  // 2% multiplicative noise
    if (i < detector.config().warmup_windows) {
      EXPECT_EQ(d.verdict, DriftVerdict::kWarmup);
    } else {
      EXPECT_EQ(d.verdict, DriftVerdict::kStable) << "window " << i;
      EXPECT_EQ(d.alarm_mask, 0u) << "window " << i;
    }
  }
}

TEST(DriftDetector, DetectsRateStepWithinFewWindows) {
  DriftDetector detector;
  for (int i = 0; i < 10; ++i) detector.offer(stationary_signals());
  // 2x arrival-rate step: normalized deviation 1.0 per window crosses
  // lambda immediately, so drift confirms in exactly confirm_windows.
  int windows_to_drift = 0;
  DriftDecision d;
  do {
    DriftSignals s = stationary_signals();
    s.arrival_rate *= 2.0;
    s.data_read_rate *= 2.0;
    d = detector.offer(s);
    ++windows_to_drift;
  } while (d.verdict != DriftVerdict::kDrift && windows_to_drift < 20);
  EXPECT_EQ(windows_to_drift, detector.config().confirm_windows);
  // The arrival-rate signal (bit 0) must be among the alarms.
  EXPECT_TRUE(d.alarm_mask & 1u);
}

TEST(DriftDetector, SlowRampBelowDeltaIsAbsorbed) {
  DriftConfig config;
  config.ph_delta = 0.05;
  DriftDetector detector(config);
  // 1% growth per window: each normalized deviation stays below delta
  // once the baseline is set... but deviations accumulate against the
  // FROZEN baseline, so a long enough ramp still (correctly) drifts.
  // Within a diurnal-scale ramp (deviation < delta per window, total
  // excursion < lambda) there must be no alarm.
  double level = 1.0;
  for (int i = 0; i < 3; ++i) {
    DriftSignals s = stationary_signals();
    s.arrival_rate *= level;
    detector.offer(s);
  }
  for (int i = 0; i < 8; ++i) {
    level *= 1.01;
    DriftSignals s = stationary_signals();
    s.arrival_rate *= level;
    const DriftDecision d = detector.offer(s);
    EXPECT_NE(d.verdict, DriftVerdict::kDrift) << "window " << i;
  }
}

TEST(DriftDetector, SingleOutlierAlarmsButDoesNotConfirm) {
  DriftDetector detector;
  for (int i = 0; i < 10; ++i) detector.offer(stationary_signals());
  // A marginal outlier: relative deviation 0.47 pushes the statistic to
  // 0.42 (just over lambda = 0.4), alarming once; back at baseline it
  // decays by delta per window, dropping below lambda before the streak
  // can reach confirm_windows.  (A massive outlier keeping the statistic
  // elevated for many windows IS a change and does confirm — by design.)
  DriftSignals outlier = stationary_signals();
  outlier.mean_disk_service *= 1.47;
  const DriftDecision alarm = detector.offer(outlier);
  EXPECT_EQ(alarm.verdict, DriftVerdict::kAlarm);  // crossed, unconfirmed
  bool drifted = false;
  for (int i = 0; i < 30; ++i) {
    if (detector.offer(stationary_signals()).verdict ==
        DriftVerdict::kDrift) {
      drifted = true;
    }
  }
  EXPECT_FALSE(drifted);
}

TEST(DriftDetector, RebaselineAdoptsNewRegimeWithoutFlapping) {
  DriftDetector detector;
  for (int i = 0; i < 5; ++i) detector.offer(stationary_signals());
  DriftSignals shifted = stationary_signals();
  shifted.arrival_rate *= 2.0;
  while (detector.offer(shifted).verdict != DriftVerdict::kDrift) {
  }
  detector.rebaseline();  // what the loop does after the re-fit
  // Staying at the shifted level must never re-confirm drift.
  for (int i = 0; i < 50; ++i) {
    const DriftDecision d = detector.offer(shifted);
    EXPECT_NE(d.verdict, DriftVerdict::kDrift) << "window " << i;
    EXPECT_NE(d.verdict, DriftVerdict::kAlarm) << "window " << i;
  }
}

TEST(DriftDetector, ConfigValidation) {
  DriftConfig bad;
  bad.ph_lambda = 0.0;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  bad = DriftConfig{};
  bad.warmup_windows = 0;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  bad = DriftConfig{};
  bad.confirm_windows = 0;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
}

TEST(DriftDetector, NamesAndVerdictStrings) {
  EXPECT_EQ(drift_signal_name(0), "arrival_rate");
  EXPECT_EQ(drift_signal_name(5), "mean_disk_service");
  EXPECT_THROW(drift_signal_name(kDriftSignalCount), std::invalid_argument);
  EXPECT_EQ(to_string(DriftVerdict::kDrift), "drift");
  EXPECT_EQ(to_string(DriftVerdict::kStable), "stable");
}

// ---------------- windowed observer (satellites 1 & 2) ----------------

sim::DeviceCounters make_counters(std::uint64_t requests,
                                  std::uint64_t data_reads,
                                  std::uint64_t disk_ops,
                                  double service_sum) {
  sim::DeviceCounters c;
  c.requests = requests;
  c.data_reads = data_reads;
  const auto data = static_cast<std::size_t>(sim::AccessKind::kData);
  c.accesses[data] = data_reads;
  c.misses[data] = data_reads / 2;
  c.disk_ops[data] = disk_ops;
  c.disk_service_sum[data] = service_sum;
  return c;
}

TEST(DriftObserveWindow, EmptyWindowIsAnOutcomeNotAThrow) {
  const sim::DeviceCounters snap = make_counters(500, 600, 300, 3.0);
  double carry = 0.0;
  // Identical snapshots = an idle window: insufficient, not an error.
  EXPECT_EQ(observe_window(snap, snap, 5.0, 1, &carry), std::nullopt);
  // Below min_requests: also insufficient.
  const sim::DeviceCounters next = make_counters(510, 612, 306, 3.06);
  EXPECT_EQ(observe_window(snap, next, 5.0, 50, &carry), std::nullopt);
  // Misuse still throws.
  EXPECT_THROW(observe_window(snap, next, 0.0, 1, &carry),
               std::invalid_argument);
  EXPECT_THROW(observe_window(snap, next, 5.0, 1, nullptr),
               std::invalid_argument);
  EXPECT_THROW(observe_window(next, snap, 5.0, 1, &carry),
               std::invalid_argument);  // counters ran backwards
}

TEST(DriftObserveWindow, TryEstimateMissRatioReportsInsufficiency) {
  EXPECT_EQ(try_estimate_miss_ratio({}), std::nullopt);
  const std::vector<double> lat = {0.0, 0.008, 0.0, 0.0};
  EXPECT_NEAR(*try_estimate_miss_ratio(lat), 0.25, 1e-12);
  // The throwing form keeps throwing (direct misuse).
  EXPECT_THROW(estimate_miss_ratio({}), std::invalid_argument);
  EXPECT_THROW(try_estimate_miss_ratio(lat, 0.0), std::invalid_argument);
}

TEST(DriftObserveWindow, BoundarySkewClampsAndCarries) {
  obs::set_enabled(true);
  obs::reset();
  const std::uint64_t skew_before =
      obs::counter_value(obs::Counter::kCalibWindowSkew);

  const sim::DeviceCounters start = make_counters(0, 0, 0, 0.0);
  // Window 1 closes with 100 requests but only 90 data reads recorded —
  // the reads of late-admitted requests land after the boundary.
  const sim::DeviceCounters mid = make_counters(100, 90, 80, 0.8);
  // Window 2 sees the 10 spilled reads on top of its own 110.
  const sim::DeviceCounters end = make_counters(200, 210, 170, 1.7);

  double carry = 0.0;
  const auto w1 = observe_window(start, mid, 5.0, 1, &carry);
  ASSERT_TRUE(w1.has_value());
  // Clamped to the r_d >= r identity; deficit carried.
  EXPECT_DOUBLE_EQ(w1->observation.data_read_rate,
                   w1->observation.request_rate);
  EXPECT_DOUBLE_EQ(carry, 10.0);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCalibWindowSkew),
            skew_before + 1);

  const auto w2 = observe_window(mid, end, 5.0, 1, &carry);
  ASSERT_TRUE(w2.has_value());
  // Window 2's raw delta is 120 reads on 100 requests; the 10-read carry
  // deducts to the 110 that genuinely belong to it.
  EXPECT_DOUBLE_EQ(w2->observation.data_read_rate * 5.0, 110.0);
  EXPECT_DOUBLE_EQ(carry, 0.0);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCalibWindowSkew),
            skew_before + 1);  // no clamp in window 2
  obs::set_enabled(false);
}

// ---------------- bracket exhaustion (satellite 3) ----------------

TEST(DriftLruBracket, ExhaustedBracketFailsLoudly) {
  // A filtered tier population can carry weights like w * e^{-w t1} that
  // underflow far below what 200 doublings (2^200 ~ 1.6e60) can clear:
  // occupancy(2^200) = 10 * (1 - e^{-1e-300 * 1.6e60}) ~ 1.6e-239 << 5.
  // Before the fix, bisection over the unverified bracket returned ~2^200
  // and predict_lru_hit_ratio silently reported a near-zero hit ratio.
  ChunkPopulation pathological;
  pathological.weight = {1e-300};
  pathological.chunks = {10.0};
  pathological.total_chunks = 10.0;
  EXPECT_THROW(che_characteristic_time(pathological, 5), std::logic_error);
  EXPECT_THROW(predict_lru_hit_ratio(pathological, 5), std::logic_error);

  // A healthy population still solves (per-chunk reference weights
  // normalized: sum w_i c_i = 1).
  ChunkPopulation healthy;
  healthy.weight = {0.2, 0.025};
  healthy.chunks = {4.0, 8.0};
  healthy.total_chunks = 12.0;
  const double t = che_characteristic_time(healthy, 6);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, 0.0);
  const double hit = predict_lru_hit_ratio(healthy, 6);
  EXPECT_GT(hit, 0.0);
  EXPECT_LT(hit, 1.0);
}

// ---------------- degenerate rescale (satellite 4) ----------------

// A fitted shape the explicit branches don't know, reporting zero
// variance — the case the old fallback papered over with cv2 = 1e-6.
class ZeroVarianceDist final : public numerics::Distribution {
 public:
  std::string name() const override { return "zero-variance"; }
  std::complex<double> laplace(std::complex<double> s) const override {
    return std::exp(-s * 0.004);
  }
  double mean() const override { return 0.004; }
  double second_moment() const override { return 0.004 * 0.004; }
};

TEST(DriftRescale, NonPositiveVarianceRoutesToDegenerate) {
  obs::set_enabled(true);
  obs::reset();
  const std::uint64_t before =
      obs::counter_value(obs::Counter::kCalibRescaleDegenerate);
  const numerics::DistPtr fitted = std::make_shared<ZeroVarianceDist>();
  const numerics::DistPtr rescaled = rescale_to_mean(fitted, 0.006);
  ASSERT_NE(dynamic_cast<const Degenerate*>(rescaled.get()), nullptr);
  EXPECT_DOUBLE_EQ(rescaled->mean(), 0.006);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCalibRescaleDegenerate),
            before + 1);
  obs::set_enabled(false);

  // The healthy branches stay untouched: Gamma keeps its shape...
  const numerics::DistPtr gamma =
      rescale_to_mean(std::make_shared<Gamma>(3.0, 300.0), 0.02);
  const auto* g = dynamic_cast<const Gamma*>(gamma.get());
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->shape(), 3.0);
  EXPECT_NEAR(gamma->mean(), 0.02, 1e-12);
  // ...and misuse throws.
  EXPECT_THROW(rescale_to_mean(fitted, 0.0), std::invalid_argument);
}

// ---------------- cache erasure primitive ----------------

TEST(DriftCacheErase, EraseIsTargetedAndNotAnEviction) {
  numerics::MemoCache<std::uint64_t, double> cache(8);
  cache.insert(1, 1.0);
  cache.insert(2, 2.0);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));  // already gone
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(2).has_value());  // untouched neighbor
  const numerics::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 0u);  // erasure is not capacity pressure
  EXPECT_EQ(stats.size, 1u);
}

// ---------------- the closed loop over a stepped-rate run ----------------

struct SteppedRun {
  std::vector<sim::DeviceCounters> snapshots;  // at each window close
  sim::DeviceCounters at_benchmark_start;
  double window = 20.0;
  int pre_windows = 0;
  int post_windows = 0;
  double base_rate = 20.0;
  double stepped_rate = 40.0;
  sim::ClusterConfig config;
};

SteppedRun run_stepped(double base_rate, double stepped_rate) {
  SteppedRun run;
  run.base_rate = base_rate;
  run.stepped_rate = stepped_rate;
  run.config.frontend_processes = 1;
  run.config.device_count = 1;
  run.config.processes_per_device = 1;
  run.config.cache.index_miss_ratio = 0.3;
  run.config.cache.meta_miss_ratio = 0.3;
  run.config.cache.data_miss_ratio = 0.7;
  run.config.seed = 17;
  sim::Cluster cluster(run.config);
  run.config = cluster.config();  // finalized: parse distributions filled

  workload::CatalogConfig cat_config;
  cat_config.object_count = 3000;
  cat_config.size_distribution = workload::default_size_distribution();
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement({.partition_count = 64,
                                       .replica_count = 1,
                                       .device_count = 1,
                                       .seed = 2});

  const double warmup = 60.0;
  const double pre = 200.0;
  const double post = 200.0;
  sim::OpenLoopSource source(
      cluster, catalog, placement,
      workload::stepped_ramp_segments(base_rate, warmup, base_rate, pre,
                                      stepped_rate, post),
      cosm::Rng(4));
  run.pre_windows = static_cast<int>(pre / run.window);
  run.post_windows = static_cast<int>(post / run.window);

  cluster.engine().schedule_at(source.benchmark_start_time(), [&] {
    run.at_benchmark_start = cluster.metrics().device(0);
  });
  const int windows = run.pre_windows + run.post_windows;
  run.snapshots.resize(static_cast<std::size_t>(windows));
  for (int w = 0; w < windows; ++w) {
    const double at =
        source.benchmark_start_time() + run.window * (w + 1);
    cluster.engine().schedule_at(at, [&run, &cluster, w] {
      run.snapshots[static_cast<std::size_t>(w)] =
          cluster.metrics().device(0);
    });
  }
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();
  return run;
}

RecalibrateConfig loop_config(const SteppedRun& run,
                              core::PredictionCache* cache) {
  RecalibrateConfig config;
  config.window = run.window;
  config.min_requests = 20;
  config.slas = {0.05, 0.1};
  config.cache = cache;
  config.drift.warmup_windows = 2;
  config.drift.confirm_windows = 2;
  config.drift.cooldown_windows = 2;
  return config;
}

CalibrationLoop make_loop(const SteppedRun& run,
                          const DiskCalibration& disk_cal,
                          core::PredictionCache* cache) {
  core::FrontendParams frontend;
  frontend.processes = run.config.frontend_processes;
  frontend.frontend_parse = run.config.frontend_parse;
  return CalibrationLoop(loop_config(run, cache), disk_cal, frontend,
                         run.config.backend_parse, 1);
}

TEST(DriftCalibrationLoop, ConvergesToPostStepTruthAndInvalidatesByKey) {
  obs::set_enabled(true);
  obs::reset();
  const SteppedRun run = run_stepped(20.0, 40.0);
  const DiskCalibration disk_cal =
      benchmark_disk(run.config.disk, {.objects = 8000});

  core::PredictionCache cache;
  CalibrationLoop loop = make_loop(run, disk_cal, &cache);
  loop.prime(run.at_benchmark_start);

  int drift_refits = 0;
  int drift_window = -1;
  for (int w = 0; w < static_cast<int>(run.snapshots.size()); ++w) {
    const auto result =
        loop.offer(run.snapshots[static_cast<std::size_t>(w)]);
    EXPECT_FALSE(result.insufficient) << "window " << w;
    if (result.refit && result.alarm_mask != 0) {
      ++drift_refits;
      if (drift_window < 0) drift_window = w;
    }
    // No drift verdict may fire before the step.
    if (w < run.pre_windows) {
      EXPECT_NE(result.verdict, DriftVerdict::kDrift) << "window " << w;
    }
  }

  // Exactly one drift-triggered re-fit, shortly after the step.
  EXPECT_EQ(drift_refits, 1);
  ASSERT_GE(drift_window, run.pre_windows);
  EXPECT_LE(drift_window,
            run.pre_windows + loop.config().drift.confirm_windows + 1);

  // The re-published calibration converged to the post-step truth.
  ASSERT_TRUE(loop.calibrated());
  EXPECT_NEAR(loop.params().arrival_rate, 40.0, 4.0);
  EXPECT_NEAR(loop.params().index_miss_ratio, 0.3, 0.06);
  EXPECT_NEAR(loop.params().data_miss_ratio, 0.7, 0.06);
  ASSERT_EQ(loop.refits().size(), 2u);  // initial fit + drift re-fit
  EXPECT_EQ(loop.refits().front().alarm_mask, 0u);
  EXPECT_NEAR(loop.refits().front().params.arrival_rate, 20.0, 2.0);

  // Fingerprint-keyed invalidation: the initial fit's backend entry was
  // erased by the re-fit (a fresh lookup misses), while the re-fit's own
  // entry is resident (a fresh build hits it).
  const std::uint64_t old_key = core::backend_fingerprint(
      loop.refits().front().params, loop.config().options);
  const std::uint64_t new_key = core::backend_fingerprint(
      loop.params(), loop.config().options);
  EXPECT_FALSE(cache.backends.lookup(old_key).has_value());
  EXPECT_TRUE(cache.backends.lookup(new_key).has_value());
  EXPECT_EQ(loop.refits().back().cache_evictions,
            1 + loop.config().slas.size());
  EXPECT_GE(obs::counter_value(obs::Counter::kCalibRefitCacheEvictions),
            loop.refits().back().cache_evictions);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCalibDriftDetected), 1u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCalibRefitModels), 2u);

  // Republished predictions are usable percentiles.
  for (const double p : loop.predictions()) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  obs::set_enabled(false);
}

TEST(DriftCalibrationLoop, StationaryRunNeverRefitsAfterInitialFit) {
  obs::set_enabled(true);
  obs::reset();
  // Same harness, no step: the no-flap guarantee.
  const SteppedRun run = run_stepped(20.0, 20.0);
  const DiskCalibration disk_cal =
      benchmark_disk(run.config.disk, {.objects = 8000});
  CalibrationLoop loop = make_loop(run, disk_cal, nullptr);
  loop.prime(run.at_benchmark_start);
  for (const auto& snapshot : run.snapshots) {
    const auto result = loop.offer(snapshot);
    EXPECT_NE(result.verdict, DriftVerdict::kDrift);
  }
  EXPECT_EQ(loop.refits().size(), 1u);  // the initial fit only
  EXPECT_EQ(loop.refits().front().alarm_mask, 0u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCalibDriftDetected), 0u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCalibDriftAlarms), 0u);
  obs::set_enabled(false);
}

TEST(DriftCalibrationLoop, FlashCrowdRefitsOnBurstAndOnReturn) {
  // A burst that reverts: the loop must re-fit into the burst and then
  // re-fit again back toward the base regime.
  SteppedRun run;
  run.config.frontend_processes = 1;
  run.config.device_count = 1;
  run.config.processes_per_device = 1;
  run.config.cache.index_miss_ratio = 0.3;
  run.config.cache.meta_miss_ratio = 0.3;
  run.config.cache.data_miss_ratio = 0.7;
  run.config.seed = 23;
  sim::Cluster cluster(run.config);
  run.config = cluster.config();  // finalized: parse distributions filled
  workload::CatalogConfig cat_config;
  cat_config.object_count = 3000;
  cat_config.size_distribution = workload::default_size_distribution();
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement({.partition_count = 64,
                                       .replica_count = 1,
                                       .device_count = 1,
                                       .seed = 2});
  sim::OpenLoopSource source(
      cluster, catalog, placement,
      workload::flash_crowd_segments(20.0, 60.0, 20.0, 160.0, 45.0, 160.0,
                                     200.0),
      cosm::Rng(9));
  cluster.engine().schedule_at(source.benchmark_start_time(), [&] {
    run.at_benchmark_start = cluster.metrics().device(0);
  });
  const int windows = static_cast<int>((160.0 + 160.0 + 200.0) / run.window);
  run.snapshots.resize(static_cast<std::size_t>(windows));
  for (int w = 0; w < windows; ++w) {
    cluster.engine().schedule_at(
        source.benchmark_start_time() + run.window * (w + 1),
        [&run, &cluster, w] {
          run.snapshots[static_cast<std::size_t>(w)] =
              cluster.metrics().device(0);
        });
  }
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  const DiskCalibration disk_cal =
      benchmark_disk(run.config.disk, {.objects = 8000});
  CalibrationLoop loop = make_loop(run, disk_cal, nullptr);
  loop.prime(run.at_benchmark_start);
  for (const auto& snapshot : run.snapshots) loop.offer(snapshot);

  // Initial fit + burst re-fit + return re-fit.
  ASSERT_EQ(loop.refits().size(), 3u);
  EXPECT_NEAR(loop.refits()[1].params.arrival_rate, 45.0, 4.5);
  EXPECT_NEAR(loop.refits()[2].params.arrival_rate, 20.0, 3.0);
}

}  // namespace
}  // namespace cosm::calibration
