// Che-approximation LRU hit-ratio prediction (tiering extension): the
// predicted hit ratios must track a direct LRU simulation of the same
// catalog stream, for a single cache and for the SSD tier behind the
// page cache.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <unordered_map>

#include "calibration/lru_prediction.hpp"
#include "common/rng.hpp"
#include "workload/catalog.hpp"

namespace cosm::calibration {
namespace {

constexpr std::uint64_t kChunkBytes = 65536;

workload::ObjectCatalog test_catalog() {
  workload::CatalogConfig config;
  config.object_count = 2000;
  config.zipf_skew = 0.9;
  // Fixed 100 KB objects (2 chunks each) keep the footprint exact.
  config.size_distribution = std::make_shared<numerics::Degenerate>(100000.0);
  config.seed = 41;
  return workload::ObjectCatalog(config);
}

// Minimal reference LRU over chunk keys, for measuring ground truth.
class DirectLru {
 public:
  explicit DirectLru(std::size_t capacity) : capacity_(capacity) {}

  // Access with promotion; returns true on hit.
  bool access(std::uint64_t key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    if (capacity_ == 0) return false;
    if (map_.size() == capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(key);
    map_[key] = order_.begin();
    return false;
  }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

std::uint64_t chunk_key(std::uint64_t object, std::uint64_t chunk) {
  return (object << 8) | chunk;
}

TEST(LruPrediction, ChunkPopulationIsNormalized) {
  const auto catalog = test_catalog();
  const ChunkPopulation pop = chunk_population(catalog, kChunkBytes);
  ASSERT_EQ(pop.weight.size(), 2000u);
  EXPECT_DOUBLE_EQ(pop.total_chunks, 4000.0);  // 2 chunks per object
  double reference_mass = 0.0;
  for (std::size_t i = 0; i < pop.weight.size(); ++i) {
    reference_mass += pop.chunks[i] * pop.weight[i];
  }
  EXPECT_NEAR(reference_mass, 1.0, 1e-12);
}

TEST(LruPrediction, CapacityEdgeCases) {
  const ChunkPopulation pop = chunk_population(test_catalog(), kChunkBytes);
  EXPECT_DOUBLE_EQ(predict_lru_hit_ratio(pop, 0), 0.0);
  EXPECT_DOUBLE_EQ(predict_lru_hit_ratio(pop, 4000), 1.0);  // full fit
  EXPECT_TRUE(std::isinf(che_characteristic_time(pop, 5000)));
  EXPECT_DOUBLE_EQ(che_characteristic_time(pop, 0), 0.0);
}

TEST(LruPrediction, HitRatioIsMonotoneInCapacity) {
  const ChunkPopulation pop = chunk_population(test_catalog(), kChunkBytes);
  double last = 0.0;
  for (std::size_t capacity : {50u, 200u, 800u, 2000u, 3500u}) {
    const double h = predict_lru_hit_ratio(pop, capacity);
    EXPECT_GT(h, last);
    EXPECT_LE(h, 1.0);
    last = h;
  }
}

TEST(LruPrediction, MemZeroTierEqualsDirectPrediction) {
  const ChunkPopulation pop = chunk_population(test_catalog(), kChunkBytes);
  // An empty page cache filters nothing: the tier sees the raw stream.
  EXPECT_NEAR(predict_tier_hit_ratio(pop, 0, 600),
              predict_lru_hit_ratio(pop, 600), 1e-9);
  // A page cache holding the whole catalog starves the tier.
  EXPECT_DOUBLE_EQ(predict_tier_hit_ratio(pop, 4000, 600), 0.0);
}

TEST(LruPrediction, CheMatchesDirectLruSimulation) {
  const auto catalog = test_catalog();
  const ChunkPopulation pop = chunk_population(catalog, kChunkBytes);
  for (std::size_t capacity : {200u, 800u}) {
    DirectLru lru(capacity);
    cosm::Rng rng(17);
    std::uint64_t hits = 0, accesses = 0;
    const int warmup = 50000, measured = 200000;
    for (int i = 0; i < warmup + measured; ++i) {
      const auto object = catalog.sample_object(rng);
      for (std::uint64_t c = 0; c < 2; ++c) {  // 2 chunks per object
        const bool hit = lru.access(chunk_key(object, c));
        if (i >= warmup) {
          ++accesses;
          hits += hit ? 1 : 0;
        }
      }
    }
    const double measured_ratio =
        static_cast<double>(hits) / static_cast<double>(accesses);
    EXPECT_NEAR(predict_lru_hit_ratio(pop, capacity), measured_ratio, 0.05)
        << "capacity " << capacity;
  }
}

TEST(LruPrediction, TierPredictionMatchesTwoLevelSimulation) {
  const auto catalog = test_catalog();
  const ChunkPopulation pop = chunk_population(catalog, kChunkBytes);
  const std::size_t mem_capacity = 200;
  const std::size_t tier_capacity = 800;
  DirectLru mem(mem_capacity);
  DirectLru tier(tier_capacity);
  cosm::Rng rng(29);
  std::uint64_t tier_hits = 0, tier_accesses = 0;
  const int warmup = 50000, measured = 300000;
  for (int i = 0; i < warmup + measured; ++i) {
    const auto object = catalog.sample_object(rng);
    for (std::uint64_t c = 0; c < 2; ++c) {
      if (mem.access(chunk_key(object, c))) continue;  // absorbed upstream
      const bool hit = tier.access(chunk_key(object, c));
      if (i >= warmup) {
        ++tier_accesses;
        tier_hits += hit ? 1 : 0;
      }
    }
  }
  const double measured_ratio =
      static_cast<double>(tier_hits) / static_cast<double>(tier_accesses);
  // The filtered-stream approximation is coarser than single-level Che
  // (the miss stream is not independent-reference), hence the wider band.
  EXPECT_NEAR(predict_tier_hit_ratio(pop, mem_capacity, tier_capacity),
              measured_ratio, 0.08);
}

}  // namespace
}  // namespace cosm::calibration
