// Sharded simulation: the conservative window protocol must be
// bit-identical between its serial round-robin and its one-thread-per-
// shard execution for a fixed shard count and seed set (the hard gate),
// deterministic across repeats, and its cross-shard metric merge must
// agree with the per-shard aggregates exactly.  Shard-count invariance is
// explicitly NOT promised (docs/PERFORMANCE.md) — different shard counts
// are different, equally valid samples of the same scenario.
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"
#include "sim/replication.hpp"
#include "sim/shard.hpp"
#include "workload/catalog.hpp"

namespace {

using cosm::sim::ClusterConfig;
using cosm::sim::ReplicationPlan;
using cosm::sim::ReplicationResult;
using cosm::sim::ReplicationSet;
using cosm::sim::run_replication;
using cosm::sim::run_replications;
using cosm::sim::run_sharded_replication;
using cosm::sim::shard_of_object;
using cosm::sim::shard_window_length;
using cosm::sim::ShardTopology;
using cosm::sim::SimMetrics;

ReplicationPlan sharded_plan(std::uint32_t shards, bool streaming) {
  ReplicationPlan plan;
  plan.seeds = {42, 1042};
  plan.cluster.device_count = 8;
  plan.cluster.frontend_processes = 4;
  plan.cluster.processes_per_device = 2;
  plan.cluster.request_timeout = 0.25;
  plan.cluster.shards = shards;
  plan.catalog.object_count = 2000;
  plan.catalog.size_distribution =
      cosm::workload::default_size_distribution();
  plan.placement = {.partition_count = 256,
                    .replica_count = 2,
                    .device_count = 8,
                    .seed = 0};
  plan.phases.warmup_rate = 60.0;
  plan.phases.warmup_duration = 2.0;
  plan.phases.transition_duration = 0.0;
  plan.phases.benchmark_start_rate = 80.0;
  plan.phases.benchmark_end_rate = 80.0;
  plan.phases.benchmark_step_duration = 8.0;
  plan.streaming = streaming;
  return plan;
}

void expect_identical(const ReplicationResult& a,
                      const ReplicationResult& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.latency_count, b.latency_count);
  EXPECT_EQ(a.moments.mean(), b.moments.mean());
  EXPECT_EQ(a.moments.variance(), b.moments.variance());
  EXPECT_EQ(a.latencies, b.latencies);
}

TEST(ShardTopology, BalancedContiguousSplit) {
  ClusterConfig config;
  config.device_count = 10;
  config.frontend_processes = 6;
  config.shards = 4;
  const ShardTopology topo = ShardTopology::build(config);
  // 10 devices over 4 shards: earlier shards take the remainder.
  EXPECT_EQ(topo.devices_of(0), 3u);
  EXPECT_EQ(topo.devices_of(1), 3u);
  EXPECT_EQ(topo.devices_of(2), 2u);
  EXPECT_EQ(topo.devices_of(3), 2u);
  EXPECT_EQ(topo.device_offset(0), 0u);
  EXPECT_EQ(topo.device_offset(3), 8u);
  EXPECT_EQ(topo.device_offsets.back(), 10u);
  EXPECT_EQ(topo.min_devices(), 2u);
  EXPECT_EQ(topo.frontends_of(0) + topo.frontends_of(1) +
                topo.frontends_of(2) + topo.frontends_of(3),
            6u);
}

TEST(ShardTopology, ObjectRoutingIsDeterministicAndRoughlyUniform) {
  std::vector<std::uint64_t> counts(4, 0);
  for (std::uint64_t id = 0; id < 40000; ++id) {
    const std::uint32_t owner = shard_of_object(id, 1234567, 4);
    ASSERT_LT(owner, 4u);
    EXPECT_EQ(owner, shard_of_object(id, 1234567, 4));
    ++counts[owner];
  }
  for (const std::uint64_t count : counts) {
    EXPECT_GT(count, 9000u);  // 10000 expected per shard
    EXPECT_LT(count, 11000u);
  }
}

TEST(ShardWindow, DerivationAndOverride) {
  ClusterConfig config;
  config.network_latency = 100e-6;
  // Auto: the 2.5 ms floor dominates a 100 us network hop.
  EXPECT_DOUBLE_EQ(shard_window_length(config), 2.5e-3);
  // A slower network raises the window with it.
  config.network_latency = 5e-3;
  EXPECT_DOUBLE_EQ(shard_window_length(config), 5e-3);
  // An explicit window always wins.
  config.shard_window = 1e-3;
  EXPECT_DOUBLE_EQ(shard_window_length(config), 1e-3);
}

TEST(Shard, SerialBitIdenticalToThreadedSampled) {
  ReplicationPlan plan = sharded_plan(2, /*streaming=*/false);
  plan.shard_threads = 1;
  const ReplicationResult serial = run_replication(plan, 42);
  ASSERT_GT(serial.completed, 100u);
  ASSERT_GT(serial.latency_count, 0u);
  plan.shard_threads = 0;
  expect_identical(serial, run_replication(plan, 42));
}

TEST(Shard, SerialBitIdenticalToThreadedStreaming) {
  ReplicationPlan plan = sharded_plan(2, /*streaming=*/true);
  plan.shard_threads = 1;
  const ReplicationResult serial = run_replication(plan, 42);
  ASSERT_GT(serial.latency_count, 0u);
  EXPECT_TRUE(serial.latencies.empty());
  plan.shard_threads = 0;
  expect_identical(serial, run_replication(plan, 42));
}

TEST(Shard, RepeatRunsAreBitIdenticalPerShardCount) {
  for (const std::uint32_t shards : {2u, 4u}) {
    ReplicationPlan plan = sharded_plan(shards, /*streaming=*/false);
    const ReplicationResult first = run_replication(plan, 42);
    const ReplicationResult second = run_replication(plan, 42);
    ASSERT_GT(first.completed, 0u) << shards << " shards";
    expect_identical(first, second);
  }
}

TEST(Shard, StreamingMatchesSampledUnderSharding) {
  // Same seeds, same sharded simulation — only the recording differs, so
  // counters and moments (both merged in shard order) agree exactly.
  const ReplicationResult sampled =
      run_replication(sharded_plan(2, /*streaming=*/false), 42);
  const ReplicationResult streaming =
      run_replication(sharded_plan(2, /*streaming=*/true), 42);
  EXPECT_EQ(sampled.completed, streaming.completed);
  EXPECT_EQ(sampled.timeouts, streaming.timeouts);
  EXPECT_EQ(sampled.events, streaming.events);
  EXPECT_EQ(sampled.latency_count, streaming.latency_count);
  EXPECT_EQ(sampled.moments.count(), streaming.moments.count());
  EXPECT_EQ(sampled.moments.mean(), streaming.moments.mean());
  EXPECT_EQ(sampled.moments.variance(), streaming.moments.variance());
}

TEST(Shard, ShardCountsAgreeStatistically) {
  // 1-shard and 4-shard runs are different samples of the same scenario:
  // no bit-identity across shard counts, but the latency distribution
  // must agree within sampling error (the documented invariance story).
  const ReplicationResult one =
      run_replication(sharded_plan(1, /*streaming=*/false), 42);
  const ReplicationResult four =
      run_replication(sharded_plan(4, /*streaming=*/false), 42);
  ASSERT_GT(one.latency_count, 300u);
  ASSERT_GT(four.latency_count, 300u);
  EXPECT_NEAR(four.moments.mean(), one.moments.mean(),
              0.25 * one.moments.mean());
  EXPECT_NEAR(four.q99, one.q99, 0.5 * one.q99);
}

TEST(Shard, RedundancyAndTieringRunUnderSharding) {
  // Hedged requests, power-of-two replica choice, retries, and the SSD
  // tier are all shard-local machinery; under sharding they must keep the
  // serial == threaded bit-identity gate.
  ReplicationPlan plan = sharded_plan(2, /*streaming=*/false);
  plan.cluster.max_retries = 1;
  plan.cluster.retry_jitter = 0.3;
  plan.cluster.hedge_delay = 0.04;
  plan.cluster.replica_choice = ClusterConfig::ReplicaChoice::kPowerOfTwo;
  plan.cluster.tier.enabled = true;
  plan.cluster.tier.capacity_chunks = 4096;
  plan.shard_threads = 1;
  const ReplicationResult serial = run_replication(plan, 42);
  ASSERT_GT(serial.completed, 100u);
  plan.shard_threads = 0;
  expect_identical(serial, run_replication(plan, 42));
}

TEST(Shard, FanoutRunsUnderSharding) {
  ReplicationPlan plan = sharded_plan(2, /*streaming=*/false);
  plan.cluster.fanout_n = 2;
  plan.cluster.fanout_k = 1;
  plan.shard_threads = 1;
  const ReplicationResult serial = run_replication(plan, 42);
  ASSERT_GT(serial.completed, 100u);
  plan.shard_threads = 0;
  expect_identical(serial, run_replication(plan, 42));
}

TEST(Shard, ReplicationSetFanOutMatchesSerial) {
  // shards × replications on the pool: the set-level reduction stays
  // bit-identical to the fully serial path.
  ReplicationPlan plan = sharded_plan(2, /*streaming=*/true);
  plan.shard_threads = 1;
  const ReplicationSet serial = run_replications(plan, 1);
  plan.shard_threads = 0;
  const ReplicationSet threaded = run_replications(plan, 4);
  EXPECT_EQ(serial.fingerprint, threaded.fingerprint);
  EXPECT_EQ(serial.completed, threaded.completed);
  EXPECT_EQ(serial.events, threaded.events);
  EXPECT_EQ(serial.moments.mean(), threaded.moments.mean());
}

TEST(Shard, ObsCountersAccountForWindowsAndCrossTraffic) {
  cosm::obs::reset();
  cosm::obs::set_enabled(true);
  ReplicationPlan plan = sharded_plan(2, /*streaming=*/false);
  const ReplicationResult result = run_replication(plan, 42);
  cosm::obs::set_enabled(false);
  ASSERT_GT(result.completed, 0u);
  // Horizon 10 s at the 2.5 ms default window ~= 4000 windows per shard
  // (float fence accumulation may add one window per shard).
  const std::uint64_t windows =
      cosm::obs::counter_value(cosm::obs::Counter::kSimShardWindows);
  EXPECT_GE(windows, 8000u);
  EXPECT_LE(windows, 8004u);
  // With 2000 objects hash-routed over 2 shards, roughly half of each
  // shard's arrivals cross; the exact count is deterministic, nonzero.
  EXPECT_GT(cosm::obs::counter_value(
                cosm::obs::Counter::kSimShardCrossMessages),
            100u);
  // Warmup+benchmark arrivals at 60-80 rps leave many 2.5 ms windows
  // empty on each shard — the wasted-lookahead signal.
  EXPECT_GT(cosm::obs::counter_value(
                cosm::obs::Counter::kSimShardEmptyWindows),
            0u);
  cosm::obs::reset();
}

TEST(ShardMetrics, MergeFromRemapsDevicesAndSumsCounters) {
  SimMetrics merged(4);
  SimMetrics shard0(2);
  SimMetrics shard1(2);
  cosm::sim::RequestSample sample;
  sample.device = 1;
  sample.response_latency = 0.010;
  shard0.on_request_complete(sample);
  sample.response_latency = 0.020;
  sample.timed_out = true;
  shard1.on_request_complete(sample);
  shard1.on_attempt(0, /*is_retry=*/true, /*is_failover=*/false);
  shard1.on_disk_op(1, cosm::sim::AccessKind::kData, 0.004);

  merged.merge_from(shard0, 0);
  merged.merge_from(shard1, 2);
  EXPECT_EQ(merged.completed_requests(), 2u);
  EXPECT_EQ(merged.timeouts(), 1u);
  EXPECT_EQ(merged.latency_count(), 1u);
  // Device ids remap by each shard's offset: shard1's device 1 -> 3.
  EXPECT_EQ(merged.device(1).requests, 1u);
  EXPECT_EQ(merged.device(3).requests, 1u);
  EXPECT_EQ(merged.device(2).attempts, 1u);
  EXPECT_DOUBLE_EQ(merged.mean_disk_service(3, cosm::sim::AccessKind::kData),
                   0.004);
  ASSERT_EQ(merged.requests().size(), 2u);
  EXPECT_EQ(merged.requests()[0].device, 1u);
  EXPECT_EQ(merged.requests()[1].device, 3u);
}

TEST(ShardMetrics, MergeFromRejectsMismatchedModesAndRanges) {
  SimMetrics sampled(2);
  SimMetrics streaming(2);
  streaming.enable_streaming();
  EXPECT_THROW(sampled.merge_from(streaming, 0), std::invalid_argument);
  SimMetrics small(2);
  SimMetrics wide(4);
  EXPECT_THROW(small.merge_from(wide, 0), std::invalid_argument);
  EXPECT_THROW(small.merge_from(small, 1), std::invalid_argument);
}

// ----- ClusterConfig::validate coverage for the shard topology fields -----

TEST(ShardValidate, RejectsMoreShardsThanDevices) {
  ClusterConfig config;
  config.device_count = 4;
  config.frontend_processes = 8;
  config.shards = 8;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ShardValidate, RejectsMoreShardsThanFrontends) {
  ClusterConfig config;
  config.device_count = 16;
  config.frontend_processes = 3;
  config.shards = 4;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ShardValidate, RejectsZeroLookahead) {
  ClusterConfig config;
  config.device_count = 8;
  config.frontend_processes = 4;
  config.shards = 2;
  config.network_latency = 0.0;
  config.shard_window = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  // Either a network hop or an explicit window restores a valid lookahead.
  config.shard_window = 1e-3;
  EXPECT_NO_THROW(config.validate());
  config.shard_window = 0.0;
  config.network_latency = 100e-6;
  EXPECT_NO_THROW(config.validate());
}

TEST(ShardValidate, RejectsShardCountBeyondSeedLanes) {
  ClusterConfig config;
  config.device_count = 256;
  config.frontend_processes = 128;
  config.shards = 65;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.shards = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ShardValidate, AcceptsTieredHedgedFanoutTopologies) {
  // The redundancy and tiering knobs stay shard-local, so sharded configs
  // accept them; hedging and fan-out remain mutually exclusive exactly as
  // in the unsharded validate.
  ClusterConfig config;
  config.device_count = 8;
  config.frontend_processes = 4;
  config.shards = 2;
  config.hedge_delay = 0.05;
  config.tier.enabled = true;
  config.tier.capacity_chunks = 1024;
  EXPECT_NO_THROW(config.validate());
  config.hedge_delay = 0.0;
  config.fanout_n = 2;
  config.fanout_k = 1;
  EXPECT_NO_THROW(config.validate());
  config.hedge_delay = 0.05;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ShardValidate, ClusterItselfRejectsShardedConfigs) {
  ClusterConfig config;
  config.device_count = 8;
  config.frontend_processes = 4;
  config.shards = 2;
  EXPECT_THROW(cosm::sim::Cluster cluster(config), std::invalid_argument);
}

TEST(ShardValidate, RejectsReplicaSetsWiderThanAShard) {
  // 8 devices over 4 shards = 2 devices per shard; a 3-replica set cannot
  // stay shard-local.
  ReplicationPlan plan = sharded_plan(4, /*streaming=*/false);
  plan.placement.replica_count = 3;
  EXPECT_THROW(run_sharded_replication(plan, 42), std::invalid_argument);
}

}  // namespace
