// Client-timeout tests (the "normal status" boundary, paper Sec. III-A /
// V-B): timeouts must fire exactly when the first response byte misses
// the deadline, be counted once, and appear/disappear with load.
#include <gtest/gtest.h>

#include <memory>

#include "sim/cluster.hpp"
#include "sim/source.hpp"

namespace cosm::sim {
namespace {

ClusterConfig timeout_config(double timeout) {
  ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<numerics::Degenerate>(0.001);
  config.backend_parse = std::make_shared<numerics::Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0;
  config.disk = {std::make_shared<numerics::Degenerate>(0.010),
                 std::make_shared<numerics::Degenerate>(0.008),
                 std::make_shared<numerics::Degenerate>(0.012),
                 nullptr, nullptr};
  config.cache.index_miss_ratio = 1.0;
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  config.request_timeout = timeout;
  return config;
}

TEST(Timeouts, FastRequestDoesNotTimeOut) {
  // Single request completes in ~31.5 ms; a 100 ms deadline never fires.
  Cluster cluster(timeout_config(0.100));
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();
  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  EXPECT_EQ(cluster.metrics().timeouts(), 0u);
  EXPECT_FALSE(cluster.metrics().requests().front().timed_out);
}

TEST(Timeouts, SlowRequestTimesOutExactlyOnce) {
  // The same request against a 10 ms deadline: the client gives up before
  // the 30.5 ms backend path completes.
  Cluster cluster(timeout_config(0.010));
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();
  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  EXPECT_EQ(cluster.metrics().timeouts(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_TRUE(sample.timed_out);
  EXPECT_EQ(sample.response_latency, 0.010);
  // The backend still did the wasted work.
  EXPECT_EQ(cluster.device(0).disk().ops_completed(), 3u);
}

TEST(Timeouts, AppearWithLoadAndDefineTheAnalysisBoundary) {
  // At light load no timeouts; near saturation they appear — the paper's
  // truncation criterion becomes measurable.
  auto timeouts_at = [](double rate) {
    ClusterConfig config = timeout_config(0.250);
    config.cache.index_miss_ratio = 0.3;
    config.cache.meta_miss_ratio = 0.3;
    config.cache.data_miss_ratio = 0.7;
    config.seed = 77;
    Cluster cluster(config);
    cosm::Rng arrivals(5);
    double t = 0.0;
    while (t < 120.0) {
      t += arrivals.exponential(rate);
      cluster.engine().schedule_at(t, [&cluster] {
        cluster.submit_request(1, 20000, 0);
      });
    }
    cluster.engine().run_all();
    return cluster.metrics().timeouts();
  };
  EXPECT_EQ(timeouts_at(20.0), 0u);
  EXPECT_GT(timeouts_at(70.0), 20u);  // beyond saturation (~63/s)
}

TEST(Timeouts, ZeroTimeoutDisablesTheMechanism) {
  Cluster cluster(timeout_config(0.0));
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();
  EXPECT_EQ(cluster.metrics().timeouts(), 0u);
}

}  // namespace
}  // namespace cosm::sim
