// Tests for the event-loop policy knobs: accept strategy (one vs batch
// drain), accept deferral, and service order — including the conservation
// property that motivated them: on a work-conserving FIFO server, total
// response latency is invariant to how the accept wait is accounted.
#include <gtest/gtest.h>

#include <memory>

#include "sim/cluster.hpp"
#include "stats/summary.hpp"

namespace cosm::sim {
namespace {

ClusterConfig base_config() {
  ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.network_latency = 0.0;
  config.accept_cost = 0.0;
  config.seed = 91;
  return config;
}

struct RunStats {
  double mean_response = 0.0;
  double mean_accept_wait = 0.0;
  std::uint64_t completed = 0;
};

RunStats run(const ClusterConfig& config, double rate, double duration) {
  Cluster cluster(config);
  cosm::Rng arrivals(12345);
  double t = 0.0;
  while (t < duration) {
    t += arrivals.exponential(rate);
    cluster.engine().schedule_at(t, [&cluster] {
      cluster.submit_request(1, 20000, 0);
    });
  }
  cluster.engine().run_all();
  stats::SampleSet responses;
  stats::SampleSet waits;
  for (const auto& sample : cluster.metrics().requests()) {
    if (sample.frontend_arrival < 0.1 * duration) continue;
    responses.add(sample.response_latency);
    waits.add(sample.accept_wait);
  }
  return {responses.mean(), waits.mean(),
          cluster.metrics().completed_requests()};
}

TEST(AcceptSemantics, AllPoliciesCompleteEveryRequest) {
  for (const auto strategy :
       {AcceptStrategy::kAcceptOne, AcceptStrategy::kBatchDrain}) {
    for (const bool defer : {false, true}) {
      ClusterConfig config = base_config();
      config.accept_strategy = strategy;
      config.defer_accepts = defer;
      const RunStats stats = run(config, 40.0, 100.0);
      EXPECT_NEAR(static_cast<double>(stats.completed), 4000.0, 400.0)
          << "strategy=" << static_cast<int>(strategy)
          << " defer=" << defer;
    }
  }
}

TEST(AcceptSemantics, TotalLatencyInvariantToAcceptAccounting) {
  // Work conservation: deferring accepts or batching them shifts delay
  // between "pool wait" and "op-queue wait" but cannot change the total
  // on a FIFO server.
  ClusterConfig fifo_inline = base_config();
  fifo_inline.defer_accepts = false;
  ClusterConfig fifo_deferred = base_config();
  fifo_deferred.defer_accepts = true;
  const RunStats inline_stats = run(fifo_inline, 50.0, 300.0);
  const RunStats deferred_stats = run(fifo_deferred, 50.0, 300.0);
  EXPECT_NEAR(deferred_stats.mean_response, inline_stats.mean_response,
              0.15 * inline_stats.mean_response);
  // ...but the accept wait itself is larger when accepts are deferred.
  EXPECT_GT(deferred_stats.mean_accept_wait,
            inline_stats.mean_accept_wait * 0.9);
}

TEST(AcceptSemantics, DeferredAcceptWaitGrowsWithLoad) {
  ClusterConfig config = base_config();
  config.defer_accepts = true;
  const RunStats light = run(config, 20.0, 300.0);
  const RunStats heavy = run(config, 52.0, 300.0);
  EXPECT_GT(heavy.mean_accept_wait, 2.0 * light.mean_accept_wait);
}

TEST(AcceptSemantics, SixteenProcessesCollapseTheAcceptWait) {
  // Paper Sec. V-C: "the WTA itself decreases in the scenario S16 ...
  // there are 16 processes accept()-ing connecting requests".
  auto mean_wait = [](unsigned processes) {
    ClusterConfig config = base_config();
    config.processes_per_device = processes;
    const RunStats stats = run(config, 50.0, 200.0);
    return stats.mean_accept_wait;
  };
  const double s1 = mean_wait(1);
  const double s16 = mean_wait(16);
  EXPECT_GT(s1, 5e-3);        // single process: multi-ms accept waits
  EXPECT_LT(s16, 0.05 * s1);  // 16 processes: waits collapse
}

TEST(AcceptSemantics, SiroKeepsMeanLatency) {
  // SIRO is a reordering of ready tasks: the mean must be conserved
  // (within noise); only the tail may widen.
  ClusterConfig fifo = base_config();
  fifo.service_order = ClusterConfig::ServiceOrder::kFifo;
  ClusterConfig siro = base_config();
  siro.service_order = ClusterConfig::ServiceOrder::kSiro;
  const RunStats fifo_stats = run(fifo, 45.0, 300.0);
  const RunStats siro_stats = run(siro, 45.0, 300.0);
  EXPECT_NEAR(siro_stats.mean_response, fifo_stats.mean_response,
              0.12 * fifo_stats.mean_response);
}

TEST(AcceptSemantics, BatchDrainAssignsWholePoolToOneProcess) {
  // With 2 processes, batch drain: stall both processes with a long
  // request each, then send a burst; one accept should grab the whole
  // pool (connection affinity).
  ClusterConfig config = base_config();
  config.processes_per_device = 2;
  config.accept_strategy = AcceptStrategy::kBatchDrain;
  config.cache.index_miss_ratio = 1.0;
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&cluster] {
    cluster.submit_request(1, 20000, 0);
    cluster.submit_request(2, 20000, 0);
  });
  // Burst lands while both processes block on disk.
  cluster.engine().schedule_at(0.005, [&cluster] {
    for (int i = 0; i < 6; ++i) cluster.submit_request(10 + i, 20000, 0);
  });
  cluster.engine().run_all();
  EXPECT_EQ(cluster.metrics().completed_requests(), 8u);
  const auto& processes = cluster.device(0).processes();
  const auto started_0 = processes[0]->requests_started();
  const auto started_1 = processes[1]->requests_started();
  EXPECT_EQ(started_0 + started_1, 8u);
  // The burst of 6 went to a single process: imbalance of at least 6-2.
  EXPECT_GE(std::max(started_0, started_1), 7u);
}

TEST(AcceptSemantics, AcceptOneSpreadsBurstAcrossProcesses) {
  ClusterConfig config = base_config();
  config.processes_per_device = 4;
  config.accept_strategy = AcceptStrategy::kAcceptOne;
  config.cache.index_miss_ratio = 0.0;
  config.cache.meta_miss_ratio = 0.0;
  config.cache.data_miss_ratio = 0.0;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&cluster] {
    for (int i = 0; i < 8; ++i) cluster.submit_request(i, 20000, 0);
  });
  cluster.engine().run_all();
  EXPECT_EQ(cluster.metrics().completed_requests(), 8u);
  // With idle processes and one-connection accepts, no process should
  // hoard the whole burst.
  std::uint64_t busiest = 0;
  for (const auto& process : cluster.device(0).processes()) {
    busiest = std::max(busiest, process->requests_started());
  }
  EXPECT_LT(busiest, 8u);
}

}  // namespace
}  // namespace cosm::sim
