#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/cache.hpp"
#include "sim/disk.hpp"
#include "sim/engine.hpp"

namespace cosm::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) engine.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), 4.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.events_pending(), 1u);
  engine.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(engine.now(), 10.0);
}

TEST(Engine, RejectsPastEventsAndNullCallbacks) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run_all();
  EXPECT_THROW(engine.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(1.0, nullptr), std::invalid_argument);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  EXPECT_TRUE(cache.access(1));  // promotes 1
  cache.insert(3);               // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, ReinsertPromotesInsteadOfDuplicating) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.insert(1);  // promote, no growth
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(3);  // evicts 2 (LRU), not 1
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCache, ZeroCapacityNeverStores) {
  LruCache cache(0);
  cache.insert(1);
  EXPECT_FALSE(cache.access(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheBank, ProbabilisticModeMatchesConfiguredRatios) {
  CacheBankConfig config;
  config.mode = CacheBankConfig::Mode::kProbabilistic;
  config.index_miss_ratio = 0.25;
  config.meta_miss_ratio = 0.5;
  config.data_miss_ratio = 0.9;
  CacheBank bank(config);
  cosm::Rng rng(8);
  int index_misses = 0;
  int meta_misses = 0;
  int data_misses = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    index_misses += bank.lookup(AccessKind::kIndex, 1, 0, rng) ? 0 : 1;
    meta_misses += bank.lookup(AccessKind::kMeta, 1, 0, rng) ? 0 : 1;
    data_misses += bank.lookup(AccessKind::kData, 1, 0, rng) ? 0 : 1;
  }
  EXPECT_NEAR(index_misses / static_cast<double>(kN), 0.25, 0.01);
  EXPECT_NEAR(meta_misses / static_cast<double>(kN), 0.5, 0.01);
  EXPECT_NEAR(data_misses / static_cast<double>(kN), 0.9, 0.01);
}

TEST(CacheBank, LruModeIsDeterministicGivenAccessPattern) {
  CacheBankConfig config;
  config.mode = CacheBankConfig::Mode::kLru;
  config.index_entries = 2;
  config.meta_entries = 2;
  config.data_chunks = 2;
  CacheBank bank(config);
  cosm::Rng rng(1);
  // Cold: miss, fill; then hit.
  EXPECT_FALSE(bank.lookup(AccessKind::kIndex, 7, 0, rng));
  bank.fill(AccessKind::kIndex, 7, 0);
  EXPECT_TRUE(bank.lookup(AccessKind::kIndex, 7, 0, rng));
  // Data cache keys include the chunk index.
  bank.fill(AccessKind::kData, 7, 0);
  EXPECT_TRUE(bank.lookup(AccessKind::kData, 7, 0, rng));
  EXPECT_FALSE(bank.lookup(AccessKind::kData, 7, 1, rng));
}

TEST(CacheBank, RejectsBadRatios) {
  CacheBankConfig config;
  config.index_miss_ratio = 1.5;
  EXPECT_THROW(CacheBank{config}, std::invalid_argument);
}

TEST(Disk, ServesFcfsAndTracksUtilization) {
  Engine engine;
  DiskProfile profile{std::make_shared<numerics::Degenerate>(0.010),
                      std::make_shared<numerics::Degenerate>(0.008),
                      std::make_shared<numerics::Degenerate>(0.012),
                      nullptr, nullptr};
  Disk disk(engine, profile, cosm::Rng(1));
  std::vector<std::pair<int, double>> completions;
  engine.schedule_at(0.0, [&] {
    disk.submit(AccessKind::kIndex,
                [&](double s, bool) { completions.push_back({0, s}); });
    disk.submit(AccessKind::kMeta,
                [&](double s, bool) { completions.push_back({1, s}); });
    disk.submit(AccessKind::kData,
                [&](double s, bool) { completions.push_back({2, s}); });
  });
  engine.run_all();
  ASSERT_EQ(completions.size(), 3u);
  // FCFS order with deterministic service times 10, 8, 12 ms.
  EXPECT_EQ(completions[0].first, 0);
  EXPECT_EQ(completions[1].first, 1);
  EXPECT_EQ(completions[2].first, 2);
  EXPECT_NEAR(completions[0].second, 0.010, 1e-12);
  EXPECT_NEAR(engine.now(), 0.030, 1e-12);
  EXPECT_EQ(disk.ops_completed(), 3u);
  EXPECT_NEAR(disk.busy_time(), 0.030, 1e-12);
}

TEST(Disk, GammaServiceMeansMatchProfile) {
  Engine engine;
  Disk disk(engine, default_hdd_profile(), cosm::Rng(77));
  double total = 0.0;
  int done = 0;
  constexpr int kN = 20000;
  std::function<void()> submit_next = [&] {
    if (done >= kN) return;
    disk.submit(AccessKind::kIndex, [&](double s, bool) {
      total += s;
      ++done;
      submit_next();
    });
  };
  engine.schedule_at(0.0, submit_next);
  engine.run_all();
  EXPECT_EQ(done, kN);
  EXPECT_NEAR(total / kN, 0.010, 0.0003);  // profile index mean 10 ms
}

TEST(Disk, RequiresCompleteProfile) {
  Engine engine;
  DiskProfile missing{nullptr, nullptr, nullptr, nullptr, nullptr};
  EXPECT_THROW(Disk(engine, missing, cosm::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::sim
