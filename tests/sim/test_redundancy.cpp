// Redundancy semantics (tail-tolerance extension): hedged GETs, (n,k)
// fan-out reads completing on the k-th arrival, replica-choice
// scheduling, cancel-on-first-complete accounting, and the RequestPool
// refcount/epoch machinery the cancel path leans on.  Suite names carry
// "Redundancy" / "RequestPool" so the TSan CI lane picks them up.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/request.hpp"

namespace cosm::sim {
namespace {

// Deterministic single-path cluster (same shape as the retry tests): a
// healthy request takes 1 + 0.5 + 10 + 8 + 12 ms ~ 31.5 ms end to end.
ClusterConfig redundancy_config(std::uint32_t devices) {
  ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = devices;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<numerics::Degenerate>(0.001);
  config.backend_parse = std::make_shared<numerics::Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0;
  config.disk = {std::make_shared<numerics::Degenerate>(0.010),
                 std::make_shared<numerics::Degenerate>(0.008),
                 std::make_shared<numerics::Degenerate>(0.012),
                 nullptr, nullptr};
  config.cache.index_miss_ratio = 1.0;
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  return config;
}

TEST(Redundancy, HedgedAttemptWinsAgainstSlowPrimary) {
  // Device 0's disk is 10x slow for the whole run: the primary attempt
  // would respond after ~301.5 ms, the hedge (fired at 50 ms against the
  // healthy replica) after ~81.5 ms.  The hedge must win, the primary
  // must be cancelled, and exactly one sample must be recorded.
  ClusterConfig config = redundancy_config(2);
  config.hedge_delay = 0.05;
  config.faults.disk_slowdown(0, 0.0, 10.0, 10.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(1.0, [&] {
    cluster.submit_request(1, 1000, std::vector<std::uint32_t>{0, 1});
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  ASSERT_EQ(cluster.metrics().requests().size(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_FALSE(sample.timed_out);
  EXPECT_FALSE(sample.failed);
  EXPECT_FALSE(sample.retried);  // a hedge is not a retry
  EXPECT_EQ(sample.device, 1u);  // the hedge's replica won
  EXPECT_EQ(sample.attempts, 2u);
  EXPECT_EQ(sample.hedges, 1u);
  // ~50 ms hedge deadline + the healthy 31.5 ms service.
  EXPECT_NEAR(sample.response_latency, 0.05 + 0.0315, 0.004);

  const OutcomeCounts outcomes = cluster.metrics().outcomes();
  EXPECT_EQ(outcomes.ok, 1u);
  EXPECT_EQ(outcomes.hedge_attempts, 1u);
  EXPECT_EQ(outcomes.hedge_wins, 1u);
  EXPECT_EQ(outcomes.cancelled_attempts, 1u);
  EXPECT_EQ(outcomes.fanout_groups, 0u);  // hedges are lazy groups
  // Attempt accounting: the cancelled primary still counted as load its
  // device saw — the arrival inflation the degraded what-if consumes.
  EXPECT_EQ(cluster.metrics().device(0).attempts, 1u);
  EXPECT_EQ(cluster.metrics().device(1).attempts, 1u);
}

TEST(Redundancy, HedgeDoesNotFireWhenPrimaryMeetsDeadline) {
  // Healthy primary responds in ~31.5 ms, under the 50 ms deadline: no
  // hedge is dispatched and the legacy single-attempt sample shape holds.
  ClusterConfig config = redundancy_config(2);
  config.hedge_delay = 0.05;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, std::vector<std::uint32_t>{0, 1});
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().requests().size(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_EQ(sample.attempts, 1u);
  EXPECT_EQ(sample.hedges, 0u);
  EXPECT_NEAR(sample.response_latency, 0.0315, 0.002);
  const OutcomeCounts outcomes = cluster.metrics().outcomes();
  EXPECT_EQ(outcomes.hedge_attempts, 0u);
  EXPECT_EQ(outcomes.cancelled_attempts, 0u);
  EXPECT_EQ(cluster.metrics().device(1).attempts, 0u);
}

TEST(Redundancy, FanoutCompletesOnKthArrival) {
  // (3,2) coded read over one slow and two healthy replicas: the request
  // completes on the SECOND response, without waiting for the straggler,
  // which is cancelled.
  ClusterConfig config = redundancy_config(3);
  config.fanout_n = 3;
  config.fanout_k = 2;
  config.faults.disk_slowdown(2, 0.0, 10.0, 10.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, std::vector<std::uint32_t>{0, 1, 2});
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  ASSERT_EQ(cluster.metrics().requests().size(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_FALSE(sample.timed_out);
  EXPECT_FALSE(sample.failed);
  EXPECT_FALSE(sample.retried);
  EXPECT_EQ(sample.attempts, 3u);
  EXPECT_EQ(sample.hedges, 0u);
  // The single frontend process serializes the three 1 ms parses; the
  // second healthy replica responds ~2 + 0.5 + 30 ms after arrival —
  // nowhere near the ~302 ms straggler.
  EXPECT_NEAR(sample.response_latency, 0.0325, 0.003);

  const OutcomeCounts outcomes = cluster.metrics().outcomes();
  EXPECT_EQ(outcomes.fanout_groups, 1u);
  EXPECT_EQ(outcomes.cancelled_attempts, 1u);
  EXPECT_EQ(outcomes.hedge_attempts, 0u);
  for (std::uint32_t d = 0; d < 3; ++d) {
    EXPECT_EQ(cluster.metrics().device(d).attempts, 1u) << d;
  }
}

TEST(Redundancy, FanoutGroupFailureIsOneFailedSample) {
  // Every replica is out: both coded attempts die and the group must
  // collapse into exactly one failed sample (never zero, never two).
  ClusterConfig config = redundancy_config(2);
  config.fanout_n = 2;
  config.fanout_k = 1;
  config.faults.device_outage(0, 0.0, 10.0);
  config.faults.device_outage(1, 0.0, 10.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(1.0, [&] {
    cluster.submit_request(1, 1000, std::vector<std::uint32_t>{0, 1});
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  ASSERT_EQ(cluster.metrics().requests().size(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_TRUE(sample.failed);
  EXPECT_FALSE(sample.timed_out);
  EXPECT_EQ(sample.attempts, 2u);
  EXPECT_EQ(cluster.metrics().failures(), 1u);
  const OutcomeCounts outcomes = cluster.metrics().outcomes();
  EXPECT_EQ(outcomes.failed, 1u);
  EXPECT_EQ(outcomes.fanout_groups, 1u);
}

TEST(Redundancy, LeastOutstandingSpreadsAcrossReplicas) {
  // Four simultaneous reads, all listing device 0 first.  kPrimary would
  // send all four to device 0; least-outstanding alternates because each
  // dispatch bumps the chosen device's in-flight count.
  ClusterConfig config = redundancy_config(2);
  config.replica_choice = ClusterConfig::ReplicaChoice::kLeastOutstanding;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    for (int i = 0; i < 4; ++i) {
      cluster.submit_request(static_cast<std::uint64_t>(i), 1000,
                             std::vector<std::uint32_t>{0, 1});
    }
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 4u);
  EXPECT_EQ(cluster.metrics().device(0).attempts, 2u);
  EXPECT_EQ(cluster.metrics().device(1).attempts, 2u);
  // Everything settled: no attempt left in flight on either device.
  EXPECT_EQ(cluster.outstanding(0), 0u);
  EXPECT_EQ(cluster.outstanding(1), 0u);
}

// Shared bit-determinism harness: run the same seeded faulted workload
// twice and require sample-for-sample bitwise equality.
struct RunResult {
  std::vector<RequestSample> samples;
  std::uint64_t completed = 0;
  OutcomeCounts outcomes;
  std::vector<std::uint64_t> device_attempts;
};

template <typename Configure>
RunResult run_seeded(Configure&& configure) {
  ClusterConfig config = redundancy_config(2);
  config.seed = 2024;
  config.request_timeout = 0.25;
  config.max_retries = 1;
  config.retry_backoff_base = 0.02;
  config.faults.disk_slowdown(0, 0.3, 0.5, 8.0);
  configure(config);
  Cluster cluster(config);
  cosm::Rng arrivals(9);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += arrivals.exponential(50.0);
    const std::uint32_t primary = i % 2 == 0 ? 0u : 1u;
    cluster.engine().schedule_at(t, [&cluster, primary] {
      cluster.submit_request(
          1, 20000, std::vector<std::uint32_t>{primary, 1u - primary});
    });
  }
  cluster.engine().run_all();
  RunResult result;
  result.samples = cluster.metrics().requests();
  result.completed = cluster.metrics().completed_requests();
  result.outcomes = cluster.metrics().outcomes();
  for (std::uint32_t d = 0; d < 2; ++d) {
    result.device_attempts.push_back(cluster.metrics().device(d).attempts);
  }
  return result;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].response_latency,
              b.samples[i].response_latency)  // bitwise
        << i;
    EXPECT_EQ(a.samples[i].attempts, b.samples[i].attempts) << i;
    EXPECT_EQ(a.samples[i].hedges, b.samples[i].hedges) << i;
    EXPECT_EQ(a.samples[i].device, b.samples[i].device) << i;
  }
  EXPECT_EQ(a.outcomes.hedge_attempts, b.outcomes.hedge_attempts);
  EXPECT_EQ(a.outcomes.cancelled_attempts, b.outcomes.cancelled_attempts);
  EXPECT_EQ(a.outcomes.fanout_groups, b.outcomes.fanout_groups);
  EXPECT_EQ(a.device_attempts, b.device_attempts);
}

TEST(Redundancy, HedgedRunIsBitDeterministicForFixedSeed) {
  const auto configure = [](ClusterConfig& config) {
    config.hedge_delay = 0.04;
    config.replica_choice = ClusterConfig::ReplicaChoice::kPowerOfTwo;
  };
  const RunResult a = run_seeded(configure);
  const RunResult b = run_seeded(configure);
  ASSERT_EQ(a.completed, 200u);
  // The slowdown window actually produced hedges and cancellations, and
  // power-of-two routing touched both devices.
  EXPECT_GT(a.outcomes.hedge_attempts, 0u);
  EXPECT_GT(a.outcomes.cancelled_attempts, 0u);
  EXPECT_GT(a.device_attempts[0], 0u);
  EXPECT_GT(a.device_attempts[1], 0u);
  expect_bit_identical(a, b);
}

TEST(Redundancy, FanoutRunIsBitDeterministicForFixedSeed) {
  const auto configure = [](ClusterConfig& config) {
    config.fanout_n = 2;
    config.fanout_k = 1;
  };
  const RunResult a = run_seeded(configure);
  const RunResult b = run_seeded(configure);
  ASSERT_EQ(a.completed, 200u);
  EXPECT_EQ(a.outcomes.fanout_groups, 200u);
  EXPECT_GT(a.outcomes.cancelled_attempts, 0u);
  expect_bit_identical(a, b);
}

TEST(RequestPool, WeakRefExpiresOnRecycleAndNeverResurrects) {
  RequestPool pool;
  RequestPtr strong = pool.acquire();
  strong->id = 7;
  const Request* slot = strong.get();
  WeakRequestRef weak(strong);
  EXPECT_FALSE(weak.expired());
  {
    const RequestPtr locked = weak.lock();
    ASSERT_TRUE(static_cast<bool>(locked));
    EXPECT_EQ(locked->id, 7u);
  }
  // Dropping the last strong ref recycles the slot; the weak ref must
  // expire with it.
  strong = nullptr;
  EXPECT_TRUE(weak.expired());
  EXPECT_EQ(weak.lock(), nullptr);
  // The slot is re-issued to a NEW request: the stale weak ref must not
  // resurrect it even though the address matches.
  RequestPtr fresh = pool.acquire();
  ASSERT_EQ(fresh.get(), slot);  // the free list reused the slab
  EXPECT_EQ(fresh->id, 0u);      // fields were reset
  EXPECT_TRUE(weak.expired());
  EXPECT_EQ(weak.lock(), nullptr);
  // A weak ref against the new occupant works normally.
  WeakRequestRef current(fresh);
  EXPECT_FALSE(current.expired());
  EXPECT_EQ(current.lock().get(), fresh.get());
}

TEST(RequestPool, LockExtendsLifetimeAcrossLastExternalRelease) {
  // The cancel path's race in miniature: a timer locks its weak ref just
  // as the owner drops the last strong ref.  The locked pointer must keep
  // the request alive (no recycle mid-use), and the recycle must happen
  // exactly once when the lock goes away.
  RequestPool pool;
  RequestPtr strong = pool.acquire();
  strong->id = 11;
  WeakRequestRef weak(strong);
  RequestPtr locked = weak.lock();
  strong = nullptr;  // timer's lock is now the only ref
  ASSERT_TRUE(static_cast<bool>(locked));
  EXPECT_EQ(locked->id, 11u);
  EXPECT_FALSE(weak.expired());  // still the same generation: not recycled
  EXPECT_EQ(pool.idle(), 0u);
  locked = nullptr;
  EXPECT_TRUE(weak.expired());
  EXPECT_EQ(pool.idle(), 1u);  // recycled exactly once
}

TEST(RequestPool, RefcountSurvivesCopyMoveChurn) {
  // Adversarial churn over a small pool: copies, moves, self-assignment,
  // and interleaved weak refs across many recycle generations.  The pool
  // must end balanced (every slot idle, nothing leaked or double-freed)
  // and every weak ref from an earlier generation must be expired.
  RequestPool pool;
  std::vector<WeakRequestRef> stale;
  for (int round = 0; round < 200; ++round) {
    std::vector<RequestPtr> strongs;
    for (int i = 0; i < 8; ++i) {
      strongs.push_back(pool.acquire());
      strongs.back()->id = static_cast<std::uint64_t>(round * 8 + i);
    }
    // Copy churn: duplicate refs, drop originals, keep the copies.
    std::vector<RequestPtr> copies(strongs);
    for (auto& ptr : strongs) ptr = nullptr;
    for (const auto& ptr : copies) {
      stale.emplace_back(ptr);
      EXPECT_FALSE(stale.back().expired());
    }
    // Move churn, including moves onto live slots.
    std::vector<RequestPtr> moved;
    for (auto& ptr : copies) moved.push_back(std::move(ptr));
    moved.front() = moved.back();            // copy-assign over a live ref
    moved.back() = std::move(moved.front()); // move-assign back
    // Releasing everything recycles all 8 slots.
    moved.clear();
    copies.clear();
  }
  EXPECT_EQ(pool.allocated(), 8u);  // the free list was reused every round
  EXPECT_EQ(pool.idle(), 8u);
  for (const auto& weak : stale) {
    EXPECT_TRUE(weak.expired());
    EXPECT_EQ(weak.lock(), nullptr);
  }
}

}  // namespace
}  // namespace cosm::sim
