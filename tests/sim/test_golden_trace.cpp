// Golden-trace guard for the simulator hot path.
//
// The engine / request-pool / callback overhaul must not change *any*
// simulated behaviour: for a fixed seed, the per-request latency samples
// (and their companion fields) have to stay bit-identical to the pre-
// overhaul simulator.  This test replays scaled-down versions of the
// figure/table bench scenarios — same seed derivation as
// bench/common/experiment.cpp's run_point (cluster seed s, catalog s+1,
// placement s+2, source s+3), same S1/S16 process counts, same timeout —
// and folds every retained RequestSample into a 64-bit fingerprint that
// was generated from the seed-state build of this repository.
//
// If an engine or entity change breaks a fingerprint, event order (and
// therefore the validation data behind every figure and table) changed.
// Regenerate only for *intentional* semantic changes:
//   g++ -O2 -std=c++20 -DCOSM_GOLDEN_GENERATE -I src
//       tests/sim/test_golden_trace.cpp <cosm libs>   (one command line)
#include <bit>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/source.hpp"

#ifndef COSM_GOLDEN_GENERATE
#include <gtest/gtest.h>
#endif

namespace {

// SplitMix64 finalizer as an order-sensitive fold; self-contained so the
// generator and the test cannot drift apart.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

struct GoldenScenario {
  const char* name;
  std::uint32_t processes_per_device;  // 1 = S1, 16 = S16
  double rate;                         // system arrivals/s
  std::uint64_t seed;                  // run_point's derived bench seed
  std::uint64_t expected;              // fingerprint from the seed build
};

// Seeds follow the figure-bench formula config.seed + 1000 * (i + 1) with
// the ICPP'17 base seed, plus the ClusterConfig default seed 42.  Dwell is
// scaled (5 s warmup + 20 s measure) so the whole suite stays fast; any
// event-order change shows up within a few thousand requests.
std::uint64_t golden_fingerprint(const GoldenScenario& scenario) {
  cosm::sim::ClusterConfig config;
  config.device_count = 4;
  config.processes_per_device = scenario.processes_per_device;
  config.request_timeout = 0.25;
  config.seed = scenario.seed;
  cosm::sim::Cluster cluster(config);

  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  cat_config.seed = scenario.seed + 1;
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement({.partition_count = 1024,
                                             .replica_count = 3,
                                             .device_count = 4,
                                             .seed = scenario.seed + 2});

  cosm::workload::PhasePlan plan;
  plan.warmup_rate = scenario.rate;
  plan.warmup_duration = 5.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = scenario.rate;
  plan.benchmark_end_rate = scenario.rate;
  plan.benchmark_step_duration = 20.0;

  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(scenario.seed + 3));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  std::uint64_t h = 0x243F6A8885A308D3ULL;  // pi, for no reason but fixity
  for (const auto& sample : cluster.metrics().requests()) {
    h = mix(h, bits(sample.response_latency));
    h = mix(h, bits(sample.backend_latency));
    h = mix(h, bits(sample.accept_wait));
    h = mix(h, bits(sample.frontend_arrival));
    h = mix(h, (static_cast<std::uint64_t>(sample.device) << 32) |
                   (static_cast<std::uint64_t>(sample.chunks) << 8) |
                   (sample.timed_out ? 2u : 0u) | (sample.failed ? 1u : 0u));
  }
  h = mix(h, cluster.metrics().requests().size());
  h = mix(h, cluster.metrics().timeouts());
  return h;
}

constexpr std::uint64_t kBase = 20170813;  // the figure benches' seed

GoldenScenario golden_scenarios[] = {
    {"S1_light", 1, 80.0, kBase + 1000, 0x47a38b674b526642ULL},
    {"S1_busy", 1, 200.0, kBase + 2000, 0x6db672698f5c3631ULL},
    {"S16_mid", 16, 150.0, kBase + 3000, 0xff51f280ea63e2f5ULL},
    {"default_seed", 4, 150.0, 42, 0xb22837c70cf8bf1eULL},
};

}  // namespace

#ifdef COSM_GOLDEN_GENERATE
int main() {
  for (auto& scenario : golden_scenarios) {
    std::printf("    {\"%s\", %u, %.1f, %lluULL, 0x%016llxULL},\n",
                scenario.name, scenario.processes_per_device, scenario.rate,
                static_cast<unsigned long long>(scenario.seed),
                static_cast<unsigned long long>(golden_fingerprint(scenario)));
  }
  return 0;
}
#else
class GoldenTrace : public ::testing::TestWithParam<GoldenScenario> {};

TEST_P(GoldenTrace, LatencySamplesBitIdenticalToSeedBuild) {
  const GoldenScenario& scenario = GetParam();
  EXPECT_EQ(golden_fingerprint(scenario), scenario.expected)
      << "scenario " << scenario.name
      << ": per-request latency samples diverged from the seed build; "
         "the engine/request-pool overhaul changed simulated behaviour";
}

INSTANTIATE_TEST_SUITE_P(Scenarios, GoldenTrace,
                         ::testing::ValuesIn(golden_scenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });
#endif
