// Streaming (constant-memory) metrics mode vs the default sampled mode:
// both answer latency quantile / CDF queries, streaming within one log-
// bucket width, and both exclude warmup, timeouts, and fault-killed
// requests from the latency distribution.
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/metrics.hpp"

namespace {

using cosm::sim::RequestSample;
using cosm::sim::SimMetrics;
using cosm::sim::StreamingConfig;

RequestSample sample_at(double arrival, double latency) {
  RequestSample sample;
  sample.frontend_arrival = arrival;
  sample.response_latency = latency;
  return sample;
}

TEST(MetricsStreaming, QuantilesAgreeWithSampledMode) {
  SimMetrics sampled(1);
  SimMetrics streaming(1);
  streaming.enable_streaming();
  ASSERT_TRUE(streaming.streaming());
  ASSERT_FALSE(sampled.streaming());

  cosm::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Log-normal-ish spread over ~3 decades, the shape latencies have.
    const double latency = 1e-3 * std::exp(rng.normal(0.0, 2.0));
    sampled.on_request_complete(sample_at(1.0, latency));
    streaming.on_request_complete(sample_at(1.0, latency));
  }
  EXPECT_EQ(sampled.latency_count(), 20000u);
  EXPECT_EQ(streaming.latency_count(), 20000u);
  // Welford moments are mode-independent (same adds, same order).
  EXPECT_EQ(sampled.latency_moments().mean(), streaming.latency_moments().mean());

  for (const double p : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = sampled.latency_quantile(p);
    const double bucketed = streaming.latency_quantile(p);
    // 200 buckets/decade -> ~1.16% bucket width; allow two widths.
    EXPECT_NEAR(bucketed / exact, 1.0, 0.025) << "p=" << p;
  }
  for (const double sla : {2e-3, 1e-2, 5e-2}) {
    EXPECT_NEAR(sampled.latency_fraction_below(sla),
                streaming.latency_fraction_below(sla), 0.01)
        << "sla=" << sla;
  }
}

TEST(MetricsStreaming, StreamingDropsRequestSamples) {
  SimMetrics metrics(1);
  metrics.enable_streaming();
  for (int i = 0; i < 100; ++i) {
    metrics.on_request_complete(sample_at(0.0, 0.01));
  }
  EXPECT_TRUE(metrics.requests().empty());
  EXPECT_EQ(metrics.completed_requests(), 100u);
  EXPECT_EQ(metrics.latency_count(), 100u);
}

TEST(MetricsStreaming, WarmupTimeoutsAndFailuresExcludedInBothModes) {
  for (const bool streaming : {false, true}) {
    SimMetrics metrics(1);
    metrics.sample_start_time = 10.0;
    if (streaming) metrics.enable_streaming();

    metrics.on_request_complete(sample_at(5.0, 0.5));  // warmup: dropped
    metrics.on_request_complete(sample_at(11.0, 0.1));
    RequestSample timed_out = sample_at(12.0, 9.9);
    timed_out.timed_out = true;
    metrics.on_request_complete(timed_out);
    RequestSample failed = sample_at(13.0, 9.9);
    failed.failed = true;
    metrics.on_request_complete(failed);

    EXPECT_EQ(metrics.latency_count(), 1u) << "streaming=" << streaming;
    EXPECT_EQ(metrics.latency_moments().count(), 1u);
    EXPECT_NEAR(metrics.latency_quantile(0.5), 0.1, 0.002);
    EXPECT_EQ(metrics.timeouts(), 1u);
    EXPECT_EQ(metrics.failures(), 1u);
  }
}

TEST(MetricsStreaming, CustomHistogramResolution) {
  SimMetrics metrics(1);
  StreamingConfig config;
  config.buckets_per_decade = 1000;  // ~0.23% bucket width
  metrics.enable_streaming(config);
  cosm::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    metrics.on_request_complete(sample_at(0.0, 0.01 + 0.02 * rng.uniform()));
  }
  const double p50 = metrics.latency_quantile(0.5);
  EXPECT_NEAR(p50, 0.02, 0.001);
}

TEST(MetricsStreaming, EnableStreamingRejectedAfterSamples) {
  SimMetrics metrics(1);
  metrics.on_request_complete(sample_at(0.0, 0.01));
  EXPECT_THROW(metrics.enable_streaming(), std::exception);
}

TEST(MetricsStreaming, CheckedQuantileFlagsOutOfRangeMass) {
  SimMetrics metrics(1);
  StreamingConfig config;
  config.hist_min = 1e-3;
  config.hist_max = 1.0;
  metrics.enable_streaming(config);
  // Every latency beyond hist_max: the streaming histogram can only
  // bound the quantile, and the checked surface must say so instead of
  // fabricating a value.
  for (int i = 0; i < 100; ++i) {
    metrics.on_request_complete(sample_at(0.0, 50.0));
  }
  const cosm::stats::QuantileEstimate p99 =
      metrics.latency_quantile_checked(0.99);
  EXPECT_EQ(p99.bound, cosm::stats::QuantileBound::kLowerBound);
  EXPECT_GE(p99.value, 1.0);
  // Legacy surface keeps returning the same (bound) value.
  EXPECT_EQ(metrics.latency_quantile(0.99), p99.value);
}

TEST(MetricsStreaming, CheckedQuantileIsExactInSampledMode) {
  SimMetrics metrics(1);
  for (int i = 0; i < 100; ++i) {
    metrics.on_request_complete(sample_at(0.0, 0.01 * (i + 1)));
  }
  const cosm::stats::QuantileEstimate p50 =
      metrics.latency_quantile_checked(0.5);
  EXPECT_EQ(p50.bound, cosm::stats::QuantileBound::kExact);
  EXPECT_EQ(p50.value, metrics.latency_quantile(0.5));
}

TEST(MetricsStreaming, ReserveIsNoOpInStreamingMode) {
  SimMetrics metrics(1);
  metrics.enable_streaming();
  metrics.reserve_request_samples(1 << 20);  // must not allocate samples
  EXPECT_TRUE(metrics.requests().empty());
  SimMetrics sampled(1);
  sampled.reserve_request_samples(128);
  sampled.on_request_complete(sample_at(0.0, 0.01));
  EXPECT_EQ(sampled.requests().size(), 1u);
}

}  // namespace
