// Parallel replications must be BIT-identical to the serial path for any
// thread count: every replication owns its cluster and result slot, and
// reductions run in plan order on the caller.  This test runs the same
// plan serially and with 2 and 8 threads and compares fingerprints and
// merged statistics exactly.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/replication.hpp"
#include "workload/catalog.hpp"

namespace {

using cosm::sim::ReplicationPlan;
using cosm::sim::ReplicationSet;
using cosm::sim::run_replication;
using cosm::sim::run_replications;

ReplicationPlan small_plan(bool streaming) {
  ReplicationPlan plan;
  plan.seeds = {42, 1042, 2042, 3042, 4042, 5042};
  plan.cluster.device_count = 2;
  plan.cluster.processes_per_device = 2;
  plan.cluster.request_timeout = 0.25;
  plan.catalog.object_count = 2000;
  plan.catalog.size_distribution =
      cosm::workload::default_size_distribution();
  plan.placement = {.partition_count = 256,
                    .replica_count = 2,
                    .device_count = 2,
                    .seed = 0};
  plan.phases.warmup_rate = 60.0;
  plan.phases.warmup_duration = 2.0;
  plan.phases.transition_duration = 0.0;
  plan.phases.benchmark_start_rate = 60.0;
  plan.phases.benchmark_end_rate = 60.0;
  plan.phases.benchmark_step_duration = 8.0;
  plan.streaming = streaming;
  return plan;
}

void expect_identical(const ReplicationSet& a, const ReplicationSet& b) {
  ASSERT_EQ(a.replications.size(), b.replications.size());
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.latency_count, b.latency_count);
  // Merged moments are float reductions; plan-order merging makes even
  // their rounding error identical.
  EXPECT_EQ(a.moments.count(), b.moments.count());
  EXPECT_EQ(a.moments.mean(), b.moments.mean());
  EXPECT_EQ(a.moments.variance(), b.moments.variance());
  for (std::size_t i = 0; i < a.replications.size(); ++i) {
    EXPECT_EQ(a.replications[i].fingerprint, b.replications[i].fingerprint)
        << "replication " << i;
    EXPECT_EQ(a.replications[i].seed, b.replications[i].seed);
    EXPECT_EQ(a.replications[i].latencies, b.replications[i].latencies);
  }
}

TEST(Replication, ParallelBitIdenticalToSerialSampled) {
  const ReplicationPlan plan = small_plan(/*streaming=*/false);
  const ReplicationSet serial = run_replications(plan, 1);
  ASSERT_GT(serial.completed, 0u);
  ASSERT_GT(serial.latency_count, 0u);
  expect_identical(serial, run_replications(plan, 2));
  expect_identical(serial, run_replications(plan, 8));
}

TEST(Replication, ParallelBitIdenticalToSerialStreaming) {
  const ReplicationPlan plan = small_plan(/*streaming=*/true);
  const ReplicationSet serial = run_replications(plan, 1);
  ASSERT_GT(serial.latency_count, 0u);
  // Streaming drops raw samples but its fingerprint still pins the run.
  EXPECT_TRUE(serial.replications.front().latencies.empty());
  expect_identical(serial, run_replications(plan, 2));
  expect_identical(serial, run_replications(plan, 8));
}

TEST(Replication, HedgedParallelBitIdenticalToSerial) {
  // Redundancy extension: hedged GETs + power-of-two replica choice +
  // jittered retries exercise the cancel-on-first-complete machinery in
  // every replication.  Bit-identity across {1, 2, 8} threads must hold
  // exactly as it does for the plain plan.
  ReplicationPlan plan = small_plan(/*streaming=*/false);
  plan.cluster.request_timeout = 0.25;
  plan.cluster.max_retries = 1;
  plan.cluster.retry_jitter = 0.3;
  plan.cluster.hedge_delay = 0.04;
  plan.cluster.replica_choice =
      cosm::sim::ClusterConfig::ReplicaChoice::kPowerOfTwo;
  const ReplicationSet serial = run_replications(plan, 1);
  ASSERT_GT(serial.completed, 0u);
  ASSERT_GT(serial.latency_count, 0u);
  expect_identical(serial, run_replications(plan, 2));
  expect_identical(serial, run_replications(plan, 8));
}

TEST(Replication, SingleReplicationMatchesSetSlot) {
  const ReplicationPlan plan = small_plan(/*streaming=*/false);
  const ReplicationSet set = run_replications(plan, 2);
  const auto solo = run_replication(plan, plan.seeds[3]);
  EXPECT_EQ(solo.fingerprint, set.replications[3].fingerprint);
  EXPECT_EQ(solo.latencies, set.replications[3].latencies);
}

TEST(Replication, StreamingAndSampledAgreeOnCounters) {
  const ReplicationSet sampled =
      run_replications(small_plan(/*streaming=*/false), 1);
  const ReplicationSet streaming =
      run_replications(small_plan(/*streaming=*/true), 1);
  // Same seeds, same simulation — only the recording differs.
  EXPECT_EQ(sampled.completed, streaming.completed);
  EXPECT_EQ(sampled.timeouts, streaming.timeouts);
  EXPECT_EQ(sampled.events, streaming.events);
  EXPECT_EQ(sampled.latency_count, streaming.latency_count);
  EXPECT_EQ(sampled.moments.count(), streaming.moments.count());
  EXPECT_EQ(sampled.moments.mean(), streaming.moments.mean());
}

}  // namespace
