// End-to-end cluster tests.
//
// The deterministic timing test is the anchor: with Degenerate parse and
// disk distributions and a single request, the exact response latency is a
// pencil-and-paper sum of the configured constants, so any drift in the
// request pipeline (missing latency hop, wrong blocking semantics, chunk
// pacing bug) shows up as an exact-value failure.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/cluster.hpp"
#include "sim/source.hpp"

namespace cosm::sim {
namespace {

ClusterConfig deterministic_config() {
  ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<numerics::Degenerate>(0.001);
  config.backend_parse = std::make_shared<numerics::Degenerate>(0.0005);
  config.accept_cost = 0.0001;
  config.network_latency = 0.0002;
  config.network_bandwidth_bytes_per_sec = 1e8;
  config.chunk_bytes = 65536;
  config.disk = {std::make_shared<numerics::Degenerate>(0.010),
                 std::make_shared<numerics::Degenerate>(0.008),
                 std::make_shared<numerics::Degenerate>(0.012),
                 nullptr, nullptr};
  config.cache.mode = CacheBankConfig::Mode::kProbabilistic;
  config.cache.index_miss_ratio = 1.0;  // every op hits the disk
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  return config;
}

TEST(Cluster, SingleRequestDeterministicTimeline) {
  Cluster cluster(deterministic_config());
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(/*object_id=*/1, /*size_bytes=*/1000,
                           /*device=*/0);
  });
  cluster.engine().run_all();
  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  // Timeline: frontend parse (1 ms) + connect latency (0.2 ms)
  //   -> pool; idle process accepts immediately (wait 0)
  //   -> 2 network latencies (0.4 ms) to deliver the HTTP request
  //   -> backend parse (0.5 ms) + index (10 ms) + meta (8 ms)
  //      + first-chunk read (12 ms)
  //   -> response start + network latency (0.2 ms) back to the frontend.
  const double expected = 0.001 + 0.0002 + 0.0004 + 0.0005 + 0.010 + 0.008 +
                          0.012 + 0.0002;
  EXPECT_NEAR(sample.response_latency, expected, 1e-9);
  EXPECT_NEAR(sample.accept_wait, 0.0, 1e-9);
  EXPECT_NEAR(sample.backend_latency, 0.0005 + 0.010 + 0.008 + 0.012, 1e-9);
  EXPECT_EQ(sample.chunks, 1u);
}

TEST(Cluster, ChunkedObjectIssuesOneDataReadPerChunk) {
  ClusterConfig config = deterministic_config();
  Cluster cluster(config);
  // 150 KB at 64 KiB chunks => 3 chunks.
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 150 * 1000, 0);
  });
  cluster.engine().run_all();
  const auto& device = cluster.metrics().device(0);
  EXPECT_EQ(device.data_reads, 3u);
  EXPECT_EQ(device.accesses[0], 1u);  // one index lookup
  EXPECT_EQ(device.accesses[1], 1u);  // one metadata read
  EXPECT_EQ(device.accesses[2], 3u);  // three data reads
  ASSERT_EQ(cluster.metrics().requests().size(), 1u);
  EXPECT_EQ(cluster.metrics().requests().front().chunks, 3u);
}

TEST(Cluster, ChunkReadsArePacedByTransmission) {
  // With a slow link the second chunk read cannot start before the first
  // chunk's transfer completes: total busy-time separation shows up in the
  // final clock.
  ClusterConfig config = deterministic_config();
  config.network_bandwidth_bytes_per_sec = 65536.0;  // 1 chunk/second
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 2 * 65536, 0);  // exactly 2 chunks
  });
  cluster.engine().run_all();
  // The run cannot end before the first transfer (1 s) plus the second
  // chunk's disk read and transfer (1 s).
  EXPECT_GT(cluster.engine().now(), 2.0);
  EXPECT_EQ(cluster.metrics().device(0).data_reads, 2u);
}

TEST(Cluster, AllCacheHitsSkipTheDisk) {
  ClusterConfig config = deterministic_config();
  config.cache.index_miss_ratio = 0.0;
  config.cache.meta_miss_ratio = 0.0;
  config.cache.data_miss_ratio = 0.0;
  Cluster cluster(config);
  for (int i = 0; i < 10; ++i) {
    cluster.engine().schedule_at(0.1 * i, [&] {
      cluster.submit_request(1, 1000, 0);
    });
  }
  cluster.engine().run_all();
  EXPECT_EQ(cluster.metrics().completed_requests(), 10u);
  EXPECT_EQ(cluster.device(0).disk().ops_completed(), 0u);
  // Response = parse costs + network only: well under a millisecond budget
  // of 2.5 ms.
  for (const auto& sample : cluster.metrics().requests()) {
    EXPECT_LT(sample.response_latency, 0.0025);
  }
}

TEST(Cluster, AcceptWaitGrowsWhenProcessIsBusy) {
  // Saturate the single process with a long first request, then send a
  // second: its connection sits in the pool until the op queue drains the
  // accept (paper Sec. III-C).
  Cluster cluster(deterministic_config());
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 65536 * 2, 0);
  });
  cluster.engine().schedule_at(0.005, [&] {
    cluster.submit_request(2, 1000, 0);
  });
  cluster.engine().run_all();
  ASSERT_EQ(cluster.metrics().completed_requests(), 2u);
  // The second-arriving request is the one with nonzero accept wait.
  double max_wait = 0.0;
  for (const auto& sample : cluster.metrics().requests()) {
    max_wait = std::max(max_wait, sample.accept_wait);
  }
  // It must wait at least for the in-flight disk op to finish.
  EXPECT_GT(max_wait, 0.005);
}

TEST(Cluster, MultiProcessDeviceAllowsConcurrentDiskWaiters) {
  // With N_be = 4 and all-miss caches, four requests should overlap their
  // disk queueing: the makespan is far below the serial sum, but the disk
  // itself still serializes (FCFS) so it is at least the busy time.
  ClusterConfig config = deterministic_config();
  config.processes_per_device = 4;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    for (int i = 0; i < 4; ++i) cluster.submit_request(i, 1000, 0);
  });
  cluster.engine().run_all();
  EXPECT_EQ(cluster.metrics().completed_requests(), 4u);
  // Serial execution would need 4 * 30 ms of disk plus overheads; the
  // pipelined disk queue finishes the last *response* once its first
  // chunk is read.  All 4 requests' 12 ops serialize on the disk: total
  // busy 120 ms; but responses complete by then.
  EXPECT_NEAR(cluster.device(0).disk().busy_time(), 0.120, 1e-9);
  // With one process they could not have overlapped: check the makespan
  // is clearly below serial end-to-end (4 * ~31 ms sequential with no
  // overlap between queueing and disk).
  EXPECT_LT(cluster.engine().now(), 0.125 + 0.01);
}

TEST(Cluster, OpenLoopSourceDrivesExpectedThroughput) {
  ClusterConfig config = deterministic_config();
  config.cache.index_miss_ratio = 0.2;
  config.cache.meta_miss_ratio = 0.2;
  config.cache.data_miss_ratio = 0.4;
  Cluster cluster(config);

  workload::CatalogConfig cat_config;
  cat_config.object_count = 2000;
  cat_config.size_distribution = workload::default_size_distribution();
  cat_config.seed = 3;
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement({.partition_count = 64,
                                       .replica_count = 1,
                                       .device_count = 1,
                                       .seed = 9});
  workload::PhasePlan plan;
  plan.warmup_rate = 10.0;
  plan.warmup_duration = 5.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = 20.0;
  plan.benchmark_end_rate = 20.0;
  plan.benchmark_step_duration = 20.0;

  OpenLoopSource source(cluster, catalog, placement, plan, cosm::Rng(5));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();  // drain in-flight requests

  // ~ 10*5 + 20*20 = 450 arrivals.
  EXPECT_NEAR(static_cast<double>(source.arrivals()), 450.0, 70.0);
  EXPECT_EQ(cluster.metrics().completed_requests(), source.arrivals());
  // Only benchmark-phase samples were retained.
  for (const auto& sample : cluster.metrics().requests()) {
    EXPECT_GE(sample.frontend_arrival, 5.0);
  }
  EXPECT_GT(cluster.metrics().requests().size(), 250u);
}

TEST(Cluster, LruModeProducesEmergentMissRatios) {
  ClusterConfig config = deterministic_config();
  config.cache.mode = CacheBankConfig::Mode::kLru;
  config.cache.index_entries = 200;
  config.cache.meta_entries = 200;
  config.cache.data_chunks = 100;
  Cluster cluster(config);

  workload::CatalogConfig cat_config;
  cat_config.object_count = 2000;
  cat_config.zipf_skew = 1.1;
  cat_config.size_distribution = workload::default_size_distribution();
  cat_config.seed = 3;
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement({.partition_count = 64,
                                       .replica_count = 1,
                                       .device_count = 1,
                                       .seed = 9});
  workload::PhasePlan plan;
  plan.warmup_rate = 20.0;
  plan.warmup_duration = 30.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = 10.0;
  plan.benchmark_end_rate = 10.0;
  plan.benchmark_step_duration = 30.0;

  OpenLoopSource source(cluster, catalog, placement, plan, cosm::Rng(5));
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  const double index_miss =
      cluster.metrics().miss_ratio(0, AccessKind::kIndex);
  // The cache holds 10% of objects but Zipf skew concentrates traffic, so
  // the emergent miss ratio must be strictly between the extremes.
  EXPECT_GT(index_miss, 0.05);
  EXPECT_LT(index_miss, 0.95);
}

TEST(Cluster, DeterministicAcrossRuns) {
  auto run_once = [] {
    Cluster cluster(deterministic_config());
    workload::CatalogConfig cat_config;
    cat_config.object_count = 500;
    cat_config.size_distribution = workload::default_size_distribution();
    cat_config.seed = 3;
    const workload::ObjectCatalog catalog(cat_config);
    const workload::Placement placement({.partition_count = 16,
                                         .replica_count = 1,
                                         .device_count = 1,
                                         .seed = 9});
    workload::PhasePlan plan;
    plan.warmup_duration = 0.0;
    plan.transition_duration = 0.0;
    plan.benchmark_start_rate = 15.0;
    plan.benchmark_end_rate = 15.0;
    plan.benchmark_step_duration = 20.0;
    OpenLoopSource source(cluster, catalog, placement, plan, cosm::Rng(5));
    source.start();
    cluster.engine().run_until(source.horizon());
    cluster.engine().run_all();
    double checksum = 0.0;
    for (const auto& sample : cluster.metrics().requests()) {
      checksum += sample.response_latency;
    }
    return std::make_pair(cluster.metrics().completed_requests(), checksum);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);  // bitwise-identical latencies
}

TEST(Cluster, ValidatesConfiguration) {
  ClusterConfig config = deterministic_config();
  config.device_count = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
  ClusterConfig config2 = deterministic_config();
  config2.chunk_bytes = 0;
  EXPECT_THROW(Cluster{config2}, std::invalid_argument);
  Cluster ok(deterministic_config());
  EXPECT_THROW(ok.submit_request(1, 100, 5), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::sim
