// Retry / failover semantics (robustness extension): a retried request is
// counted exactly once with its total latency, the retry budget is
// respected, backoff is deterministic for a fixed seed, and failover moves
// the next attempt to a different replica device.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/cluster.hpp"

namespace cosm::sim {
namespace {

// Same deterministic single-path cluster as the timeout tests: a healthy
// request takes 1 + 0.5 + 10 + 8 + 12 ms ~ 31.5 ms end to end.
ClusterConfig fault_config(std::uint32_t devices) {
  ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = devices;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<numerics::Degenerate>(0.001);
  config.backend_parse = std::make_shared<numerics::Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0;
  config.disk = {std::make_shared<numerics::Degenerate>(0.010),
                 std::make_shared<numerics::Degenerate>(0.008),
                 std::make_shared<numerics::Degenerate>(0.012),
                 nullptr, nullptr};
  config.cache.index_miss_ratio = 1.0;
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  return config;
}

TEST(Retries, FailoverCountsOnceWithTotalLatency) {
  // Device 0 is out for the whole run; the first attempt's connection is
  // refused, the retry fails over to device 1 and succeeds.
  ClusterConfig config = fault_config(2);
  config.max_retries = 2;
  config.retry_backoff_base = 0.05;
  config.faults.device_outage(0, 0.0, 10.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(1.0, [&] {
    cluster.submit_request(1, 1000, std::vector<std::uint32_t>{0, 1});
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  ASSERT_EQ(cluster.metrics().requests().size(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_FALSE(sample.timed_out);
  EXPECT_FALSE(sample.failed);
  EXPECT_EQ(sample.attempts, 2u);
  EXPECT_EQ(sample.failovers, 1u);
  EXPECT_EQ(sample.device, 1u);  // landed on the replica
  // Total latency spans both attempts: ~1 ms to the refused connection,
  // 50 ms backoff, then the healthy 31.5 ms service.
  EXPECT_NEAR(sample.response_latency, 0.001 + 0.05 + 0.0315, 0.002);

  const OutcomeCounts outcomes = cluster.metrics().outcomes();
  EXPECT_EQ(outcomes.ok, 0u);
  EXPECT_EQ(outcomes.ok_retried, 1u);
  EXPECT_EQ(outcomes.failed, 0u);
  EXPECT_EQ(outcomes.retry_attempts, 1u);
  EXPECT_EQ(outcomes.failover_attempts, 1u);
}

TEST(Retries, BudgetRespectedThenFailedSample) {
  // Single device, permanently out: 1 + max_retries attempts, then one
  // failed sample (counted once, never as a success).
  ClusterConfig config = fault_config(1);
  config.max_retries = 2;
  config.retry_backoff_base = 0.05;
  config.retry_backoff_cap = 1.0;
  config.faults.device_outage(0, 0.0, 100.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_TRUE(sample.failed);
  EXPECT_FALSE(sample.timed_out);
  EXPECT_EQ(sample.attempts, 3u);  // 1 try + 2 retries, budget exhausted
  // Backoffs 50 ms + 100 ms plus three 1 ms frontend parses.
  EXPECT_NEAR(sample.response_latency, 0.003 + 0.05 + 0.1, 0.002);
  EXPECT_EQ(cluster.metrics().failures(), 1u);
  // The retry-inflated arrival accounting saw every attempt.
  EXPECT_EQ(cluster.metrics().device(0).attempts, 3u);
  EXPECT_EQ(cluster.metrics().outcomes().failed, 1u);
  EXPECT_EQ(cluster.metrics().outcomes().retry_attempts, 2u);
}

TEST(Retries, TimeoutTriggeredRetrySucceeds) {
  // A disk slowdown makes the first attempt miss an 80 ms deadline; the
  // retry runs against the healed disk and completes.  The one sample is
  // a success whose latency spans both attempts (> the timeout alone).
  ClusterConfig config = fault_config(1);
  config.request_timeout = 0.080;
  config.max_retries = 2;
  config.retry_backoff_base = 0.05;
  config.faults.disk_slowdown(0, 0.0, 0.01, 10.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_FALSE(sample.timed_out);
  EXPECT_FALSE(sample.failed);
  EXPECT_EQ(sample.attempts, 2u);
  EXPECT_GT(sample.response_latency, config.request_timeout);
  EXPECT_EQ(cluster.metrics().timeouts(), 0u);  // the request recovered
  EXPECT_EQ(cluster.metrics().outcomes().ok_retried, 1u);
}

TEST(Retries, DeterministicForFixedSeed) {
  // Two identical faulted runs (slowdown-driven timeouts, retries,
  // failover) must produce bit-identical samples.
  struct RunResult {
    std::vector<RequestSample> samples;
    std::uint64_t completed = 0;
    std::uint64_t retry_attempts = 0;
  };
  const auto run = [] {
    ClusterConfig config = fault_config(2);
    config.request_timeout = 0.060;
    config.max_retries = 2;
    config.retry_backoff_base = 0.02;
    config.seed = 2024;
    config.faults.disk_slowdown(0, 0.3, 0.5, 8.0);
    Cluster cluster(config);
    cosm::Rng arrivals(9);
    double t = 0.0;
    for (int i = 0; i < 200; ++i) {
      t += arrivals.exponential(50.0);
      const std::uint32_t primary = i % 2 == 0 ? 0u : 1u;
      cluster.engine().schedule_at(t, [&cluster, primary] {
        cluster.submit_request(
            1, 20000, std::vector<std::uint32_t>{primary, 1u - primary});
      });
    }
    cluster.engine().run_all();
    return RunResult{cluster.metrics().requests(),
                     cluster.metrics().completed_requests(),
                     cluster.metrics().outcomes().retry_attempts};
  };
  const RunResult a = run();
  const RunResult b = run();

  ASSERT_EQ(a.completed, 200u);
  ASSERT_EQ(b.completed, 200u);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].response_latency,
              b.samples[i].response_latency);  // bitwise
    EXPECT_EQ(a.samples[i].attempts, b.samples[i].attempts);
    EXPECT_EQ(a.samples[i].device, b.samples[i].device);
    EXPECT_EQ(a.samples[i].timed_out, b.samples[i].timed_out);
  }
  // The fault actually exercised the retry path in this workload.
  EXPECT_GT(a.retry_attempts, 0u);
}

TEST(Retries, JitteredBackoffStaysInBandAndIsSeedDeterministic) {
  // retry_jitter = 0.5 scales each backoff by a per-seed uniform factor
  // in [0.5, 1]: the two backoffs of this run (bases 50 ms and 100 ms)
  // land in [75 ms, 150 ms] total, and the draw is a pure function of
  // the seed — same seed bit-identical, different seed different.
  const auto run = [](std::uint64_t seed) {
    ClusterConfig config = fault_config(1);
    config.max_retries = 2;
    config.retry_backoff_base = 0.05;
    config.retry_jitter = 0.5;
    config.seed = seed;
    config.faults.device_outage(0, 0.0, 100.0);
    Cluster cluster(config);
    cluster.engine().schedule_at(0.0, [&] {
      cluster.submit_request(1, 1000, 0);
    });
    cluster.engine().run_all();
    return cluster.metrics().requests().front().response_latency;
  };
  const double latency = run(2024);
  // Three 1 ms parses plus the jittered backoffs.
  EXPECT_GE(latency, 0.003 + 0.5 * (0.05 + 0.1) - 1e-9);
  EXPECT_LE(latency, 0.003 + (0.05 + 0.1) + 1e-9);
  EXPECT_EQ(run(2024), latency);  // bitwise reproducible
  EXPECT_NE(run(77), latency);    // the seed actually feeds the jitter
}

TEST(Retries, ZeroJitterKeepsTheExactDeterministicDelays) {
  // jitter = 0 must not draw any RNG: the backoffs are exactly the
  // capped-exponential ladder, bit-identical to a config that never
  // mentions retry_jitter (the legacy runs stay pinned).
  const auto run = [](bool mention_jitter) {
    ClusterConfig config = fault_config(1);
    config.max_retries = 2;
    config.retry_backoff_base = 0.05;
    if (mention_jitter) config.retry_jitter = 0.0;
    config.faults.device_outage(0, 0.0, 100.0);
    Cluster cluster(config);
    cluster.engine().schedule_at(0.0, [&] {
      cluster.submit_request(1, 1000, 0);
    });
    cluster.engine().run_all();
    return cluster.metrics().requests().front().response_latency;
  };
  const double latency = run(true);
  EXPECT_EQ(latency, run(false));  // bitwise
  EXPECT_NEAR(latency, 0.003 + 0.05 + 0.1, 0.002);
}

TEST(Retries, BackoffIsCappedExponential) {
  ClusterConfig config = fault_config(1);
  config.max_retries = 4;
  config.retry_backoff_base = 0.01;
  config.retry_backoff_cap = 0.03;
  config.faults.device_outage(0, 0.0, 100.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_EQ(sample.attempts, 5u);
  // Backoffs 10 + 20 + 30 + 30 ms (capped) plus five 1 ms parses.
  EXPECT_NEAR(sample.response_latency, 0.005 + 0.01 + 0.02 + 0.03 + 0.03,
              0.002);
}

}  // namespace
}  // namespace cosm::sim
