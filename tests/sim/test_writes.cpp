// Write-path (PUT) extension tests: deterministic timeline, disk-op
// accounting, cache population, and read/write interference.
#include <gtest/gtest.h>

#include <memory>

#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace cosm::sim {
namespace {

ClusterConfig write_config() {
  ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<numerics::Degenerate>(0.001);
  config.backend_parse = std::make_shared<numerics::Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0001;
  config.network_bandwidth_bytes_per_sec = 1e8;  // 10 us per KB
  config.chunk_bytes = 65536;
  config.disk = {std::make_shared<numerics::Degenerate>(0.010),
                 std::make_shared<numerics::Degenerate>(0.008),
                 std::make_shared<numerics::Degenerate>(0.012),
                 std::make_shared<numerics::Degenerate>(0.014),
                 std::make_shared<numerics::Degenerate>(0.018)};
  config.cache.index_miss_ratio = 1.0;
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  return config;
}

TEST(Writes, SingleWriteDeterministicTimeline) {
  Cluster cluster(write_config());
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(/*object_id=*/1, /*size_bytes=*/100000,
                           /*device=*/0, /*is_write=*/true);
  });
  cluster.engine().run_all();
  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_TRUE(sample.is_write);
  EXPECT_EQ(sample.chunks, 2u);  // 100 KB over 64 KiB chunks
  // Timeline: fe parse (1 ms) + connect (0.1 ms) + accept (0) + 2 hops
  // (0.2 ms) + be parse (0.5 ms) + chunk1 transfer (65536/1e8 = 0.655 ms)
  // + write (14 ms) + chunk2 transfer (34464/1e8 = 0.345 ms) + write
  // (14 ms) + commit (18 ms) + response hop (0.1 ms).
  const double expected = 0.001 + 0.0001 + 0.0002 + 0.0005 +
                          65536.0 / 1e8 + 0.014 + 34464.0 / 1e8 + 0.014 +
                          0.018 + 0.0001;
  EXPECT_NEAR(sample.response_latency, expected, 1e-9);
  // Disk accounting: two chunk writes + one commit, no reads.
  const auto& counters = cluster.metrics().device(0);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kWrite)], 2u);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kCommit)], 1u);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kIndex)], 0u);
  EXPECT_EQ(counters.data_reads, 0u);
}

TEST(Writes, PutPopulatesLruCachesForSubsequentReads) {
  ClusterConfig config = write_config();
  config.cache.mode = CacheBankConfig::Mode::kLru;
  config.cache.index_entries = 100;
  config.cache.meta_entries = 100;
  config.cache.data_chunks = 100;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(7, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().schedule_at(1.0, [&] {
    cluster.submit_request(7, 1000, 0, /*is_write=*/false);
  });
  cluster.engine().run_all();
  ASSERT_EQ(cluster.metrics().completed_requests(), 2u);
  // The read after the write hits index, meta, and data caches.
  EXPECT_EQ(cluster.metrics().miss_ratio(0, AccessKind::kIndex), 0.0);
  EXPECT_EQ(cluster.metrics().miss_ratio(0, AccessKind::kMeta), 0.0);
  EXPECT_EQ(cluster.metrics().miss_ratio(0, AccessKind::kData), 0.0);
}

TEST(Writes, WritesInflateReadLatencies) {
  // Reads at a fixed rate; adding writes must push read latencies up
  // (shared disk), which is exactly the sensitivity the model cannot see.
  auto run = [](double write_fraction) {
    ClusterConfig config = write_config();
    config.cache.index_miss_ratio = 0.3;
    config.cache.meta_miss_ratio = 0.3;
    config.cache.data_miss_ratio = 0.7;
    config.seed = 17;
    Cluster cluster(config);
    workload::CatalogConfig cat_config;
    cat_config.object_count = 2000;
    cat_config.size_distribution = workload::default_size_distribution();
    cat_config.seed = 3;
    const workload::ObjectCatalog catalog(cat_config);
    const workload::Placement placement({.partition_count = 64,
                                         .replica_count = 1,
                                         .device_count = 1,
                                         .seed = 9});
    workload::PhasePlan plan;
    plan.warmup_duration = 0.0;
    plan.transition_duration = 0.0;
    plan.benchmark_start_rate = 30.0;
    plan.benchmark_end_rate = 30.0;
    plan.benchmark_step_duration = 200.0;
    OpenLoopSource source(cluster, catalog, placement, plan, cosm::Rng(5),
                          write_fraction);
    source.start();
    cluster.engine().run_until(source.horizon());
    cluster.engine().run_all();
    stats::SampleSet reads;
    std::uint64_t writes_seen = 0;
    for (const auto& sample : cluster.metrics().requests()) {
      if (sample.is_write) {
        ++writes_seen;
      } else if (sample.frontend_arrival > 20.0) {
        reads.add(sample.response_latency);
      }
    }
    EXPECT_EQ(writes_seen, source.write_arrivals());
    return reads.mean();
  };
  const double read_only = run(0.0);
  const double with_writes = run(0.2);
  EXPECT_GT(with_writes, read_only * 1.1);
}

TEST(Writes, SourceWriteFractionIsRespected) {
  ClusterConfig config = write_config();
  config.cache.index_miss_ratio = 0.0;
  config.cache.meta_miss_ratio = 0.0;
  config.cache.data_miss_ratio = 0.0;
  Cluster cluster(config);
  workload::CatalogConfig cat_config;
  cat_config.object_count = 500;
  cat_config.size_distribution = workload::default_size_distribution();
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement({.partition_count = 16,
                                       .replica_count = 1,
                                       .device_count = 1,
                                       .seed = 2});
  workload::PhasePlan plan;
  plan.warmup_duration = 0.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = 50.0;
  plan.benchmark_end_rate = 50.0;
  plan.benchmark_step_duration = 100.0;
  OpenLoopSource source(cluster, catalog, placement, plan, cosm::Rng(5),
                        0.05);
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();
  const double fraction = static_cast<double>(source.write_arrivals()) /
                          static_cast<double>(source.arrivals());
  EXPECT_NEAR(fraction, 0.05, 0.015);
  EXPECT_EQ(cluster.metrics().completed_requests(), source.arrivals());
}

TEST(Writes, RejectsInvalidWriteFraction) {
  ClusterConfig config = write_config();
  Cluster cluster(config);
  workload::CatalogConfig cat_config;
  cat_config.object_count = 10;
  cat_config.size_distribution = workload::default_size_distribution();
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement({.partition_count = 4,
                                       .replica_count = 1,
                                       .device_count = 1,
                                       .seed = 2});
  workload::PhasePlan plan;
  EXPECT_THROW(OpenLoopSource(cluster, catalog, placement, plan,
                              cosm::Rng(1), 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace cosm::sim
