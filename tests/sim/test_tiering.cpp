// Two-tier storage (tiering extension): promotion-on-read residency,
// write-through vs write-back demotion ordering, outage drains of dirty
// blocks, and seed-reproducibility of tiered runs.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "sim/cluster.hpp"
#include "sim/source.hpp"

namespace cosm::sim {
namespace {

// Degenerate services everywhere so timelines are exact: capacity-disk
// data reads 12 ms / writes 14 ms, SSD reads 4 ms / writes 6 ms.
ClusterConfig tier_config() {
  ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<numerics::Degenerate>(0.001);
  config.backend_parse = std::make_shared<numerics::Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0001;
  config.network_bandwidth_bytes_per_sec = 1e8;
  config.chunk_bytes = 65536;
  config.disk = {std::make_shared<numerics::Degenerate>(0.010),
                 std::make_shared<numerics::Degenerate>(0.008),
                 std::make_shared<numerics::Degenerate>(0.012),
                 std::make_shared<numerics::Degenerate>(0.014),
                 std::make_shared<numerics::Degenerate>(0.018)};
  config.cache.index_miss_ratio = 1.0;
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  config.tier.enabled = true;
  config.tier.capacity_chunks = 16;
  config.tier.read_service = std::make_shared<numerics::Degenerate>(0.004);
  config.tier.write_service = std::make_shared<numerics::Degenerate>(0.006);
  return config;
}

TEST(Tiering, PromotionOnReadMakesSecondReadAnSsdHit) {
  Cluster cluster(tier_config());
  cluster.engine().schedule_at(0.0, [&] { cluster.submit_request(1, 1000, 0); });
  cluster.engine().schedule_at(1.0, [&] { cluster.submit_request(1, 1000, 0); });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 2u);
  const double first = cluster.metrics().requests()[0].response_latency;
  const double second = cluster.metrics().requests()[1].response_latency;
  // Identical timelines except the data read: capacity disk (12 ms) on
  // the cold read, SSD (4 ms) after the promotion.
  EXPECT_NEAR(second, first - (0.012 - 0.004), 1e-9);

  const auto& counters = cluster.metrics().device(0);
  EXPECT_EQ(counters.tier_reads, 2u);
  EXPECT_EQ(counters.tier_hits, 1u);
  EXPECT_EQ(counters.tier_promotions, 1u);
  EXPECT_DOUBLE_EQ(counters.tier_hit_ratio(), 0.5);
  // Disk saw only the cold data read; the SSD paid the hit read plus the
  // asynchronous promotion install.
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kData)], 1u);
  EXPECT_EQ(counters.tier_ops, 2u);

  const TierResidency& residency = cluster.device(0).tier()->residency();
  EXPECT_TRUE(residency.contains(data_chunk_key(1, 0)));
  EXPECT_FALSE(residency.dirty(data_chunk_key(1, 0)));  // promoted clean
}

TEST(Tiering, PromoteOnReadDisabledKeepsMissingToDisk) {
  ClusterConfig config = tier_config();
  config.tier.promote_on_read = false;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] { cluster.submit_request(1, 1000, 0); });
  cluster.engine().schedule_at(1.0, [&] { cluster.submit_request(1, 1000, 0); });
  cluster.engine().run_all();

  const auto& counters = cluster.metrics().device(0);
  EXPECT_EQ(counters.tier_reads, 2u);
  EXPECT_EQ(counters.tier_hits, 0u);
  EXPECT_EQ(counters.tier_promotions, 0u);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kData)], 2u);
  EXPECT_FALSE(
      cluster.device(0).tier()->residency().contains(data_chunk_key(1, 0)));
}

TEST(Tiering, WriteThroughBlocksOnDiskAndInstallsClean) {
  ClusterConfig config = tier_config();
  config.tier.write_policy = TierConfig::WritePolicy::kWriteThrough;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().run_all();

  const auto& counters = cluster.metrics().device(0);
  // The chunk write and the commit both hit the capacity disk; the SSD
  // copy is asynchronous and clean.
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kWrite)], 1u);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kCommit)], 1u);
  EXPECT_EQ(counters.tier_writebacks, 0u);
  const TierResidency& residency = cluster.device(0).tier()->residency();
  EXPECT_TRUE(residency.contains(data_chunk_key(1, 0)));
  EXPECT_FALSE(residency.dirty(data_chunk_key(1, 0)));
  EXPECT_EQ(residency.dirty_count(), 0u);
}

TEST(Tiering, WriteBackIsFasterAndLeavesDirtyBlock) {
  auto run = [](TierConfig::WritePolicy policy) {
    ClusterConfig config = tier_config();
    config.tier.write_policy = policy;
    Cluster cluster(config);
    cluster.engine().schedule_at(0.0, [&] {
      cluster.submit_request(1, 1000, 0, /*is_write=*/true);
    });
    cluster.engine().run_all();
    return cluster.metrics().requests().front().response_latency;
  };
  const double through = run(TierConfig::WritePolicy::kWriteThrough);
  const double back = run(TierConfig::WritePolicy::kWriteBack);
  // Same timeline except the blocking chunk write: SSD 6 ms vs disk 14 ms.
  EXPECT_NEAR(back, through - (0.014 - 0.006), 1e-9);

  ClusterConfig config = tier_config();
  config.tier.write_policy = TierConfig::WritePolicy::kWriteBack;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().run_all();
  const auto& counters = cluster.metrics().device(0);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kWrite)], 0u);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kCommit)], 1u);
  const TierResidency& residency = cluster.device(0).tier()->residency();
  EXPECT_TRUE(residency.dirty(data_chunk_key(1, 0)));
  EXPECT_EQ(residency.dirty_count(), 1u);
}

TEST(Tiering, WriteBackEvictionDemotesOldestDirtyFirst) {
  ClusterConfig config = tier_config();
  config.tier.write_policy = TierConfig::WritePolicy::kWriteBack;
  config.tier.capacity_chunks = 2;
  Cluster cluster(config);
  // Two dirty blocks fill the tier (object 1 oldest), then a read of
  // object 3 promotes a third block and must evict object 1's.
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().schedule_at(0.5, [&] {
    cluster.submit_request(2, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().schedule_at(1.0, [&] { cluster.submit_request(3, 1000, 0); });
  cluster.engine().run_all();

  const TierResidency& residency = cluster.device(0).tier()->residency();
  EXPECT_FALSE(residency.contains(data_chunk_key(1, 0)));  // LRU victim
  EXPECT_TRUE(residency.contains(data_chunk_key(2, 0)));
  EXPECT_TRUE(residency.contains(data_chunk_key(3, 0)));
  EXPECT_TRUE(residency.dirty(data_chunk_key(2, 0)));
  EXPECT_FALSE(residency.dirty(data_chunk_key(3, 0)));

  const auto& counters = cluster.metrics().device(0);
  // Exactly one demotion: the evicted dirty block was written back to
  // the capacity disk (write-back's deferred durability write).
  EXPECT_EQ(counters.tier_writebacks, 1u);
  EXPECT_EQ(counters.tier_drain_writebacks, 0u);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kWrite)], 1u);
}

TEST(Tiering, WriteThroughEvictionNeedsNoDemotion) {
  ClusterConfig config = tier_config();
  config.tier.write_policy = TierConfig::WritePolicy::kWriteThrough;
  config.tier.capacity_chunks = 2;
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().schedule_at(0.5, [&] {
    cluster.submit_request(2, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().schedule_at(1.0, [&] { cluster.submit_request(3, 1000, 0); });
  cluster.engine().run_all();

  const auto& counters = cluster.metrics().device(0);
  // Clean blocks evict silently: the only capacity-disk writes are the
  // two write-through chunk writes themselves.
  EXPECT_EQ(counters.tier_writebacks, 0u);
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kWrite)], 2u);
  EXPECT_FALSE(
      cluster.device(0).tier()->residency().contains(data_chunk_key(1, 0)));
}

TEST(Tiering, OutageRecoveryDrainsDirtyBlocksToDisk) {
  ClusterConfig config = tier_config();
  config.tier.write_policy = TierConfig::WritePolicy::kWriteBack;
  config.faults.device_outage(0, 5.0, 6.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().schedule_at(0.5, [&] {
    cluster.submit_request(2, 1000, 0, /*is_write=*/true);
  });
  cluster.engine().run_all();

  const TierResidency& residency = cluster.device(0).tier()->residency();
  // Residency survives the outage (flash is persistent) but every dirty
  // block was flushed to the capacity disk at recovery.
  EXPECT_TRUE(residency.contains(data_chunk_key(1, 0)));
  EXPECT_TRUE(residency.contains(data_chunk_key(2, 0)));
  EXPECT_EQ(residency.dirty_count(), 0u);

  const auto& counters = cluster.metrics().device(0);
  EXPECT_EQ(counters.tier_drain_writebacks, 2u);
  EXPECT_EQ(counters.tier_writebacks, 0u);  // no capacity eviction happened
  EXPECT_EQ(counters.disk_ops[static_cast<int>(AccessKind::kWrite)], 2u);
}

TEST(Tiering, RejectsZeroCapacityWhenEnabled) {
  ClusterConfig config = tier_config();
  config.tier.capacity_chunks = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

TEST(Tiering, TieredRunsAreSeedReproducible) {
  auto run = [] {
    ClusterConfig config = tier_config();
    config.tier.write_policy = TierConfig::WritePolicy::kWriteBack;
    // Much bigger than the page cache: chunks evicted from memory must
    // still be tier-resident, else every tier read would miss.
    config.tier.capacity_chunks = 2000;
    config.cache.mode = CacheBankConfig::Mode::kLru;
    config.cache.index_entries = 200;
    config.cache.meta_entries = 200;
    config.cache.data_chunks = 100;
    config.disk = default_hdd_profile();
    config.tier.read_service = nullptr;   // finalize() fills the SSD profile
    config.tier.write_service = nullptr;
    config.seed = 23;
    Cluster cluster(config);
    workload::CatalogConfig cat_config;
    cat_config.object_count = 1000;
    cat_config.size_distribution = workload::default_size_distribution();
    cat_config.seed = 7;
    const workload::ObjectCatalog catalog(cat_config);
    const workload::Placement placement({.partition_count = 32,
                                         .replica_count = 1,
                                         .device_count = 1,
                                         .seed = 11});
    workload::PhasePlan plan;
    plan.warmup_duration = 0.0;
    plan.transition_duration = 0.0;
    plan.benchmark_start_rate = 40.0;
    plan.benchmark_end_rate = 40.0;
    plan.benchmark_step_duration = 100.0;
    OpenLoopSource source(cluster, catalog, placement, plan, cosm::Rng(5),
                          /*write_fraction=*/0.1);
    source.start();
    cluster.engine().run_until(source.horizon());
    cluster.engine().run_all();
    double latency_sum = 0.0;
    for (const auto& sample : cluster.metrics().requests()) {
      latency_sum += sample.response_latency;
    }
    return std::pair<double, std::uint64_t>(
        latency_sum, cluster.metrics().device(0).tier_hits);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.first, b.first);  // bit-identical, not just close
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);  // the tier actually absorbed reads
}

}  // namespace
}  // namespace cosm::sim
