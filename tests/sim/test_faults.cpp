// Scripted fault injection (robustness extension): each fault kind must
// hit the window it was scheduled for, restore cleanly at the end, and
// leave runs seed-reproducible.  Config validation must reject malformed
// fault and retry parameters with std::invalid_argument.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "sim/cluster.hpp"

namespace cosm::sim {
namespace {

ClusterConfig fault_config(std::uint32_t devices) {
  ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = devices;
  config.processes_per_device = 1;
  config.frontend_parse = std::make_shared<numerics::Degenerate>(0.001);
  config.backend_parse = std::make_shared<numerics::Degenerate>(0.0005);
  config.accept_cost = 0.0;
  config.network_latency = 0.0;
  config.disk = {std::make_shared<numerics::Degenerate>(0.010),
                 std::make_shared<numerics::Degenerate>(0.008),
                 std::make_shared<numerics::Degenerate>(0.012),
                 nullptr, nullptr};
  config.cache.index_miss_ratio = 1.0;
  config.cache.meta_miss_ratio = 1.0;
  config.cache.data_miss_ratio = 1.0;
  return config;
}

TEST(Faults, DiskSlowdownHitsOnlyItsWindowAndRestores) {
  // One request inside the x3 window, one after it: only the first is
  // slower; the degradation factor is back to 1 when the window closes.
  ClusterConfig config = fault_config(1);
  config.faults.disk_slowdown(0, 0.0, 1.0, 3.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().schedule_at(2.0, [&] {
    cluster.submit_request(2, 1000, 0);
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().requests().size(), 2u);
  const double slow = cluster.metrics().requests()[0].response_latency;
  const double healthy = cluster.metrics().requests()[1].response_latency;
  // Disk ops 30 ms healthy, 90 ms inflated; parses unaffected.
  EXPECT_NEAR(slow, 0.0015 + 3.0 * 0.030, 0.002);
  EXPECT_NEAR(healthy, 0.0015 + 0.030, 0.002);
  EXPECT_DOUBLE_EQ(cluster.device(0).disk().degradation(), 1.0);
}

TEST(Faults, OutageFailsRequestWithoutRetries) {
  // max_retries = 0 (the paper's behaviour): a request hitting the outage
  // window completes as one failed sample; a later request succeeds.
  ClusterConfig config = fault_config(1);
  config.faults.device_outage(0, 0.0, 1.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.5, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().schedule_at(2.0, [&] {
    cluster.submit_request(2, 1000, 0);
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 2u);
  EXPECT_TRUE(cluster.metrics().requests()[0].failed);
  EXPECT_FALSE(cluster.metrics().requests()[1].failed);
  EXPECT_EQ(cluster.metrics().failures(), 1u);
  EXPECT_EQ(cluster.metrics().outcomes().failed, 1u);
  EXPECT_EQ(cluster.metrics().outcomes().ok, 1u);
}

TEST(Faults, OutageKillsInFlightDiskOperations) {
  // The outage begins while the request's first disk op is on the
  // platter: the op fails (ops_failed > 0) and the request dies with it.
  ClusterConfig config = fault_config(1);
  config.faults.device_outage(0, 0.005, 1.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  EXPECT_TRUE(cluster.metrics().requests()[0].failed);
  EXPECT_GE(cluster.device(0).disk().ops_failed(), 1u);
  EXPECT_EQ(cluster.device(0).disk().ops_completed(), 0u);
}

TEST(Faults, NetworkJitterInflatesLatencyOnlyInWindow) {
  ClusterConfig config = fault_config(1);
  config.network_latency = 0.001;
  config.faults.network_jitter(0.0, 1.0, 20.0);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.0, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().schedule_at(2.0, [&] {
    cluster.submit_request(2, 1000, 0);
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().requests().size(), 2u);
  const double jittered = cluster.metrics().requests()[0].response_latency;
  const double healthy = cluster.metrics().requests()[1].response_latency;
  // The read path crosses the tier network 4 times before the first
  // response byte (connect, accept notification + request, response).
  EXPECT_NEAR(healthy - 0.0315, 4 * 0.001, 0.001);
  EXPECT_NEAR(jittered - 0.0315, 4 * 0.020, 0.002);
}

TEST(Faults, ProcessCrashParksWorkUntilRestart) {
  // Both processes of the device are down when the request arrives; the
  // connection waits in the pool and is served right after the restart.
  ClusterConfig config = fault_config(1);
  config.processes_per_device = 2;
  config.faults.process_crash(0, 0.0, 0.05, 2);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.001, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  const RequestSample& sample = cluster.metrics().requests().front();
  EXPECT_FALSE(sample.failed);
  EXPECT_GT(sample.accept_wait, 0.04);  // parked across the crash window
  EXPECT_GT(sample.response_latency, 0.05);
}

TEST(Faults, PartialProcessCrashKeepsServing) {
  // One of two processes crashes; the survivor keeps the device working.
  ClusterConfig config = fault_config(1);
  config.processes_per_device = 2;
  config.faults.process_crash(0, 0.0, 10.0, 1);
  Cluster cluster(config);
  cluster.engine().schedule_at(0.001, [&] {
    cluster.submit_request(1, 1000, 0);
  });
  cluster.engine().run_all();

  ASSERT_EQ(cluster.metrics().completed_requests(), 1u);
  EXPECT_FALSE(cluster.metrics().requests().front().failed);
  EXPECT_NEAR(cluster.metrics().requests().front().response_latency,
              0.0315, 0.002);
}

TEST(Faults, PureSlowdownRunIsSeedReproducible) {
  const auto run = [] {
    ClusterConfig config = fault_config(2);
    config.seed = 7;
    config.cache.index_miss_ratio = 0.3;
    config.cache.meta_miss_ratio = 0.3;
    config.cache.data_miss_ratio = 0.7;
    config.faults.disk_slowdown(1, 0.2, 0.6, 4.0);
    Cluster cluster(config);
    cosm::Rng arrivals(11);
    double t = 0.0;
    for (int i = 0; i < 300; ++i) {
      t += arrivals.exponential(80.0);
      cluster.engine().schedule_at(t, [&cluster, i] {
        cluster.submit_request(static_cast<std::uint64_t>(i), 20000,
                               static_cast<std::uint32_t>(i % 2));
      });
    }
    cluster.engine().run_all();
    double sum = 0.0;
    for (const RequestSample& s : cluster.metrics().requests()) {
      sum += s.response_latency;
    }
    return std::make_pair(sum, cluster.metrics().completed_requests());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // bitwise-identical latency sum
  EXPECT_EQ(a.second, b.second);
}

TEST(Faults, ScheduleValidationRejectsMalformedEvents) {
  const auto with_fault = [](FaultSchedule faults) {
    ClusterConfig config;
    config.faults = std::move(faults);
    return Cluster(std::move(config));
  };
  EXPECT_THROW(with_fault(FaultSchedule().disk_slowdown(99, 0.0, 1.0, 2.0)),
               std::invalid_argument);  // device out of range
  EXPECT_THROW(with_fault(FaultSchedule().disk_slowdown(0, -1.0, 1.0, 2.0)),
               std::invalid_argument);  // negative start
  EXPECT_THROW(with_fault(FaultSchedule().disk_slowdown(0, 0.0, 0.0, 2.0)),
               std::invalid_argument);  // zero duration
  EXPECT_THROW(with_fault(FaultSchedule().disk_slowdown(0, 0.0, 1.0, 0.0)),
               std::invalid_argument);  // factor must be positive
  EXPECT_THROW(with_fault(FaultSchedule().process_crash(0, 0.0, 1.0, 99)),
               std::invalid_argument);  // more processes than exist
  EXPECT_NO_THROW(with_fault(FaultSchedule().device_outage(0, 0.0, 1.0)));
}

TEST(Faults, ConfigValidationRejectsBadResilienceKnobs) {
  const auto nan = std::nan("");
  {
    ClusterConfig config;
    config.network_latency = nan;
    EXPECT_THROW(Cluster{config}, std::invalid_argument);
  }
  {
    ClusterConfig config;
    config.retry_backoff_base = -0.1;
    config.max_retries = 1;
    config.request_timeout = 0.1;
    EXPECT_THROW(Cluster{config}, std::invalid_argument);
  }
  {
    ClusterConfig config;
    config.retry_backoff_cap = nan;
    config.max_retries = 1;
    config.request_timeout = 0.1;
    EXPECT_THROW(Cluster{config}, std::invalid_argument);
  }
  {
    // Retries that can never trigger (no timeout, no faults) are a
    // configuration bug, not a silent no-op.
    ClusterConfig config;
    config.max_retries = 3;
    EXPECT_THROW(Cluster{config}, std::invalid_argument);
  }
  {
    ClusterConfig config;
    config.cache.data_miss_ratio = 1.5;
    EXPECT_THROW(Cluster{config}, std::invalid_argument);
  }
}

}  // namespace
}  // namespace cosm::sim
