// Edge cases of the zero-allocation engine and its SmallFn callback type:
// the merge of the immediate (time == now) FIFO against the d-ary heap,
// clock semantics at run_until boundaries, FIFO ordering under equal
// timestamps, and SmallFn's inline/heap storage split.
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/event_fn.hpp"

namespace {

using cosm::sim::Engine;
using cosm::sim::EventCallback;
using cosm::sim::SmallFn;

TEST(EngineEdge, EventAtExactlyEndTimeRuns) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(EngineEdge, EventJustAfterEndTimeDoesNotRun) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(5.0 + 1e-9, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);  // clock lands on the horizon
  engine.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EngineEdge, StepOnEmptyCalendarIsFalseAndKeepsClock) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(EngineEdge, RunUntilAdvancesClockToHorizonOnEmptyCalendar) {
  Engine engine;
  engine.run_until(7.5);
  EXPECT_DOUBLE_EQ(engine.now(), 7.5);
}

TEST(EngineEdge, EqualTimestampEventsRunInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(2.0, [&] { order.push_back(0); });
  engine.schedule_at(2.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(2.0, [&] { order.push_back(3); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Events scheduled *during* an event at the same timestamp go through the
// immediate FIFO; events scheduled earlier at that timestamp are in the
// heap.  The pop order must still be global scheduling (seq) order.
TEST(EngineEdge, ImmediateFifoMergesWithHeapBySequence) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] {
    order.push_back(0);
    // now_ == 1.0: these take the FIFO path...
    engine.schedule_at(1.0, [&] { order.push_back(2); });
    engine.schedule_after(0.0, [&] {
      order.push_back(3);
      // ...and a nested yield goes behind everything already queued at 1.0.
      engine.schedule_after(0.0, [&] { order.push_back(5); });
    });
  });
  // Scheduled before the clock reaches 1.0, so it sits in the heap; its
  // sequence number places it between the first event and the yields.
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0 + 1e-9, [&] { order.push_back(4); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 5, 4}));
}

TEST(EngineEdge, ClockCorrectAfterPartialDrain) {
  Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.schedule_at(2.0, [] {});
  engine.schedule_at(3.0, [] {});
  engine.run_until(2.0);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.events_processed(), 2u);
  EXPECT_EQ(engine.events_pending(), 1u);
  // Scheduling between run_until calls must respect the parked clock.
  engine.schedule_at(2.5, [] {});
  engine.run_all();
  EXPECT_EQ(engine.events_processed(), 4u);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

// Randomized cross-check of the d-ary heap + FIFO against a reference
// (time, seq) priority queue.
TEST(EngineEdge, PopOrderMatchesReferenceTotalOrder) {
  Engine engine;
  cosm::Rng rng(123);
  struct Ref {
    double time;
    std::uint64_t seq;
    bool operator>(const Ref& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> reference;
  std::vector<std::uint64_t> popped;
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    // Coarse grid so timestamp collisions are common.
    const double time = static_cast<double>(rng.uniform_index(50));
    reference.push(Ref{time, seq});
    engine.schedule_at(time, [&popped, id = seq] { popped.push_back(id); });
    ++seq;
  }
  engine.run_all();
  ASSERT_EQ(popped.size(), 2000u);
  for (std::uint64_t id : popped) {
    EXPECT_EQ(id, reference.top().seq);
    reference.pop();
  }
}

// --------------------------------- SmallFn -------------------------------

TEST(SmallFnEdge, SmallCaptureStaysInline) {
  int hits = 0;
  SmallFn<48> fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(hits, 1);
  static_assert(SmallFn<48>::fits_inline_v<decltype([] {})>);
}

TEST(SmallFnEdge, OversizeCaptureSpillsToHeapAndStillWorks) {
  struct Big {
    double payload[16] = {1, 2, 3};
  } big;
  int sum = 0;
  auto lambda = [big, &sum] { sum += static_cast<int>(big.payload[2]); };
  static_assert(!SmallFn<48>::fits_inline_v<decltype(lambda)>);
  SmallFn<48> fn(std::move(lambda));
  EXPECT_FALSE(fn.is_inline());
  SmallFn<48> moved(std::move(fn));  // heap case: pointer steal, no copy
  EXPECT_FALSE(static_cast<bool>(fn));
  moved();
  EXPECT_EQ(sum, 3);
}

TEST(SmallFnEdge, MoveTransfersStateAndNullsSource) {
  int hits = 0;
  SmallFn<48> fn([&hits] { ++hits; });
  SmallFn<48> other(std::move(fn));
  EXPECT_FALSE(static_cast<bool>(fn));
  other();
  EXPECT_EQ(hits, 1);
  fn = std::move(other);
  EXPECT_FALSE(static_cast<bool>(other));
  fn();
  EXPECT_EQ(hits, 2);
  fn = nullptr;
  EXPECT_TRUE(fn == nullptr);
}

TEST(SmallFnEdge, NullStdFunctionMapsToEmpty) {
  std::function<void()> null_fn;
  SmallFn<48> fn(std::move(null_fn));
  EXPECT_TRUE(fn == nullptr);
  void (*null_ptr)() = nullptr;
  SmallFn<48> fn2(null_ptr);
  EXPECT_TRUE(fn2 == nullptr);
}

TEST(SmallFnEdge, DestructionReleasesCapturedOwnership) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    SmallFn<48> fn([token = std::move(token)] { (void)token; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

// Engine slots release captures right after the callback returns, not when
// the slot is reused — a request must not linger in a dead calendar slot.
TEST(SmallFnEdge, EngineSlotReleasesCapturesAfterInvoke) {
  Engine engine;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  engine.schedule_at(1.0, [token = std::move(token)] { (void)token; });
  engine.schedule_at(2.0, [] {});  // keeps the calendar non-empty
  engine.run_until(1.5);
  EXPECT_TRUE(watch.expired());
  engine.run_all();
}

}  // namespace
