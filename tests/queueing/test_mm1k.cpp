#include "queueing/mm1k.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"

namespace cosm::queueing {
namespace {

TEST(MM1K, StateProbabilitiesSumToOne) {
  for (double u : {0.2, 0.8, 1.0, 1.5, 3.0}) {
    const MM1K q(u * 100.0, 100.0, 8);
    double total = 0.0;
    for (int i = 0; i <= 8; ++i) total += q.state_probability(i);
    EXPECT_NEAR(total, 1.0, 1e-12) << "u=" << u;
  }
}

TEST(MM1K, GeometricShapeBelowSaturation) {
  const MM1K q(50.0, 100.0, 5);  // u = 0.5
  for (int i = 1; i <= 5; ++i) {
    EXPECT_NEAR(q.state_probability(i) / q.state_probability(i - 1), 0.5,
                1e-12);
  }
}

TEST(MM1K, CriticalLoadIsUniform) {
  const MM1K q(100.0, 100.0, 4);
  for (int i = 0; i <= 4; ++i) {
    EXPECT_NEAR(q.state_probability(i), 0.2, 1e-9);
  }
  EXPECT_NEAR(q.mean_jobs(), 2.0, 1e-9);
}

TEST(MM1K, K1IsErlangLoss) {
  // M/M/1/1: blocking = u / (1 + u).
  const MM1K q(80.0, 100.0, 1);
  EXPECT_NEAR(q.blocking_probability(), 0.8 / 1.8, 1e-12);
  // Accepted jobs never queue: sojourn = service.
  EXPECT_NEAR(q.mean_sojourn_time(), 0.01, 1e-12);
}

TEST(MM1K, LargeKApproachesMM1) {
  const double r = 60.0;
  const double v = 100.0;
  const MM1K q(r, v, 200);
  EXPECT_NEAR(q.blocking_probability(), 0.0, 1e-12);
  // M/M/1 mean sojourn 1/(v - r).
  EXPECT_NEAR(q.mean_sojourn_time(), 1.0 / (v - r), 1e-9);
}

TEST(MM1K, SojournTransformMatchesMeanAndCdf) {
  const MM1K q(90.0, 100.0, 6);
  const auto sojourn = q.sojourn_time();
  EXPECT_NEAR(sojourn->mean(), q.mean_sojourn_time(), 1e-12);
  // CDF via inversion must match the explicit Erlang mixture: an accepted
  // arrival seeing i jobs waits i+1 exponential stages.
  const double u = q.offered_utilization();
  const double norm = 1.0 - q.blocking_probability();
  for (double t : {0.005, 0.02, 0.05, 0.15}) {
    double expected = 0.0;
    for (int i = 0; i < 6; ++i) {
      // Erlang(i+1, v) CDF = P(i+1, v t).
      double tail = 0.0;
      double term = 1.0;
      for (int j = 0; j <= i; ++j) {
        tail += term;
        term *= 100.0 * t / (j + 1.0);
      }
      const double erlang_cdf = 1.0 - std::exp(-100.0 * t) * tail;
      expected += q.state_probability(i) / norm * erlang_cdf;
    }
    EXPECT_NEAR(sojourn->cdf(t), expected, 1e-6) << t << " u=" << u;
  }
}

TEST(MM1K, SojournSecondMomentMatchesErlangMixture) {
  const MM1K q(70.0, 100.0, 5);
  const auto sojourn = q.sojourn_time();
  double expected = 0.0;
  const double norm = 1.0 - q.blocking_probability();
  for (int i = 0; i < 5; ++i) {
    expected += q.state_probability(i) / norm * (i + 1.0) * (i + 2.0) /
                (100.0 * 100.0);
  }
  EXPECT_NEAR(sojourn->second_moment(), expected, 1e-15);
  EXPECT_TRUE(std::isfinite(sojourn->second_moment()));
}

TEST(MM1K, SaturatedQueueStillWellDefined) {
  const MM1K q(300.0, 100.0, 4);  // u = 3
  EXPECT_GT(q.blocking_probability(), 0.6);
  EXPECT_LT(q.mean_jobs(), 4.0 + 1e-12);
  EXPECT_GT(q.mean_sojourn_time(), 0.0);
  const auto sojourn = q.sojourn_time();
  EXPECT_NEAR(sojourn->cdf(1.0), 1.0, 1e-6);
}

TEST(MM1K, MeanJobsMatchesStateSum) {
  for (double u : {0.4, 0.999999, 2.0}) {
    const MM1K q(u * 50.0, 50.0, 10);
    double n = 0.0;
    for (int i = 0; i <= 10; ++i) n += i * q.state_probability(i);
    EXPECT_NEAR(q.mean_jobs(), n, 1e-9) << u;
  }
}

TEST(MM1K, Validation) {
  EXPECT_THROW(MM1K(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(MM1K(1.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(MM1K(1.0, 1.0, 0), std::invalid_argument);
  const MM1K q(1.0, 2.0, 3);
  EXPECT_THROW(q.state_probability(-1), std::invalid_argument);
  EXPECT_THROW(q.state_probability(4), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::queueing
