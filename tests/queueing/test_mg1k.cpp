// M/G/1/K embedded-chain solver tests: it must collapse to M/M/1/K for
// exponential service, to the insensitive Erlang loss result for K = 1,
// and it must quantify the M/M/1/K approximation gap for non-exponential
// service (the paper's S16 systematic error source).
#include "queueing/mg1k.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "queueing/mm1k.hpp"

namespace cosm::queueing {
namespace {

using numerics::Degenerate;
using numerics::Exponential;
using numerics::Gamma;

TEST(MG1K, StateProbabilitiesSumToOne) {
  const MG1K q(50.0, std::make_shared<Gamma>(2.0, 200.0), 6);
  double total = 0.0;
  for (int i = 0; i <= 6; ++i) total += q.state_probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

class MG1KvsMM1K : public ::testing::TestWithParam<std::tuple<double, int>> {
};

TEST_P(MG1KvsMM1K, ExponentialServiceCollapsesToMM1K) {
  const double u = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  const double v = 100.0;
  const MG1K general(u * v, std::make_shared<Exponential>(v), k);
  const MM1K markov(u * v, v, k);
  for (int i = 0; i <= k; ++i) {
    EXPECT_NEAR(general.state_probability(i), markov.state_probability(i),
                2e-4)
        << "u=" << u << " K=" << k << " i=" << i;
  }
  EXPECT_NEAR(general.blocking_probability(), markov.blocking_probability(),
              2e-4);
  EXPECT_NEAR(general.mean_sojourn_time(), markov.mean_sojourn_time(),
              2e-3 * markov.mean_sojourn_time() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(LoadAndCapacity, MG1KvsMM1K,
                         ::testing::Combine(::testing::Values(0.3, 0.7, 1.0,
                                                              1.8),
                                            ::testing::Values(1, 4, 16)));

TEST(MG1K, K1BlockingIsInsensitiveToServiceShape) {
  // M/G/1/1 blocking depends only on rho (Erlang loss insensitivity).
  const double r = 70.0;
  const double mean_service = 0.01;
  const double rho = r * mean_service;
  for (const numerics::DistPtr& service :
       {numerics::DistPtr(std::make_shared<Exponential>(100.0)),
        numerics::DistPtr(std::make_shared<Degenerate>(0.01)),
        numerics::DistPtr(std::make_shared<Gamma>(0.5, 50.0))}) {
    const MG1K q(r, service, 1);
    EXPECT_NEAR(q.blocking_probability(), rho / (1.0 + rho), 1e-4)
        << service->name();
  }
}

TEST(MG1K, LowVarianceServiceBlocksLessThanMM1K) {
  // Deterministic service (CV = 0) blocks less than exponential (CV = 1)
  // at equal utilization — the direction of the paper's approximation
  // error.
  const double r = 90.0;
  const double v = 100.0;
  const int k = 4;
  const MG1K deterministic(r, std::make_shared<Degenerate>(1.0 / v), k);
  const MM1K exponential(r, v, k);
  EXPECT_LT(deterministic.blocking_probability(),
            exponential.blocking_probability());
  EXPECT_LT(deterministic.mean_sojourn_time(),
            exponential.mean_sojourn_time());
}

TEST(MG1K, HighVarianceServiceBlocksMoreThanMM1K) {
  const double r = 90.0;
  const double v = 100.0;  // mean service 0.01
  const int k = 4;
  // Gamma shape 0.25 => CV^2 = 4.
  const MG1K bursty(r, std::make_shared<Gamma>(0.25, 25.0), k);
  const MM1K exponential(r, v, k);
  EXPECT_GT(bursty.mean_sojourn_time(), exponential.mean_sojourn_time());
}

TEST(MG1KSojourn, CollapsesToMM1KForExponentialService) {
  const double r = 70.0;
  const double v = 100.0;
  const int k = 6;
  const MG1K general(r, std::make_shared<Exponential>(v), k);
  const MM1K markov(r, v, k);
  const auto s_general = general.sojourn_time();
  const auto s_markov = markov.sojourn_time();
  EXPECT_NEAR(s_general->mean(), s_markov->mean(),
              2e-3 * s_markov->mean());
  for (double t : {0.005, 0.02, 0.05, 0.15}) {
    EXPECT_NEAR(s_general->cdf(t), s_markov->cdf(t), 2e-3) << t;
  }
}

TEST(MG1KSojourn, TransformIsProperAndMatchesLittleApproximately) {
  const MG1K q(80.0, std::make_shared<Gamma>(2.8, 280.0), 8);
  const auto sojourn = q.sojourn_time();
  // L(0+) = 1 and the CDF is a proper distribution function.
  EXPECT_NEAR(sojourn->laplace({1e-6, 0.0}).real(), 1.0, 1e-6);
  double prev = 0.0;
  for (double t : {0.005, 0.01, 0.02, 0.05, 0.1, 0.3}) {
    const double c = sojourn->cdf(t);
    EXPECT_GE(c, prev - 1e-9);
    EXPECT_LE(c, 1.0 + 1e-9);
    prev = c;
  }
  EXPECT_GT(prev, 0.999);
  // The residual approximation's mean stays within a few percent of the
  // exact Little's-law mean.
  EXPECT_NEAR(sojourn->mean(), q.mean_sojourn_time(),
              0.06 * q.mean_sojourn_time());
}

TEST(MG1KSojourn, LowVarianceServiceIsFasterThanMM1K) {
  // The direction that matters for the S16 extension: with CV^2 < 1 the
  // exact sojourn is shorter in the mean and in the upper body/tail.
  // (Pointwise CDF dominance need not hold near zero, where the
  // exponential's density peak puts extra early mass.)
  const double r = 90.0;
  const double mean_service = 0.01;
  const int k = 8;
  const MG1K exact(r, std::make_shared<Gamma>(3.0, 300.0), k);
  const MM1K markov(r, 1.0 / mean_service, k);
  const auto s_exact = exact.sojourn_time();
  const auto s_markov = markov.sojourn_time();
  EXPECT_LT(s_exact->mean(), s_markov->mean());
  for (double t : {0.05, 0.08, 0.12}) {
    EXPECT_GE(s_exact->cdf(t), s_markov->cdf(t) - 1e-6) << t;
  }
}

TEST(MG1K, Validation) {
  EXPECT_THROW(MG1K(0.0, std::make_shared<Exponential>(1.0), 1),
               std::invalid_argument);
  EXPECT_THROW(MG1K(1.0, nullptr, 1), std::invalid_argument);
  EXPECT_THROW(MG1K(1.0, std::make_shared<Exponential>(1.0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cosm::queueing
