// M/G/1 tests.  The strongest check: with exponential service, M/G/1
// collapses to M/M/1, whose waiting time has the closed form
// W(t) = 1 - rho e^{-(v - r) t}.  The P–K transform machinery must
// reproduce it through numerical inversion.
#include "queueing/mg1.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace cosm::queueing {
namespace {

using numerics::Degenerate;
using numerics::DistPtr;
using numerics::Exponential;
using numerics::Gamma;

TEST(MG1, UtilizationAndStability) {
  const MG1 q(50.0, std::make_shared<Exponential>(100.0));
  EXPECT_NEAR(q.utilization(), 0.5, 1e-14);
  EXPECT_TRUE(q.stable());
  const MG1 overloaded(120.0, std::make_shared<Exponential>(100.0));
  EXPECT_FALSE(overloaded.stable());
  EXPECT_THROW(overloaded.mean_waiting_time(), std::invalid_argument);
  EXPECT_THROW(overloaded.waiting_time(), std::invalid_argument);
}

TEST(MG1, MM1MeanWaitingTimeClosedForm) {
  // M/M/1: W̄ = rho / (v - r).
  const double r = 60.0;
  const double v = 100.0;
  const MG1 q(r, std::make_shared<Exponential>(v));
  EXPECT_NEAR(q.mean_waiting_time(), (r / v) / (v - r), 1e-12);
  EXPECT_NEAR(q.mean_sojourn_time(), 1.0 / (v - r), 1e-12);
}

TEST(MG1, MD1MeanWaitingTimeClosedForm) {
  // M/D/1: W̄ = rho b / (2 (1 - rho)).
  const double r = 40.0;
  const double b = 0.01;
  const MG1 q(r, std::make_shared<Degenerate>(b));
  const double rho = r * b;
  EXPECT_NEAR(q.mean_waiting_time(), rho * b / (2.0 * (1.0 - rho)), 1e-12);
}

TEST(MG1, WaitingTimeCdfMatchesMM1ClosedForm) {
  const double r = 60.0;
  const double v = 100.0;
  const MG1 q(r, std::make_shared<Exponential>(v));
  const DistPtr w = q.waiting_time();
  const double rho = r / v;
  for (double t : {0.001, 0.01, 0.03, 0.08, 0.2}) {
    const double expected = 1.0 - rho * std::exp(-(v - r) * t);
    EXPECT_NEAR(w->cdf(t), expected, 1e-6) << t;
  }
}

TEST(MG1, WaitingTimeAtomAtZeroEqualsIdleProbability) {
  const MG1 q(30.0, std::make_shared<Gamma>(2.0, 100.0));
  const DistPtr w = q.waiting_time();
  // P[W = 0] = 1 - rho; the CDF just above zero must expose the atom.
  EXPECT_NEAR(w->cdf(1e-7), q.idle_probability(), 1e-4);
}

TEST(MG1, WaitingTimeMeanMatchesTransformMean) {
  const MG1 q(35.0, std::make_shared<Gamma>(3.0, 200.0));
  const DistPtr w = q.waiting_time();
  EXPECT_NEAR(w->mean(), q.mean_waiting_time(), 1e-12);
}

TEST(MG1, SojournCdfIsWaitingConvolvedWithService) {
  const double r = 50.0;
  const double v = 125.0;
  const MG1 q(r, std::make_shared<Exponential>(v));
  const DistPtr sojourn = q.sojourn_time();
  // M/M/1 sojourn is Exponential(v - r).
  for (double t : {0.005, 0.02, 0.05, 0.1}) {
    EXPECT_NEAR(sojourn->cdf(t), 1.0 - std::exp(-(v - r) * t), 1e-6) << t;
  }
  EXPECT_NEAR(sojourn->mean(), 1.0 / (v - r), 1e-12);
}

class MG1UtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(MG1UtilizationSweep, WaitingCdfIsMonotoneAndProper) {
  const double rho = GetParam();
  const double v = 200.0;
  const MG1 q(rho * v, std::make_shared<Gamma>(2.5, 2.5 * v));
  const DistPtr w = q.waiting_time();
  double prev = 0.0;
  for (double t : {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.5}) {
    const double c = w->cdf(t);
    EXPECT_GE(c, prev - 1e-7) << "rho=" << rho << " t=" << t;
    EXPECT_LE(c, 1.0 + 1e-9);
    prev = c;
  }
  // The queue empties eventually: CDF approaches 1 far in the tail.
  EXPECT_GT(w->cdf(2.0), 0.999) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Load, MG1UtilizationSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85, 0.95));

TEST(MG1, QueueLengthDistributionMatchesMM1GeometricLaw) {
  // M/M/1: P[N = n] = (1 - rho) rho^n.
  const double r = 60.0;
  const double v = 100.0;
  const MG1 q(r, std::make_shared<Exponential>(v));
  const auto probabilities = q.queue_length_distribution(20);
  const double rho = r / v;
  for (int n = 0; n <= 20; ++n) {
    EXPECT_NEAR(probabilities[n], (1.0 - rho) * std::pow(rho, n), 1e-9)
        << n;
  }
}

TEST(MG1, QueueLengthDistributionIsProperAndMatchesLittle) {
  const MG1 q(30.0, std::make_shared<Gamma>(2.5, 100.0));
  const auto probabilities = q.queue_length_distribution(200);
  double total = 0.0;
  double mean = 0.0;
  for (std::size_t n = 0; n < probabilities.size(); ++n) {
    EXPECT_GE(probabilities[n], 0.0);
    total += probabilities[n];
    mean += static_cast<double>(n) * probabilities[n];
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_NEAR(mean, q.mean_jobs(), 1e-3);
  // P[N = 0] is the idle probability.
  EXPECT_NEAR(probabilities[0], q.idle_probability(), 1e-9);
}

TEST(MG1, Validation) {
  EXPECT_THROW(MG1(0.0, std::make_shared<Exponential>(1.0)),
               std::invalid_argument);
  EXPECT_THROW(MG1(1.0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::queueing
