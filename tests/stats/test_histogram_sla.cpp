#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/sla.hpp"
#include "stats/summary.hpp"

namespace cosm::stats {
namespace {

TEST(LogHistogram, QuantilesWithinBucketResolution) {
  LogHistogram h(1e-5, 10.0, 100);
  cosm::Rng rng(3);
  SampleSet exact;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.gamma(2.0, 100.0);
    h.add(x);
    exact.add(x);
  }
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    const double approx = h.quantile(p);
    const double truth = exact.quantile(p);
    // 100 buckets/decade => ~2.3% relative resolution.
    EXPECT_NEAR(approx / truth, 1.0, 0.03) << p;
  }
}

TEST(LogHistogram, FractionBelowMatchesEmpiricalCdf) {
  LogHistogram h(1e-5, 10.0, 100);
  cosm::Rng rng(7);
  SampleSet exact;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential(50.0);
    h.add(x);
    exact.add(x);
  }
  for (double t : {0.005, 0.02, 0.05, 0.1}) {
    EXPECT_NEAR(h.fraction_below(t), exact.fraction_below(t), 0.01) << t;
  }
}

TEST(LogHistogram, ClampBucketsCatchOutliers) {
  LogHistogram h(1e-3, 1.0, 10);
  h.add(1e-9);   // underflow
  h.add(1e9);    // overflow
  h.add(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(0.0), 1e-3);
  EXPECT_GE(h.quantile(0.99), 1.0);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a(1e-3, 1.0, 10);
  LogHistogram b(1e-3, 1.0, 10);
  a.add(0.1);
  b.add(0.2);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  LogHistogram incompatible(1e-2, 1.0, 10);
  EXPECT_THROW(a.merge(incompatible), std::invalid_argument);
}

TEST(LogHistogram, Validation) {
  EXPECT_THROW(LogHistogram(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 0.5), std::invalid_argument);
  const LogHistogram h(1e-3, 1.0);
  EXPECT_THROW(h.quantile(0.5), std::invalid_argument);  // empty
}

TEST(SlaCounter, CountsPerInterval) {
  SlaCounter counter({0.01, 0.05}, 60.0);
  // Interval 0: two requests, one meets 10ms, both meet 50ms.
  counter.record(10.0, 0.005);
  counter.record(30.0, 0.030);
  // Interval 2 (t in [120, 180)): one request missing both SLAs.
  counter.record(130.0, 0.2);
  ASSERT_EQ(counter.interval_count(), 3u);
  EXPECT_NEAR(counter.fraction_met(0, 0), 0.5, 1e-14);
  EXPECT_NEAR(counter.fraction_met(1, 0), 1.0, 1e-14);
  EXPECT_EQ(counter.fraction_met(0, 1), 0.0);  // empty interval
  EXPECT_NEAR(counter.fraction_met(0, 2), 0.0, 1e-14);
  EXPECT_NEAR(counter.fraction_met_total(1), 2.0 / 3.0, 1e-14);
  EXPECT_EQ(counter.total_requests(), 3u);
}

TEST(SlaCounter, PooledWindowMatchesManualCount) {
  SlaCounter counter({0.1}, 10.0);
  for (int i = 0; i < 100; ++i) {
    counter.record(static_cast<double>(i), i % 4 == 0 ? 0.05 : 0.2);
  }
  // Intervals [2, 5): t in [20, 50) => 30 requests, those with i%4==0 meet.
  const double expected = 8.0 / 30.0;
  EXPECT_NEAR(counter.fraction_met_over(0, 2, 5), expected, 1e-14);
}

TEST(SlaCounter, BoundaryLatencyCountsAsMet) {
  SlaCounter counter({0.1}, 60.0);
  counter.record(0.0, 0.1);  // exactly at the SLA
  EXPECT_NEAR(counter.fraction_met(0, 0), 1.0, 1e-14);
}

TEST(SlaCounter, Validation) {
  EXPECT_THROW(SlaCounter({}, 60.0), std::invalid_argument);
  EXPECT_THROW(SlaCounter({0.0}, 60.0), std::invalid_argument);
  EXPECT_THROW(SlaCounter({0.1}, 0.0), std::invalid_argument);
  SlaCounter c({0.1}, 60.0);
  EXPECT_THROW(c.record(-1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(c.fraction_met(1, 0), std::invalid_argument);
}

TEST(PredictionErrorSummary, TableOneAggregates) {
  PredictionErrorSummary summary;
  summary.add(0.95, 0.93);   // +0.02
  summary.add(0.80, 0.85);   // -0.05
  summary.add(0.60, 0.599);  // +0.001
  EXPECT_EQ(summary.count(), 3u);
  EXPECT_NEAR(summary.mean_abs_error(), (0.02 + 0.05 + 0.001) / 3.0, 1e-12);
  EXPECT_NEAR(summary.best_case(), 0.001, 1e-12);
  EXPECT_NEAR(summary.worst_case(), 0.05, 1e-12);
  EXPECT_NEAR(summary.mean_signed_error(), (0.02 - 0.05 + 0.001) / 3.0,
              1e-12);
}

TEST(PredictionErrorSummary, Validation) {
  PredictionErrorSummary summary;
  EXPECT_THROW(summary.mean_abs_error(), std::invalid_argument);
  EXPECT_THROW(summary.add(1.5, 0.5), std::invalid_argument);
  EXPECT_THROW(summary.add(0.5, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::stats
