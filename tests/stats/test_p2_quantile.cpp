#include "stats/p2_quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/summary.hpp"

namespace cosm::stats {
namespace {

class P2AccuracyTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(P2AccuracyTest, TracksExactQuantileOnSkewedData) {
  const double level = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  P2Quantile estimator(level);
  SampleSet exact;
  cosm::Rng rng(static_cast<std::uint64_t>(seed));
  for (int i = 0; i < 200000; ++i) {
    // Latency-like skewed data.
    const double x = rng.gamma(2.0, 100.0);
    estimator.add(x);
    exact.add(x);
  }
  const double truth = exact.quantile(level);
  EXPECT_NEAR(estimator.value() / truth, 1.0, 0.05)
      << "level=" << level << " truth=" << truth;
}

INSTANTIATE_TEST_SUITE_P(LevelsAndSeeds, P2AccuracyTest,
                         ::testing::Combine(::testing::Values(0.5, 0.9,
                                                              0.95, 0.99),
                                            ::testing::Values(1, 7)));

TEST(P2Quantile, SmallSamplesUseExactOrderStatistics) {
  P2Quantile median(0.5);
  median.add(3.0);
  EXPECT_EQ(median.value(), 3.0);
  median.add(1.0);
  median.add(2.0);
  EXPECT_EQ(median.value(), 2.0);
  EXPECT_EQ(median.count(), 3u);
}

TEST(P2Quantile, MonotoneShiftIsFollowed) {
  // Distribution shifts upward mid-stream; the estimate must follow.
  P2Quantile p90(0.9);
  cosm::Rng rng(5);
  for (int i = 0; i < 50000; ++i) p90.add(rng.exponential(100.0));
  const double before = p90.value();
  for (int i = 0; i < 200000; ++i) p90.add(0.05 + rng.exponential(100.0));
  EXPECT_GT(p90.value(), before + 0.02);
}

TEST(P2Quantile, ExtremesAreBracketedByData) {
  P2Quantile p99(0.99);
  cosm::Rng rng(11);
  double max_seen = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    max_seen = std::max(max_seen, x);
    p99.add(x);
  }
  EXPECT_GT(p99.value(), 0.9);
  EXPECT_LE(p99.value(), max_seen);
}

TEST(P2Quantile, Validation) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  const P2Quantile empty(0.5);
  EXPECT_THROW(empty.value(), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::stats
