// Merge primitives used by the cross-shard metric reduction
// (sim/metrics.cpp merge_from): StreamingStats::merge must reproduce the
// single-stream moments exactly (count/min/max/sum bit-equal, mean and
// variance to float round-off), and LogHistogram::merge must be a
// bucket-count sum — so merged quantile_checked answers equal the
// single-stream histogram's and still bracket the true sample quantile.
#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace {

using cosm::stats::LogHistogram;
using cosm::stats::QuantileBound;
using cosm::stats::StreamingStats;

std::vector<double> lognormalish_samples(std::size_t count,
                                         std::uint64_t seed) {
  cosm::Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Heavy-ish tail in (0, ~50): u^-0.5 style inverse-CDF draw.
    const double u = (static_cast<double>(rng.uniform_index(1u << 20)) + 1) /
                     static_cast<double>(1u << 20);
    samples.push_back(0.001 / u + 0.0005 * static_cast<double>(i % 7));
  }
  return samples;
}

TEST(StreamingStatsMerge, MatchesSingleStreamMoments) {
  const std::vector<double> samples = lognormalish_samples(4000, 99);
  StreamingStats whole;
  for (const double x : samples) whole.add(x);

  // Split into 4 uneven parts, merge in order.
  StreamingStats merged;
  const std::size_t cuts[] = {0, 700, 1500, 3100, 4000};
  for (int part = 0; part < 4; ++part) {
    StreamingStats piece;
    for (std::size_t i = cuts[part]; i < cuts[part + 1]; ++i) {
      piece.add(samples[i]);
    }
    merged.merge(piece);
  }

  // Count, min, max are exact by construction.
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  // Chan's pairwise update reassociates the float sums, so mean/variance
  // agree to round-off, not bit-for-bit.
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * whole.mean());
  EXPECT_NEAR(merged.variance(), whole.variance(),
              1e-9 * whole.variance());
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * whole.sum());
}

TEST(StreamingStatsMerge, EmptySidesAreIdentity) {
  StreamingStats stats;
  stats.add(2.0);
  stats.add(4.0);
  StreamingStats empty;
  stats.merge(empty);  // merging in nothing changes nothing
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  StreamingStats target;
  target.merge(stats);  // merging into empty copies exactly
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 2.0);
  EXPECT_EQ(target.max(), 4.0);
  EXPECT_DOUBLE_EQ(target.mean(), 3.0);
  EXPECT_DOUBLE_EQ(target.variance(), stats.variance());
}

TEST(LogHistogramMerge, BucketSumMakesQuantilesEqualSingleStream) {
  const std::vector<double> samples = lognormalish_samples(6000, 7);
  LogHistogram whole(1e-4, 100.0, 200);
  LogHistogram merged(1e-4, 100.0, 200);
  for (const double x : samples) whole.add(x);

  LogHistogram parts[3] = {LogHistogram(1e-4, 100.0, 200),
                           LogHistogram(1e-4, 100.0, 200),
                           LogHistogram(1e-4, 100.0, 200)};
  for (std::size_t i = 0; i < samples.size(); ++i) {
    parts[i % 3].add(samples[i]);
  }
  for (const LogHistogram& part : parts) merged.merge(part);

  ASSERT_EQ(merged.count(), whole.count());
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    const auto merged_q = merged.quantile_checked(p);
    const auto whole_q = whole.quantile_checked(p);
    // Bucket counts are integers: the merged histogram IS the
    // single-stream histogram, so the checked quantile matches exactly —
    // value and clamp verdict both.
    EXPECT_EQ(merged_q.value, whole_q.value) << "p=" << p;
    EXPECT_EQ(merged_q.bound, whole_q.bound) << "p=" << p;
    // And the histogram answer still brackets the true sample quantile
    // within one log-bucket (200/decade => ~1.16% width).
    const double truth =
        sorted[static_cast<std::size_t>(p * (sorted.size() - 1))];
    EXPECT_EQ(merged_q.bound, QuantileBound::kExact) << "p=" << p;
    EXPECT_GE(merged_q.value * 1.02, truth) << "p=" << p;
    EXPECT_LE(merged_q.value, truth * 1.02) << "p=" << p;
  }
}

TEST(LogHistogramMerge, ClampBucketVerdictsSurviveMerge) {
  LogHistogram low(1e-3, 1.0, 100);
  LogHistogram high(1e-3, 1.0, 100);
  for (int i = 0; i < 90; ++i) low.add(1e-5);   // underflow bucket
  for (int i = 0; i < 10; ++i) high.add(50.0);  // overflow bucket
  LogHistogram merged(1e-3, 1.0, 100);
  merged.merge(low);
  merged.merge(high);
  ASSERT_EQ(merged.count(), 100u);
  // Median lands in the underflow clamp: the true value is <= hist_min,
  // and the merged histogram must still say so rather than fabricate.
  EXPECT_EQ(merged.quantile_checked(0.5).bound, QuantileBound::kUpperBound);
  // p999 lands in the overflow clamp: true value >= hist_max.
  EXPECT_EQ(merged.quantile_checked(0.999).bound,
            QuantileBound::kLowerBound);
}

TEST(LogHistogramMerge, RejectsMismatchedLayouts) {
  LogHistogram a(1e-4, 100.0, 200);
  LogHistogram narrower(1e-3, 100.0, 200);
  LogHistogram coarser(1e-4, 100.0, 100);
  EXPECT_THROW(a.merge(narrower), std::invalid_argument);
  EXPECT_THROW(a.merge(coarser), std::invalid_argument);
}

}  // namespace
