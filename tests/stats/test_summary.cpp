#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace cosm::stats {
namespace {

TEST(StreamingStats, MatchesDirectComputation) {
  StreamingStats st;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : xs) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_NEAR(st.mean(), 5.0, 1e-14);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
}

TEST(StreamingStats, EmptyAndSingle) {
  StreamingStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_THROW(st.min(), std::invalid_argument);
  st.add(3.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.min(), 3.0);
}

TEST(StreamingStats, MergeEqualsPooledStream) {
  cosm::Rng rng(5);
  StreamingStats a;
  StreamingStats b;
  StreamingStats pooled;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    (i % 3 == 0 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-8);
  EXPECT_EQ(a.min(), pooled.min());
  EXPECT_EQ(a.max(), pooled.max());
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats a;
  StreamingStats b;
  b.add(1.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 1u);
  StreamingStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 1u);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-12);
}

TEST(SampleSet, FractionBelow) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.fraction_below(5.0), 0.5, 1e-14);   // inclusive
  EXPECT_NEAR(s.fraction_below(0.5), 0.0, 1e-14);
  EXPECT_NEAR(s.fraction_below(10.0), 1.0, 1e-14);
}

TEST(SampleSet, StaysCorrectAfterInterleavedAdds) {
  SampleSet s;
  s.add(3.0);
  EXPECT_NEAR(s.quantile(1.0), 3.0, 1e-14);
  s.add(1.0);  // invalidates the sorted cache
  s.add(2.0);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-14);
  EXPECT_NEAR(s.quantile(0.5), 2.0, 1e-14);
  EXPECT_NEAR(s.mean(), 2.0, 1e-14);
}

TEST(SampleSet, EmptyThrows) {
  const SampleSet s;
  EXPECT_THROW(s.quantile(0.5), std::invalid_argument);
  EXPECT_THROW(s.fraction_below(1.0), std::invalid_argument);
  EXPECT_THROW(s.mean(), std::invalid_argument);
}

}  // namespace
}  // namespace cosm::stats
