// Clamp-bucket quantile semantics: when the requested quantile lands in
// the underflow or overflow bucket, the histogram has no position
// information — it must report the tightest provable bound (and say so),
// not interpolate a fabricated midpoint.  These tests pin the fixed
// behavior and the obs counters that make the clamping visible.
#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "obs/obs.hpp"

namespace cosm::stats {
namespace {

struct ObsGuard {
  ObsGuard() {
    obs::reset();
    obs::set_enabled(true);
  }
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST(HistogramClamp, UnderflowQuantileIsAnUpperBound) {
  LogHistogram h(1e-3, 1.0, 10);
  // Every sample sits below the tracked range: the histogram only knows
  // "less than min_value".
  for (int i = 0; i < 100; ++i) h.add(1e-6);
  const QuantileEstimate estimate = h.quantile_checked(0.5);
  EXPECT_EQ(estimate.bound, QuantileBound::kUpperBound);
  // The bound is min_value itself, not a midpoint between 0 and
  // min_value (the historical fabrication).
  EXPECT_EQ(estimate.value, 1e-3);
}

TEST(HistogramClamp, OverflowQuantileIsALowerBound) {
  LogHistogram h(1e-3, 1.0, 10);
  h.add(0.5);
  // Heavy tail beyond max_value: the P99 is provably >= the last tracked
  // edge, and that is all the histogram can say.
  for (int i = 0; i < 99; ++i) h.add(50.0);
  const QuantileEstimate estimate = h.quantile_checked(0.99);
  EXPECT_EQ(estimate.bound, QuantileBound::kLowerBound);
  EXPECT_GE(estimate.value, 1.0);
}

TEST(HistogramClamp, CoreBucketQuantileStaysExact) {
  LogHistogram h(1e-3, 1.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(0.01 + 1e-5 * i);
  const QuantileEstimate estimate = h.quantile_checked(0.5);
  EXPECT_EQ(estimate.bound, QuantileBound::kExact);
  EXPECT_NEAR(estimate.value, 0.015, 0.002);
}

TEST(HistogramClamp, LegacyQuantileReturnsTheSameValue) {
  LogHistogram h(1e-3, 1.0, 10);
  for (int i = 0; i < 10; ++i) h.add(1e-6);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(1e6);
  for (const double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    EXPECT_EQ(h.quantile(p), h.quantile_checked(p).value) << p;
  }
}

TEST(HistogramClamp, ObsCountersReportClampTraffic) {
  ObsGuard guard;
  LogHistogram h(1e-3, 1.0, 10);
  h.add(1e-6);  // underflow
  h.add(1e6);   // overflow
  h.add(1e6);   // overflow
  h.add(0.5);
  EXPECT_EQ(obs::counter_value(obs::Counter::kHistUnderflowAdd), 1u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kHistOverflowAdd), 2u);

  EXPECT_EQ(obs::counter_value(obs::Counter::kHistQuantileClamped), 0u);
  h.quantile_checked(0.5);  // core bucket: no clamp verdict
  EXPECT_EQ(obs::counter_value(obs::Counter::kHistQuantileClamped), 0u);
  h.quantile_checked(0.01);  // underflow bucket
  h.quantile_checked(0.99);  // overflow bucket
  EXPECT_EQ(obs::counter_value(obs::Counter::kHistQuantileClamped), 2u);
}

}  // namespace
}  // namespace cosm::stats
