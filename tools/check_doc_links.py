#!/usr/bin/env python3
"""Validate cross-references in the repo's Markdown documentation.

Checks, over every tracked *.md file (skipping build/ and third-party
directories):

  1. Relative Markdown links  [text](target)  resolve to an existing
     file or directory (external http(s)/mailto links are skipped).
  2. Anchor links  [text](FILE.md#anchor)  and  [text](#anchor)  match a
     heading in the target file (GitHub slug rules: lowercase, spaces
     to dashes, punctuation dropped, duplicate slugs suffixed -1, -2…).
  3. Inline-code path references  `src/...`, `bench/...`, `tests/...`,
     `tools/...`, `docs/...`, `examples/...`  point at real files.  A
     reference may carry a trailing  ::member  or  §/section suffix,
     which is ignored; an extensionless reference like
     `bench/perf_pipeline` names a built binary and resolves through
     its  .cpp  source.

Stdlib only; exits non-zero listing every broken reference.  Run from
anywhere inside the repo:

    python3 tools/check_doc_links.py
"""

import os
import re
import sys
import unicodedata

SKIP_DIRS = {".git", "build", "third_party", ".claude", "node_modules"}

# `path`-style references we can verify: must start with a known
# top-level source directory and look like a path (contains '/').
PATH_PREFIXES = ("src/", "bench/", "tests/", "tools/", "docs/", "examples/")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def repo_root():
    d = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(d)


def markdown_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def github_slug(text):
    """GitHub's heading-to-anchor slug: strip markup, lowercase,
    drop punctuation, spaces to dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", text)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_]", "", text)                   # emphasis
    text = text.strip().lower()
    out = []
    for ch in text:
        cat = unicodedata.category(ch)
        if ch == " " or ch == "-":
            out.append("-")
        elif cat.startswith(("L", "N")) or ch == "_":
            out.append(ch)
        # everything else (punctuation, symbols) is dropped
    return "".join(out)


def heading_anchors(path):
    """All anchors a file defines, with GitHub duplicate suffixing."""
    counts = {}
    anchors = set()
    in_fence = False
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if not m:
                    continue
                slug = github_slug(m.group(2))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
    except OSError:
        pass
    return anchors


def strip_code_fences(text):
    """Remove fenced code blocks so sample snippets are not checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_file(md_path, root, anchor_cache):
    errors = []
    with open(md_path, encoding="utf-8") as fh:
        raw = fh.read()
    text = strip_code_fences(raw)
    base = os.path.dirname(md_path)
    rel = os.path.relpath(md_path, root)

    def anchors_of(path):
        if path not in anchor_cache:
            anchor_cache[path] = heading_anchors(path)
        return anchor_cache[path]

    # 1 + 2: markdown links and anchors.  Inline code is stripped first:
    # transform notation like `L[f](s)` would otherwise parse as a link.
    linkable = re.sub(r"`[^`\n]*`", "", text)
    for m in LINK_RE.finditer(linkable):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            dest = os.path.normpath(os.path.join(base, path_part))
            if not os.path.exists(dest):
                errors.append(f"{rel}: broken link ({target})")
                continue
        else:
            dest = md_path
        if anchor and dest.endswith(".md"):
            if anchor.lower() not in anchors_of(dest):
                errors.append(f"{rel}: missing anchor ({target})")

    # 3: inline-code path references.
    for m in CODE_RE.finditer(text):
        ref = m.group(1).strip()
        if not ref.startswith(PATH_PREFIXES) or "/" not in ref:
            continue
        # Drop C++ member / section suffixes and glob-ish tails.
        ref = re.split(r"::|\s|§", ref)[0].rstrip(",;:")
        if not re.fullmatch(r"[\w./+-]+", ref) or "*" in ref:
            continue
        full = os.path.join(root, ref)
        # Extensionless references name built binaries (`bench/perf_sim`):
        # accept them when the .cpp source exists.
        if os.path.exists(full):
            continue
        if not os.path.splitext(ref)[1] and os.path.exists(full + ".cpp"):
            continue
        errors.append(f"{rel}: missing path reference (`{ref}`)")

    return errors


def main():
    root = repo_root()
    anchor_cache = {}
    errors = []
    files = markdown_files(root)
    for md in files:
        errors.extend(check_file(md, root, anchor_cache))
    if errors:
        print(f"check_doc_links: {len(errors)} broken reference(s) "
              f"in {len(files)} markdown files:")
        for e in errors:
            print("  " + e)
        return 1
    print(f"check_doc_links: OK ({len(files)} markdown files, "
          f"0 broken references)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
