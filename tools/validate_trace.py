#!/usr/bin/env python3
"""Validate a cosm obs trace export against docs/obs_trace.schema.json.

Stdlib only (no jsonschema dependency): implements the subset of JSON
Schema the checked-in schema actually uses — type, required, properties,
items, const, minimum, pattern.

Usage:
    python3 tools/validate_trace.py trace.json [more.json ...]
    python3 tools/validate_trace.py --require-span core.predict_sla \
        --require-counter inversion.calls trace.json

Exit status 0 if every file validates (and every required span/counter
is present with counters nonzero), 1 otherwise.
"""

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "docs" / "obs_trace.schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
    "integer": int,
}


def _check(instance, schema, path, errors):
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        ok = isinstance(instance, py_type)
        # bool is an int subclass in Python; don't let true pass as integer.
        if ok and expected in ("integer", "number") and isinstance(instance, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(instance).__name__}")
            return
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected constant {schema['const']!r}, got {instance!r}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} below minimum {schema['minimum']}")
    if "pattern" in schema and isinstance(instance, str):
        if not re.match(schema["pattern"], instance):
            errors.append(f"{path}: {instance!r} does not match {schema['pattern']!r}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                _check(instance[key], subschema, f"{path}.{key}", errors)
    if isinstance(instance, list) and "items" in schema:
        for i, element in enumerate(instance):
            _check(element, schema["items"], f"{path}[{i}]", errors)


def validate_file(trace_path, schema, require_spans, require_counters):
    errors = []
    try:
        instance = json.loads(Path(trace_path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{trace_path}: unreadable or invalid JSON: {exc}"]
    _check(instance, schema, "$", errors)
    if errors:
        return [f"{trace_path}: {e}" for e in errors]

    span_names = {span["name"] for span in instance.get("spans", [])}
    for name in require_spans:
        if name not in span_names:
            errors.append(f"{trace_path}: required span {name!r} not in trace")
    counters = {c["name"]: c["value"] for c in instance.get("counters", [])}
    for name in require_counters:
        if counters.get(name, 0) <= 0:
            errors.append(f"{trace_path}: required counter {name!r} is zero or absent")
    return errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+", help="trace JSON files to validate")
    parser.add_argument("--schema", default=str(SCHEMA_PATH))
    parser.add_argument("--require-span", action="append", default=[],
                        help="fail unless a span with this name is present")
    parser.add_argument("--require-counter", action="append", default=[],
                        help="fail unless this counter is present and nonzero")
    args = parser.parse_args(argv)

    schema = json.loads(Path(args.schema).read_text())
    failures = []
    for trace in args.traces:
        failures.extend(
            validate_file(trace, schema, args.require_span, args.require_counter))
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if not failures:
        print(f"OK {len(args.traces)} trace(s) valid against {args.schema}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
