// Overload control (paper Sec. I): during a transient traffic spike the
// system should turn excess requests away *before* SLA compliance
// collapses.  The model gives the admission threshold analytically: sweep
// the admitted rate, find the largest rate whose predicted percentile
// still meets the compliance target.
//
//   $ ./overload_control [sla_ms] [target_percentile]
#include <cstdio>
#include <cstdlib>

#include "core/errors.hpp"
#include "example_common.hpp"

int main(int argc, char** argv) {
  const double sla = (argc > 1 ? std::atof(argv[1]) : 50.0) * 1e-3;
  const double target = argc > 2 ? std::atof(argv[2]) : 0.90;
  constexpr unsigned kDevices = 4;

  std::printf("overload control on a %u-device cluster: keep "
              "P[latency <= %.0f ms] >= %.0f%%\n\n",
              kDevices, sla * 1e3, target * 100.0);
  std::printf("%-14s %-20s %s\n", "offered req/s", "P[latency <= SLA]",
              "admit?");

  double admission_threshold = 0.0;
  for (double rate = 40.0; rate <= 320.0; rate += 20.0) {
    double percentile = 0.0;
    bool overloaded = false;
    // Only genuine saturation reads as "(overloaded)"; a bad parameter
    // (NaN rate, missing distribution) is a bug and must propagate.
    try {
      const cosm::core::SystemModel model(
          cosm_examples::make_cluster(rate, kDevices));
      percentile = model.predict_sla_percentile(sla);
    } catch (const cosm::core::OverloadError&) {
      overloaded = true;
    }
    const bool admit = !overloaded && percentile >= target;
    if (admit) admission_threshold = rate;
    if (overloaded) {
      std::printf("%-14.0f %-20s %s\n", rate, "(overloaded)", "shed");
    } else {
      std::printf("%-14.0f %-20.2f %s\n", rate, 100.0 * percentile,
                  admit ? "admit" : "shed");
    }
  }
  std::printf("\n=> admission threshold: admit up to ~%.0f req/s, shed "
              "the excess during spikes.\n", admission_threshold);
  return 0;
}
