// Bottleneck identification (paper Sec. I): with hundreds of devices,
// which one is dragging the system below its SLA?  Eq. 3 decomposes the
// system percentile into per-device percentiles, so the model points at
// the culprit analytically.  Here a hash imbalance concentrates traffic
// on one device and a second device has a degraded (slow) disk; the
// report ranks devices by their SLA compliance and shows each one's
// contribution to the overall shortfall.
//
//   $ ./bottleneck_identification
#include <algorithm>
#include <cstdio>
#include <vector>

#include "example_common.hpp"

int main() {
  constexpr double kSla = 100e-3;
  constexpr double kSystemRate = 160.0;

  cosm::core::SystemParams params;
  params.frontend.arrival_rate = kSystemRate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse =
      std::make_shared<cosm::numerics::Degenerate>(0.8e-3);

  // 6 devices; device 2 receives a traffic hot spot, device 4 has a disk
  // whose service times degraded by 60% (e.g. pending sector remaps).
  const double shares[6] = {0.14, 0.14, 0.30, 0.14, 0.14, 0.14};
  for (int d = 0; d < 6; ++d) {
    auto device = cosm_examples::make_device(kSystemRate * shares[d]);
    if (d == 4) {
      device.index_disk =
          std::make_shared<cosm::numerics::Gamma>(3.0, 187.5);   // 16 ms
      device.meta_disk =
          std::make_shared<cosm::numerics::Gamma>(2.5, 195.3);   // 12.8 ms
      device.data_disk =
          std::make_shared<cosm::numerics::Gamma>(2.8, 145.8);   // 19.2 ms
    }
    params.devices.push_back(device);
  }

  const cosm::core::SystemModel model(params);
  const double system_percentile = model.predict_sla_percentile(kSla);
  std::printf("system: P[latency <= %.0f ms] = %.2f%%\n\n", kSla * 1e3,
              100.0 * system_percentile);

  struct Row {
    int device;
    double share;
    double percentile;
    double shortfall_contribution;  // share * (1 - percentile)
  };
  std::vector<Row> rows;
  for (int d = 0; d < 6; ++d) {
    const double p = model.predict_sla_percentile_device(d, kSla);
    rows.push_back({d, shares[d], p, shares[d] * (1.0 - p)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.shortfall_contribution > b.shortfall_contribution;
  });

  std::printf("%-8s %-10s %-18s %s\n", "device", "traffic",
              "P[<= SLA] (device)", "share of SLA misses");
  double total_shortfall = 0.0;
  for (const Row& row : rows) total_shortfall += row.shortfall_contribution;
  for (const Row& row : rows) {
    std::printf("%-8d %-10.0f%% %-18.2f %.1f%%\n", row.device,
                row.share * 100.0, row.percentile * 100.0,
                100.0 * row.shortfall_contribution / total_shortfall);
  }
  std::printf("\n=> device %d is the primary bottleneck; device %d is "
              "second.  Rebalance the hot partitions and replace the "
              "degraded disk.\n", rows[0].device, rows[1].device);
  return 0;
}
