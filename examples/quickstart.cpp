// Quickstart: build the paper's model for a small cluster and predict the
// percentile of requests meeting each SLA.
//
//   $ ./quickstart [--trace-json=PATH]
//
// Walks through the three parameter groups (device performance properties,
// system online metrics, topology), builds a SystemModel, and queries it.
// With --trace-json, stage timings and counters (tape compiles, inversion
// quality, cache activity) are exported for inspection — see
// docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/system_model.hpp"
#include "obs/obs.hpp"

int main(int argc, char** argv) {
  using cosm::numerics::Degenerate;
  using cosm::numerics::Gamma;

  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_path = argv[i] + 13;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 3;
    }
  }
  if (trace_path != nullptr) cosm::obs::set_enabled(true);

  // --- Device performance properties (Sec. IV-A: offline benchmarking) --
  // Disk service times per operation kind; Gamma(k, l) has mean k / l.
  const auto index_disk = std::make_shared<Gamma>(3.0, 300.0);   // 10 ms
  const auto meta_disk = std::make_shared<Gamma>(2.5, 312.5);    //  8 ms
  const auto data_disk = std::make_shared<Gamma>(2.8, 233.33);   // 12 ms
  // Request parsing is constant on typical hardware.
  const auto backend_parse = std::make_shared<Degenerate>(0.5e-3);
  const auto frontend_parse = std::make_shared<Degenerate>(0.8e-3);

  // --- System online metrics (Sec. IV-B: monitoring) --------------------
  const double system_rate = 120.0;  // requests/s across the system
  const double chunks_per_request = 1.2;  // r_data / r

  cosm::core::SystemParams params;
  params.frontend.arrival_rate = system_rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse = frontend_parse;

  // Four storage devices sharing the traffic evenly, one process each
  // (the paper's S1 configuration).
  for (int d = 0; d < 4; ++d) {
    cosm::core::DeviceParams device;
    device.arrival_rate = system_rate / 4.0;
    device.data_read_rate = device.arrival_rate * chunks_per_request;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = index_disk;
    device.meta_disk = meta_disk;
    device.data_disk = data_disk;
    device.backend_parse = backend_parse;
    device.processes = 1;
    params.devices.push_back(device);
  }

  const cosm::core::SystemModel model(params);

  std::printf("cluster: 4 devices (N_be=1), 3 frontend processes, "
              "%.0f req/s\n\n", system_rate);
  std::printf("%-10s %s\n", "SLA", "predicted percentile meeting it");
  for (const double sla : {0.010, 0.050, 0.100}) {
    std::printf("%4.0f ms    %6.2f%%\n", sla * 1e3,
                100.0 * model.predict_sla_percentile(sla));
  }
  std::printf("\nmean response latency: %.2f ms\n",
              1e3 * model.mean_response_latency());
  std::printf("latency bound met by 95%% of requests: %.2f ms\n",
              1e3 * model.latency_quantile(0.95));

  if (trace_path != nullptr) {
    std::ofstream trace(trace_path);
    if (!trace) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      return 3;
    }
    cosm::obs::export_json(trace);
    std::printf("wrote trace to %s\n", trace_path);
  }
  return 0;
}
