// Capacity planning (paper Sec. I): how many storage devices does a
// workload need to meet an SLA target such as "95% of requests within
// 100 ms"?  The model answers the what-if without deploying anything:
// sweep the device count, predict the percentile, pick the smallest
// cluster that satisfies the target.
//
//   $ ./capacity_planning [target_rate] [sla_ms] [target_percentile]
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "example_common.hpp"

int main(int argc, char** argv) {
  const double target_rate = argc > 1 ? std::atof(argv[1]) : 400.0;
  const double sla = (argc > 2 ? std::atof(argv[2]) : 100.0) * 1e-3;
  const double target_percentile = argc > 3 ? std::atof(argv[3]) : 0.95;

  std::printf("capacity planning: %.0f req/s, SLA %.0f ms, target %.1f%%\n\n",
              target_rate, sla * 1e3, 100.0 * target_percentile);
  std::printf("%-10s %-14s %-22s %s\n", "devices", "per-device",
              "util (union queue)", "P[latency <= SLA]");

  unsigned chosen = 0;
  for (unsigned devices = 2; devices <= 24; ++devices) {
    try {
      const auto params = cosm_examples::make_cluster(target_rate, devices);
      const cosm::core::SystemModel model(params);
      const double utilization =
          model.devices().front().backend().utilization();
      const double percentile = model.predict_sla_percentile(sla);
      std::printf("%-10u %-14.1f %-22.3f %6.2f%% %s\n", devices,
                  target_rate / devices, utilization, 100.0 * percentile,
                  percentile >= target_percentile ? "  <- meets target"
                                                  : "");
      if (chosen == 0 && percentile >= target_percentile) chosen = devices;
    } catch (const std::invalid_argument&) {
      // Overloaded at this device count: the model's "normal status"
      // precondition fails, which is itself the capacity answer.
      std::printf("%-10u %-14.1f %-22s %s\n", devices,
                  target_rate / devices, "overloaded", "--");
    }
  }
  if (chosen != 0) {
    std::printf("\n=> provision %u devices (first count meeting the "
                "target).\n", chosen);
  } else {
    std::printf("\n=> no count up to 24 meets the target; relax the SLA "
                "or shrink the workload.\n");
  }
  return 0;
}
