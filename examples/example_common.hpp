// Shared parameterization for the example programs: one HDD-backed device
// profile (matching the defaults benchmarked throughout the repo) and
// helpers to assemble SystemParams for a given topology and load.
#pragma once

#include <memory>

#include "core/system_model.hpp"

namespace cosm_examples {

inline cosm::core::DeviceParams make_device(double arrival_rate,
                                            unsigned processes = 1) {
  using cosm::numerics::Degenerate;
  using cosm::numerics::Gamma;
  cosm::core::DeviceParams device;
  device.arrival_rate = arrival_rate;
  device.data_read_rate = arrival_rate * 1.2;  // ~32KB objects, 64KB chunks
  device.index_miss_ratio = 0.3;
  device.meta_miss_ratio = 0.3;
  device.data_miss_ratio = 0.7;
  device.index_disk = std::make_shared<Gamma>(3.0, 300.0);   // 10 ms
  device.meta_disk = std::make_shared<Gamma>(2.5, 312.5);    //  8 ms
  device.data_disk = std::make_shared<Gamma>(2.8, 233.33);   // 12 ms
  device.backend_parse = std::make_shared<Degenerate>(0.5e-3);
  device.processes = processes;
  return device;
}

// An even-traffic cluster of `devices` storage devices at `system_rate`.
inline cosm::core::SystemParams make_cluster(double system_rate,
                                             unsigned devices,
                                             unsigned processes_per_device =
                                                 1) {
  cosm::core::SystemParams params;
  params.frontend.arrival_rate = system_rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse =
      std::make_shared<cosm::numerics::Degenerate>(0.8e-3);
  for (unsigned d = 0; d < devices; ++d) {
    params.devices.push_back(make_device(
        system_rate / static_cast<double>(devices), processes_per_device));
  }
  return params;
}

}  // namespace cosm_examples
