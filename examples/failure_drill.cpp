// Failure drill (robustness extension): script faults against the live
// simulator — a disk slowdown, then a full device outage absorbed by
// retry/failover — and check each degraded phase against the what-if
// prediction that an operator could have computed *before* the drill.
//
//   $ ./failure_drill [rate] [--hedge=SECONDS] [--trace-json=PATH]
//
// With --hedge, reads dispatch a hedged second attempt once the deadline
// passes without a response (cancel-on-first-complete): the drill then
// shows how hedging absorbs the slowdown phase, and the what-if section
// adds the hedged prediction.  With --trace-json, the run exports
// sim-engine spans, retry/failover/hedge counters, and what-if stage
// timings (docs/OBSERVABILITY.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "core/whatif.hpp"
#include "example_common.hpp"
#include "obs/obs.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"

namespace {

constexpr double kSla = 0.100;       // the drill's SLA: 100 ms
constexpr unsigned kDevices = 4;
constexpr double kInflation = 3.0;   // slowdown severity

// The drill script, in absolute simulation time.
constexpr double kSlowStart = 40.0, kSlowEnd = 70.0;    // disk x3 on dev 2
constexpr double kOutStart = 100.0, kOutEnd = 115.0;    // device 0 down

struct Phase {
  const char* name;
  double begin;
  double end;
  std::uint64_t requests = 0;
  std::uint64_t within_sla = 0;
  std::uint64_t retried = 0;
  std::uint64_t failed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double rate = 60.0;
  double hedge_delay = 0.0;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--hedge=", 8) == 0) {
      hedge_delay = std::atof(argv[i] + 8);
    } else {
      rate = std::atof(argv[i]);
    }
  }
  if (trace_path != nullptr) cosm::obs::set_enabled(true);

  // --- Run the drill in the simulator -------------------------------
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = kDevices;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.request_timeout = 0.25;
  config.max_retries = 2;            // retry with failover to a replica
  config.retry_backoff_base = 0.05;
  config.hedge_delay = hedge_delay;  // 0 = hedging off
  config.seed = 42;
  config.faults.disk_slowdown(2, kSlowStart, kSlowEnd - kSlowStart,
                              kInflation);
  config.faults.device_outage(0, kOutStart, kOutEnd - kOutStart);
  cosm::sim::Cluster cluster(config);

  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  cat_config.seed = 43;
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement({.partition_count = 1024,
                                             .replica_count = 3,
                                             .device_count = kDevices,
                                             .seed = 44});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = rate;
  plan.warmup_duration = 10.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = rate;
  plan.benchmark_end_rate = rate;
  plan.benchmark_step_duration = 150.0;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(45));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  std::vector<Phase> phases = {
      {"healthy", 10.0, kSlowStart},
      {"disk x3 on device 2", kSlowStart, kSlowEnd},
      {"recovered", kSlowEnd, kOutStart},
      {"device 0 outage (failover)", kOutStart, kOutEnd},
      {"recovered", kOutEnd, 160.0},
  };
  for (const auto& sample : cluster.metrics().requests()) {
    for (Phase& phase : phases) {
      if (sample.frontend_arrival >= phase.begin &&
          sample.frontend_arrival < phase.end) {
        ++phase.requests;
        if (!sample.failed && !sample.timed_out &&
            sample.response_latency <= kSla) {
          ++phase.within_sla;
        }
        if (sample.attempts > 1) ++phase.retried;
        if (sample.failed) ++phase.failed;
        break;
      }
    }
  }

  std::printf("failure drill: %.0f req/s over %u devices, SLA %.0f ms, "
              "%u retries with replica failover\n",
              rate, kDevices, kSla * 1e3, config.max_retries);
  if (hedge_delay > 0.0) {
    std::printf("hedged GETs: second attempt after %.0f ms, first response "
                "wins, loser cancelled\n",
                hedge_delay * 1e3);
  }
  std::printf("\n");
  std::printf("%-28s %-10s %-18s %-9s %s\n", "phase", "requests",
              "P[latency <= SLA]", "retried", "failed");
  for (const Phase& phase : phases) {
    const double fraction =
        phase.requests == 0
            ? 0.0
            : static_cast<double>(phase.within_sla) / phase.requests;
    std::printf("%-28s %-10llu %17.2f%% %-9llu %llu\n", phase.name,
                static_cast<unsigned long long>(phase.requests),
                100.0 * fraction,
                static_cast<unsigned long long>(phase.retried),
                static_cast<unsigned long long>(phase.failed));
  }
  const auto outcomes = cluster.metrics().outcomes();
  std::printf("\noutcomes: %llu ok, %llu ok after retry, %llu timed out, "
              "%llu failed (%llu retry attempts, %llu failovers)\n",
              static_cast<unsigned long long>(outcomes.ok),
              static_cast<unsigned long long>(outcomes.ok_retried),
              static_cast<unsigned long long>(outcomes.timed_out),
              static_cast<unsigned long long>(outcomes.failed),
              static_cast<unsigned long long>(outcomes.retry_attempts),
              static_cast<unsigned long long>(outcomes.failover_attempts));
  if (hedge_delay > 0.0) {
    std::printf("hedging:  %llu hedges issued, %llu won the race, "
                "%llu losing attempts cancelled\n",
                static_cast<unsigned long long>(outcomes.hedge_attempts),
                static_cast<unsigned long long>(outcomes.hedge_wins),
                static_cast<unsigned long long>(outcomes.cancelled_attempts));
  }

  // --- What the operator could have predicted beforehand ------------
  const auto healthy = cosm_examples::make_cluster(rate, kDevices);
  const cosm::core::SystemModel healthy_model(healthy);

  cosm::core::DegradedScenario slow;
  slow.slow_device = 2;
  slow.service_inflation = kInflation;

  cosm::core::DegradedScenario outage;
  outage.failed_device = 0;
  // Each attempt independently lands on the dead device with probability
  // ~ 1/devices until failover steers it away.
  outage.retry_rate_factor = cosm::core::retry_arrival_inflation(
      1.0 / kDevices, config.max_retries);

  std::printf("\ndegraded what-if (no simulation needed):\n");
  std::printf("  healthy cluster:         %6.2f%% within %.0f ms\n",
              100.0 * healthy_model.predict_sla_percentile(kSla),
              kSla * 1e3);
  std::printf("  device 2 disk x%.0f:       %6.2f%%\n", kInflation,
              100.0 * cosm::core::degraded_sla_percentile(healthy, slow,
                                                          kSla));
  std::printf("  device 0 down + retries: %6.2f%%  (retry-inflated "
              "lambda x%.2f)\n",
              100.0 * cosm::core::degraded_sla_percentile(healthy, outage,
                                                          kSla),
              outage.retry_rate_factor);
  if (hedge_delay > 0.0) {
    cosm::core::ModelOptions hedged_options;
    hedged_options.redundancy.mode =
        cosm::core::RedundancyOptions::Mode::kHedge;
    hedged_options.redundancy.hedge_delay = hedge_delay;
    std::printf("  hedged at %3.0f ms:        %6.2f%%  (order-statistic "
                "response, hedge-inflated lambda)\n",
                hedge_delay * 1e3,
                100.0 * cosm::core::redundant_sla_percentile(
                            healthy, kSla, hedged_options));
  }
  std::printf("\nCompare each prediction with the matching drill phase "
              "above: the what-if brackets the simulator without running "
              "it.\n");

  if (trace_path != nullptr) {
    std::ofstream trace(trace_path);
    if (!trace) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      return 3;
    }
    cosm::obs::export_json(trace);
    std::printf("wrote trace to %s\n", trace_path);
  }
  return 0;
}
