// Elastic storage (paper Sec. I): power storage nodes on and off to track
// a diurnal workload while still meeting the SLA.  For each hour of a
// synthetic day-night traffic curve, find the smallest active-device count
// whose predicted percentile meets the target, and report the energy
// saved versus keeping the full cluster on.
//
//   $ ./elastic_storage
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

#include "example_common.hpp"

namespace {

// Smallest device count in [1, max_devices] meeting the target, or 0.
unsigned min_devices_for(double rate, double sla, double target,
                         unsigned max_devices) {
  for (unsigned devices = 1; devices <= max_devices; ++devices) {
    try {
      const cosm::core::SystemModel model(
          cosm_examples::make_cluster(rate, devices));
      if (model.predict_sla_percentile(sla) >= target) return devices;
    } catch (const std::invalid_argument&) {
      // Overloaded with this few devices; try more.
    }
  }
  return 0;
}

}  // namespace

int main() {
  constexpr double kSla = 100e-3;
  constexpr double kTarget = 0.95;
  constexpr unsigned kFleet = 12;

  std::printf("elastic storage: %u-device fleet, keep P[latency <= %.0f ms]"
              " >= %.0f%%\n\n", kFleet, kSla * 1e3, kTarget * 100);
  std::printf("%-6s %-12s %-16s %s\n", "hour", "req/s", "devices needed",
              "devices parked");

  double device_hours_used = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    // Diurnal curve: trough ~60 req/s at night, peak ~420 req/s around
    // 14:00 local.
    const double rate =
        240.0 + 180.0 * std::sin((hour - 8) * std::numbers::pi / 12.0);
    const unsigned needed = min_devices_for(rate, kSla, kTarget, kFleet);
    if (needed == 0) {
      std::printf("%-6d %-12.0f %-16s %s\n", hour, rate, "fleet too small",
                  "-");
      device_hours_used += kFleet;
      continue;
    }
    device_hours_used += needed;
    std::printf("%-6d %-12.0f %-16u %u\n", hour, rate, needed,
                kFleet - needed);
  }
  const double always_on = 24.0 * kFleet;
  std::printf("\n=> %.0f device-hours instead of %.0f always-on: %.1f%% "
              "energy saved while meeting the SLA.\n", device_hours_used,
              always_on, 100.0 * (1.0 - device_hours_used / always_on));
  return 0;
}
