// Elastic storage (paper Sec. I): power storage nodes on and off to track
// a diurnal workload while still meeting the SLA.  For each hour of a
// synthetic day-night traffic curve, find the smallest active-device count
// whose predicted percentile meets the target, and report the energy
// saved versus keeping the full cluster on.
//
// Uses the library's core::elastic_schedule what-if with the execution
// pipeline turned all the way up: the 24 hourly searches fan out across
// all hardware threads, and a shared PredictionCache reuses backend
// builds between hours that probe the same candidate device count
// (docs/PERFORMANCE.md) — with results identical to the serial loop.
//
//   $ ./elastic_storage
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/whatif.hpp"
#include "example_common.hpp"

int main() {
  constexpr double kSla = 100e-3;
  constexpr double kTarget = 0.95;
  constexpr unsigned kFleet = 12;

  std::printf("elastic storage: %u-device fleet, keep P[latency <= %.0f ms]"
              " >= %.0f%%\n\n", kFleet, kSla * 1e3, kTarget * 100);

  std::vector<double> hourly_rates;
  for (int hour = 0; hour < 24; ++hour) {
    // Diurnal curve: trough ~60 req/s at night, peak ~420 req/s around
    // 14:00 local.
    hourly_rates.push_back(
        240.0 + 180.0 * std::sin((hour - 8) * std::numbers::pi / 12.0));
  }

  const cosm::core::ClusterFactory factory = [](double rate,
                                                unsigned devices) {
    return cosm_examples::make_cluster(rate, devices);
  };
  cosm::core::PredictionCache cache;
  const cosm::core::PredictOptions predict{/*num_threads=*/0, &cache};
  const auto schedule = cosm::core::elastic_schedule(
      factory, hourly_rates, {kSla, kTarget}, kFleet, {}, predict);

  std::printf("%-6s %-12s %-16s %s\n", "hour", "req/s", "devices needed",
              "devices parked");
  double device_hours_used = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const double rate = hourly_rates[static_cast<std::size_t>(hour)];
    const auto needed = schedule[static_cast<std::size_t>(hour)];
    if (!needed) {
      std::printf("%-6d %-12.0f %-16s %s\n", hour, rate, "fleet too small",
                  "-");
      device_hours_used += kFleet;
      continue;
    }
    device_hours_used += *needed;
    std::printf("%-6d %-12.0f %-16u %u\n", hour, rate, *needed,
                kFleet - *needed);
  }
  const double always_on = 24.0 * kFleet;
  std::printf("\n=> %.0f device-hours instead of %.0f always-on: %.1f%% "
              "energy saved while meeting the SLA.\n", device_hours_used,
              always_on, 100.0 * (1.0 - device_hours_used / always_on));
  const auto stats = cache.combined_stats();
  std::printf("   prediction cache: %llu hits / %llu misses (%.0f%% hit "
              "rate) across the %zu-hour sweep.\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              100.0 * stats.hit_rate(), hourly_rates.size());
  return 0;
}
