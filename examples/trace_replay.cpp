// Trace tooling walkthrough: synthesize a phase-structured trace, persist
// it as CSV, reload it, and replay it against the simulated cluster —
// the workflow for feeding *real* traces (e.g. wikibench-derived, as the
// paper used) into the simulator.
//
//   $ ./trace_replay [trace.csv]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/cosmodel_trace.csv";

  // --- synthesize ---------------------------------------------------------
  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 10000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  const cosm::workload::ObjectCatalog catalog(cat_config);
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = 80.0;
  plan.warmup_duration = 30.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = 100.0;
  plan.benchmark_end_rate = 100.0;
  plan.benchmark_step_duration = 120.0;
  cosm::Rng rng(2024);
  const auto trace =
      cosm::workload::generate_trace_vector(plan, catalog, rng);
  {
    std::ofstream out(path);
    cosm::workload::write_trace_csv(out, trace);
  }
  std::printf("wrote %zu records to %s\n", trace.size(), path.c_str());

  // --- reload -------------------------------------------------------------
  std::ifstream in(path);
  const auto reloaded = cosm::workload::read_trace_csv(in);
  std::printf("reloaded %zu records (round trip %s)\n", reloaded.size(),
              reloaded.size() == trace.size() ? "ok" : "MISMATCH");

  // --- replay -------------------------------------------------------------
  cosm::sim::ClusterConfig config;
  config.device_count = 4;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  cosm::sim::Cluster cluster(config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024, .replica_count = 3, .device_count = 4});
  cosm::Rng replica_rng(7);
  const auto scheduled =
      cosm::sim::replay_trace(cluster, reloaded, placement, replica_rng);
  cluster.engine().run_all();

  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    if (sample.frontend_arrival < plan.warmup_duration) continue;
    latencies.add(sample.response_latency);
  }
  std::printf("replayed %llu requests; %llu completed\n",
              static_cast<unsigned long long>(scheduled),
              static_cast<unsigned long long>(
                  cluster.metrics().completed_requests()));
  std::printf("benchmark-phase latency: mean %.2f ms, p50 %.2f ms, "
              "p95 %.2f ms, p99 %.2f ms\n",
              latencies.mean() * 1e3, latencies.quantile(0.5) * 1e3,
              latencies.quantile(0.95) * 1e3, latencies.quantile(0.99) * 1e3);
  std::printf("P[latency <= 100 ms] = %.2f%%\n",
              latencies.fraction_below(0.1) * 100.0);
  return 0;
}
