// cosmsim — command-line driver for the model and the simulator.
//
// Runs the analytic model, the discrete-event simulator, or both on a
// cluster described entirely by flags, and prints the SLA-percentile
// table (plus the model-vs-simulated error when both run).
//
//   $ ./cosmsim --rate=120 --devices=4 --nbe=1 --slas=10,50,100
//   $ ./cosmsim --mode=model --rate=300 --devices=10
//   $ ./cosmsim --mode=sim --rate=80 --write-fraction=0.05 --duration=120
//
// Flags (defaults in brackets):
//   --mode=model|sim|both   [both]
//   --rate=<req/s>          [120]    system arrival rate
//   --devices=<n>           [4]      storage devices
//   --nbe=<n>               [1]      processes per device
//   --nfe=<n>               [3]      frontend processes
//   --miss-index=<f>        [0.3]    cache miss ratios
//   --miss-meta=<f>         [0.3]
//   --miss-data=<f>         [0.7]
//   --slas=<ms,ms,...>      [10,50,100]
//   --duration=<s>          [180]    simulated measurement time
//   --warmup=<s>            [30]
//   --write-fraction=<f>    [0]      PUT share (simulator only)
//   --timeout=<s>           [0]      client timeout (simulator only)
//   --seed=<n>              [42]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace {

struct Options {
  std::string mode = "both";
  double rate = 120.0;
  unsigned devices = 4;
  unsigned nbe = 1;
  unsigned nfe = 3;
  double miss_index = 0.3;
  double miss_meta = 0.3;
  double miss_data = 0.7;
  std::vector<double> slas = {0.010, 0.050, 0.100};
  double duration = 180.0;
  double warmup = 30.0;
  double write_fraction = 0.0;
  double timeout = 0.0;
  std::uint64_t seed = 42;
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  out = arg + len + 1;
  return true;
}

Options parse(int argc, char** argv) {
  Options options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_flag(arg, "--mode", value)) {
      options.mode = value;
    } else if (parse_flag(arg, "--rate", value)) {
      options.rate = std::atof(value.c_str());
    } else if (parse_flag(arg, "--devices", value)) {
      options.devices = static_cast<unsigned>(std::atoi(value.c_str()));
    } else if (parse_flag(arg, "--nbe", value)) {
      options.nbe = static_cast<unsigned>(std::atoi(value.c_str()));
    } else if (parse_flag(arg, "--nfe", value)) {
      options.nfe = static_cast<unsigned>(std::atoi(value.c_str()));
    } else if (parse_flag(arg, "--miss-index", value)) {
      options.miss_index = std::atof(value.c_str());
    } else if (parse_flag(arg, "--miss-meta", value)) {
      options.miss_meta = std::atof(value.c_str());
    } else if (parse_flag(arg, "--miss-data", value)) {
      options.miss_data = std::atof(value.c_str());
    } else if (parse_flag(arg, "--slas", value)) {
      options.slas.clear();
      std::stringstream ss(value);
      std::string token;
      while (std::getline(ss, token, ',')) {
        options.slas.push_back(std::atof(token.c_str()) * 1e-3);
      }
    } else if (parse_flag(arg, "--duration", value)) {
      options.duration = std::atof(value.c_str());
    } else if (parse_flag(arg, "--warmup", value)) {
      options.warmup = std::atof(value.c_str());
    } else if (parse_flag(arg, "--write-fraction", value)) {
      options.write_fraction = std::atof(value.c_str());
    } else if (parse_flag(arg, "--timeout", value)) {
      options.timeout = std::atof(value.c_str());
    } else if (parse_flag(arg, "--seed", value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", arg);
      std::exit(2);
    }
  }
  return options;
}

cosm::sim::ClusterConfig cluster_config(const Options& options) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = options.nfe;
  config.device_count = options.devices;
  config.processes_per_device = options.nbe;
  config.cache.index_miss_ratio = options.miss_index;
  config.cache.meta_miss_ratio = options.miss_meta;
  config.cache.data_miss_ratio = options.miss_data;
  config.request_timeout = options.timeout;
  config.seed = options.seed;
  return config;
}

std::vector<double> run_model(const Options& options,
                              const cosm::sim::ClusterConfig& finalized) {
  cosm::core::SystemParams params;
  params.frontend.arrival_rate = options.rate;
  params.frontend.processes = options.nfe;
  params.frontend.frontend_parse = finalized.frontend_parse;
  for (unsigned d = 0; d < options.devices; ++d) {
    cosm::core::DeviceParams device;
    device.arrival_rate = options.rate / options.devices;
    device.data_read_rate = device.arrival_rate * 1.2;
    device.index_miss_ratio = options.miss_index;
    device.meta_miss_ratio = options.miss_meta;
    device.data_miss_ratio = options.miss_data;
    device.index_disk = finalized.disk.index_service;
    device.meta_disk = finalized.disk.meta_service;
    device.data_disk = finalized.disk.data_service;
    device.backend_parse = finalized.backend_parse;
    device.processes = options.nbe;
    params.devices.push_back(std::move(device));
  }
  const cosm::core::SystemModel model(params);
  std::vector<double> out;
  out.reserve(options.slas.size());
  for (const double sla : options.slas) {
    out.push_back(model.predict_sla_percentile(sla));
  }
  std::printf("model: mean latency %.2f ms, p95 bound %.2f ms\n",
              model.mean_response_latency() * 1e3,
              model.latency_quantile(0.95) * 1e3);
  return out;
}

struct SimResult {
  std::vector<double> percentiles;
  std::uint64_t requests = 0;
  std::uint64_t timeouts = 0;
  double mean_latency = 0.0;
};

SimResult run_sim(const Options& options) {
  cosm::sim::Cluster cluster(cluster_config(options));
  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  cat_config.seed = options.seed + 1;
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024,
       .replica_count = std::min(3u, options.devices),
       .device_count = options.devices,
       .seed = options.seed + 2});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = options.rate;
  plan.warmup_duration = options.warmup;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = options.rate;
  plan.benchmark_end_rate = options.rate;
  plan.benchmark_step_duration = options.duration;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(options.seed + 3),
                                   options.write_fraction);
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  SimResult result;
  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    if (sample.timed_out || sample.is_write) continue;
    latencies.add(sample.response_latency);
  }
  result.requests = cluster.metrics().completed_requests();
  result.timeouts = cluster.metrics().timeouts();
  result.mean_latency = latencies.mean();
  for (const double sla : options.slas) {
    result.percentiles.push_back(latencies.fraction_below(sla));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  std::printf("cosmsim: %.0f req/s, %u devices, N_be=%u, N_fe=%u, miss "
              "%.2f/%.2f/%.2f\n\n",
              options.rate, options.devices, options.nbe, options.nfe,
              options.miss_index, options.miss_meta, options.miss_data);

  cosm::sim::ClusterConfig finalized = cluster_config(options);
  finalized.finalize();

  const bool want_model = options.mode == "model" || options.mode == "both";
  const bool want_sim = options.mode == "sim" || options.mode == "both";
  if (!want_model && !want_sim) {
    std::fprintf(stderr, "bad --mode (model|sim|both)\n");
    return 2;
  }

  std::vector<double> predicted;
  if (want_model) {
    try {
      predicted = run_model(options, finalized);
    } catch (const std::invalid_argument& error) {
      std::printf("model: configuration overloaded (%s)\n", error.what());
      if (!want_sim) return 1;
    }
  }
  SimResult sim;
  if (want_sim) {
    sim = run_sim(options);
    std::printf("sim:   %llu requests, %llu timeouts, mean read latency "
                "%.2f ms\n",
                static_cast<unsigned long long>(sim.requests),
                static_cast<unsigned long long>(sim.timeouts),
                sim.mean_latency * 1e3);
  }
  std::printf("\n");

  std::vector<std::string> header = {"SLA"};
  if (want_sim) header.push_back("simulated");
  if (!predicted.empty()) header.push_back("model");
  if (want_sim && !predicted.empty()) header.push_back("error");
  cosm::Table table(header);
  for (std::size_t i = 0; i < options.slas.size(); ++i) {
    std::vector<std::string> row = {
        cosm::Table::num(options.slas[i] * 1e3, 0) + "ms"};
    if (want_sim) row.push_back(cosm::Table::percent(sim.percentiles[i]));
    if (!predicted.empty()) {
      row.push_back(cosm::Table::percent(predicted[i]));
    }
    if (want_sim && !predicted.empty()) {
      row.push_back(
          cosm::Table::percent(predicted[i] - sim.percentiles[i]));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "percentile of requests meeting each SLA");
  return 0;
}
