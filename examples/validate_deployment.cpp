// End-to-end validation walkthrough: exactly what an operator would do
// before trusting the model for capacity decisions.
//
//   1. benchmark the disk offline (Sec. IV-A)  -> fitted Gamma dists
//   2. benchmark request parsing (Sec. IV-A)   -> parse dists
//   3. run production-like traffic on the (simulated) cluster
//   4. read the online metrics (Sec. IV-B)     -> rates + miss ratios
//   5. build the model and compare predictions against what the cluster
//      actually served.
//
//   $ ./validate_deployment [rate]
#include <cstdio>
#include <cstdlib>

#include "calibration/disk_benchmark.hpp"
#include "calibration/online_metrics.hpp"
#include "calibration/parse_benchmark.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 120.0;

  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = 2024;
  cosm::sim::Cluster cluster(config);

  // --- 1. offline disk benchmark ----------------------------------------
  const auto disk_cal = cosm::calibration::benchmark_disk(
      cluster.config().disk, {.objects = 8000});
  std::printf("disk calibration (best fit per op):\n");
  for (const auto* fit : {&disk_cal.index, &disk_cal.meta, &disk_cal.data}) {
    std::printf("  %-6s mean %.2f ms, winner=%s (KS %.4f)\n",
                fit == &disk_cal.index ? "index"
                : fit == &disk_cal.meta ? "meta"
                                        : "data",
                fit->mean * 1e3, fit->selection.best().name.c_str(),
                fit->selection.best().ks);
  }

  // --- 2. parse benchmark ------------------------------------------------
  const auto parse_cal = cosm::calibration::benchmark_parse(config);
  std::printf("parse calibration: frontend %.3f ms, backend %.3f ms\n\n",
              parse_cal.frontend_fit.best().dist->mean() * 1e3,
              parse_cal.backend_fit.best().dist->mean() * 1e3);

  // --- 3. production-like run -------------------------------------------
  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024, .replica_count = 3, .device_count = 4});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = rate;
  plan.warmup_duration = 30.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = rate;
  plan.benchmark_end_rate = rate;
  plan.benchmark_step_duration = 240.0;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(7));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  // --- 4 + 5. observe, model, compare -----------------------------------
  cosm::core::SystemParams params;
  params.frontend.processes = config.frontend_processes;
  params.frontend.frontend_parse = parse_cal.frontend_fit.best().dist;
  double total_rate = 0.0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    const auto obs = cosm::calibration::observe_device(
        cluster.metrics(), d, source.horizon());
    const double aggregate =
        (obs.index_miss_ratio * obs.request_rate * disk_cal.index.mean +
         obs.meta_miss_ratio * obs.request_rate * disk_cal.meta.mean +
         obs.data_miss_ratio * obs.data_read_rate * disk_cal.data.mean) /
        (obs.index_miss_ratio * obs.request_rate +
         obs.meta_miss_ratio * obs.request_rate +
         obs.data_miss_ratio * obs.data_read_rate);
    params.devices.push_back(cosm::calibration::build_device_params(
        obs, disk_cal, parse_cal.backend_fit.best().dist, 1, aggregate));
    total_rate += obs.request_rate;
  }
  params.frontend.arrival_rate = total_rate;
  const cosm::core::SystemModel model(params);

  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
  }
  std::printf("validation at %.0f req/s (%zu sampled requests):\n",
              rate, latencies.count());
  std::printf("%-10s %-12s %-12s %s\n", "SLA", "observed", "predicted",
              "abs error");
  for (const double sla : {0.010, 0.050, 0.100}) {
    const double observed = latencies.fraction_below(sla);
    const double predicted = model.predict_sla_percentile(sla);
    std::printf("%-10.0fms %-12.2f %-12.2f %.2f pp\n", sla * 1e3,
                observed * 100.0, predicted * 100.0,
                std::abs(predicted - observed) * 100.0);
  }
  return 0;
}
